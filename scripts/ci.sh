#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -p kessler-service (crash-safety suite, backtraces on)"
RUST_BACKTRACE=1 cargo test -p kessler-service -q

echo "==> cargo test -p kessler-service --test metrics (observability e2e)"
RUST_BACKTRACE=1 cargo test -p kessler-service -q --test metrics

echo "==> cargo test -p kessler-service --test hybrid (hybrid-variant daemon e2e)"
RUST_BACKTRACE=1 cargo test -p kessler-service -q --test hybrid

echo "==> cargo test -p kessler-service --test disk_faults (disk-chaos suite)"
RUST_BACKTRACE=1 cargo test -p kessler-service -q --test disk_faults

echo "==> cargo test -p kessler-service --test evented (evented front-end wire behaviors)"
RUST_BACKTRACE=1 cargo test -p kessler-service -q --test evented

echo "==> cargo test -p kessler-service --test subscribe (SUBSCRIBE push-stream equivalence)"
RUST_BACKTRACE=1 cargo test -p kessler-service -q --test subscribe

echo "==> cargo test --test delta_correctness (delta vs cold-full, both variants + sharded)"
RUST_BACKTRACE=1 cargo test -q --test delta_correctness

echo "==> cargo test -p kessler-service --test sharded_recovery (incremental snapshots)"
RUST_BACKTRACE=1 cargo test -p kessler-service -q --test sharded_recovery

echo "==> cargo test --test sharding_props (shard assignment/mirroring proptests)"
RUST_BACKTRACE=1 cargo test -q --test sharding_props

echo "==> cargo test -p kessler-population constellation (synthetic shells)"
RUST_BACKTRACE=1 cargo test -p kessler-population -q constellation

echo "==> cargo test -p kessler-core metrics (histogram unit + property tests)"
cargo test -p kessler-core -q metrics

echo "==> cargo test -p kessler-orbits --test propagation_equality (SoA == scalar)"
RUST_BACKTRACE=1 cargo test -p kessler-orbits -q --test propagation_equality

echo "==> exp_cascade --smoke (live cascade absorption, small n)"
RUST_BACKTRACE=1 cargo run --release -p kessler-bench --bin exp_cascade -- \
  --smoke --json /tmp/results_cascade_smoke.json

echo "==> exp_scale --smoke (sharded daemon scale run, small n)"
RUST_BACKTRACE=1 cargo run --release -p kessler-bench --bin exp_scale -- \
  --smoke --json /tmp/results_scale_smoke.json

echo "==> kessler submit subscribe --smoke (push registration over a live daemon)"
cargo build --release -p kessler-cli
./target/release/kessler serve --addr 127.0.0.1:7912 --n 32 &
KESSLER_SERVE_PID=$!
trap 'kill "$KESSLER_SERVE_PID" 2>/dev/null || true' EXIT
RUST_BACKTRACE=1 ./target/release/kessler submit status --addr 127.0.0.1:7912 --retries 8
RUST_BACKTRACE=1 ./target/release/kessler submit subscribe --all --smoke --addr 127.0.0.1:7912
RUST_BACKTRACE=1 ./target/release/kessler submit shutdown --addr 127.0.0.1:7912
wait "$KESSLER_SERVE_PID"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI checks passed."
