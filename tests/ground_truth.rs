//! Cross-crate integration test: engineered conjunctions with known
//! TCA/PCA must be found by every screening variant, at the right time,
//! buried inside a non-colliding noise population.

use kessler::prelude::*;
use std::f64::consts::TAU;

/// Build a pair of equal-radius circular orbits in different planes whose
/// satellites both cross the mutual node (the +X axis for raan = 0) at
/// `t_conj`: a guaranteed conjunction with PCA ≈ 0 at a known time.
fn engineered_pair(radius_km: f64, t_conj: f64, inc_a: f64, inc_b: f64) -> [KeplerElements; 2] {
    let n = (kessler::orbits::constants::MU_EARTH / radius_km.powi(3)).sqrt();
    // Mean anomaly at epoch such that M(t_conj) = 0 (the node, since
    // argp = 0 puts perigee — and anomaly zero — on the node line).
    let m0 = (-n * t_conj).rem_euclid(TAU);
    [
        KeplerElements::new(radius_km, 0.0, inc_a, 0.0, 0.0, m0).unwrap(),
        KeplerElements::new(radius_km, 0.0, inc_b, 0.0, 0.0, m0).unwrap(),
    ]
}

/// Non-colliding noise: satellites on well-separated shells.
fn noise(count: usize) -> Vec<KeplerElements> {
    (0..count)
        .map(|i| {
            let f = i as f64;
            KeplerElements::new(
                9_000.0 + 25.0 * f,
                0.001,
                (0.1 + 0.07 * f) % 3.1,
                (0.9 * f) % TAU,
                (1.7 * f) % TAU,
                (2.3 * f) % TAU,
            )
            .unwrap()
        })
        .collect()
}

struct Expected {
    pair: (u32, u32),
    tca: f64,
}

fn build_population() -> (Vec<KeplerElements>, Vec<Expected>) {
    let mut population = Vec::new();
    let mut expected = Vec::new();
    // Three engineered conjunctions on distinct shells at distinct times.
    for (k, (radius, t_conj, inc_a, inc_b)) in [
        (7_000.0, 60.0, 0.4, 1.2),
        (7_400.0, 180.0, 0.9, 2.0),
        (7_800.0, 300.0, 0.2, 1.5),
    ]
    .into_iter()
    .enumerate()
    {
        let base = population.len() as u32;
        population.extend(engineered_pair(radius, t_conj, inc_a, inc_b));
        expected.push(Expected {
            pair: (base, base + 1),
            tca: t_conj,
        });
        let _ = k;
    }
    population.extend(noise(60));
    (population, expected)
}

fn assert_finds_engineered(report: &ScreeningReport, expected: &[Expected]) {
    for e in expected {
        let found = report
            .conjunctions
            .iter()
            .find(|c| c.pair() == e.pair && (c.tca - e.tca).abs() < 2.0);
        let c = found.unwrap_or_else(|| {
            panic!(
                "[{}] engineered conjunction {:?} @ t = {} not found; got {:?}",
                report.variant, e.pair, e.tca, report.conjunctions
            )
        });
        assert!(
            c.pca_km < 0.5,
            "[{}] engineered PCA should be ~0, got {} km",
            report.variant,
            c.pca_km
        );
    }
}

#[test]
fn grid_variant_finds_engineered_conjunctions() {
    let (population, expected) = build_population();
    let config = ScreeningConfig::grid_defaults(2.0, 400.0);
    let report = GridScreener::new(config).screen(&population);
    assert_finds_engineered(&report, &expected);
}

#[test]
fn hybrid_variant_finds_engineered_conjunctions() {
    let (population, expected) = build_population();
    let config = ScreeningConfig::hybrid_defaults(2.0, 400.0);
    let report = HybridScreener::new(config).screen(&population);
    assert_finds_engineered(&report, &expected);
}

#[test]
fn legacy_variant_finds_engineered_conjunctions() {
    let (population, expected) = build_population();
    let config = ScreeningConfig::grid_defaults(2.0, 400.0);
    let report = LegacyScreener::new(config).screen(&population);
    assert_finds_engineered(&report, &expected);
}

#[test]
fn gpusim_variants_find_engineered_conjunctions() {
    let (population, expected) = build_population();
    let grid = GpuGridScreener::new(ScreeningConfig::grid_defaults(2.0, 400.0)).screen(&population);
    assert_finds_engineered(&grid, &expected);
    let hybrid =
        GpuHybridScreener::new(ScreeningConfig::hybrid_defaults(2.0, 400.0)).screen(&population);
    assert_finds_engineered(&hybrid, &expected);
}

#[test]
fn tca_and_pca_are_accurate_against_dense_sampling() {
    use kessler::orbits::propagator::PropagationConstants;
    use kessler::orbits::ContourSolver;

    let (population, expected) = build_population();
    let config = ScreeningConfig::grid_defaults(2.0, 400.0);
    let report = GridScreener::new(config).screen(&population);
    let solver = ContourSolver::default();

    for e in &expected {
        let c = report
            .conjunctions
            .iter()
            .find(|c| c.pair() == e.pair && (c.tca - e.tca).abs() < 2.0)
            .unwrap();
        // Dense 1 ms sampling around the reported TCA.
        let a = PropagationConstants::from_elements(&population[c.id_lo as usize]);
        let b = PropagationConstants::from_elements(&population[c.id_hi as usize]);
        let mut best = (0.0, f64::INFINITY);
        let mut t = c.tca - 2.0;
        while t <= c.tca + 2.0 {
            let d = a.position(t, &solver).dist(b.position(t, &solver));
            if d < best.1 {
                best = (t, d);
            }
            t += 0.001;
        }
        assert!(
            (c.tca - best.0).abs() < 0.005,
            "TCA {} vs dense {}",
            c.tca,
            best.0
        );
        assert!(
            (c.pca_km - best.1).abs() < 0.005,
            "PCA {} vs dense {}",
            c.pca_km,
            best.1
        );
    }
}
