//! Property-based tests of the orbital-regime shard layer: assignment is
//! total and deterministic over arbitrary layouts, eccentric satellites
//! overlap every altitude band their apsis range touches, and candidate
//! extraction under an arbitrary multi-shard partition equals the
//! single-shard (global) extraction — every cross-boundary pair found,
//! each pair exactly once, mirroring symmetric in the pair's order.

use kessler::math::Vec3;
use kessler::service::shard::{extract_step_sharded, ShardScratch};
use kessler::service::{ShardMap, ShardScreenStats, ShardSpec};
use proptest::prelude::*;
use std::collections::HashSet;
use std::f64::consts::PI;

/// An arbitrary valid shard layout: 1–12 altitude bands, 1–6 |z| shells,
/// a radius span somewhere in LEO/MEO.
fn arb_spec() -> impl Strategy<Value = ShardSpec> {
    (1u32..12, 1u32..6, 6_400.0..7_500.0f64, 500.0..8_000.0f64).prop_map(
        |(alt_bands, z_shells, r_min_km, span)| ShardSpec {
            alt_bands,
            z_shells,
            r_min_km,
            r_max_km: r_min_km + span,
        },
    )
}

fn arb_position() -> impl Strategy<Value = Vec3> {
    // Radii deliberately overflow the shard span on both sides: the map
    // must clamp, never panic or drop.
    (5_000.0..18_000.0f64, 0.0..PI, -1.0..1.0f64).prop_map(|(r, theta, zfrac)| {
        let z = r * zfrac;
        let rho = (r * r - z * z).max(0.0).sqrt();
        Vec3::new(rho * theta.cos(), rho * theta.sin(), z)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Assignment is total (every valid orbit gets a shard inside the
    /// partition) and deterministic (a freshly built map with the same
    /// spec agrees).
    #[test]
    fn assignment_is_total_and_deterministic(
        spec in arb_spec(),
        a in 5_000.0..18_000.0f64,
        incl in 0.0..PI,
    ) {
        let map = ShardMap::new(spec).unwrap();
        let shard = map.assign(a, incl);
        prop_assert!(shard < map.shard_count());
        let again = ShardMap::new(spec).unwrap().assign(a, incl);
        prop_assert_eq!(shard, again);
    }

    /// An eccentric satellite's apsis range covers a contiguous band run
    /// containing the perigee band, the apogee band, and the band its
    /// semi-major axis (the static assignment) falls in.
    #[test]
    fn apsis_span_overlaps_every_band_between_perigee_and_apogee(
        spec in arb_spec(),
        a in 6_600.0..12_000.0f64,
        e in 0.0..0.3f64,
    ) {
        let map = ShardMap::new(spec).unwrap();
        let perigee = a * (1.0 - e);
        let apogee = a * (1.0 + e);
        let (lo, hi) = map.bands_overlapping(perigee, apogee);
        prop_assert!(lo <= hi && hi < spec.alt_bands);
        prop_assert!((lo..=hi).contains(&map.band_of(perigee)));
        prop_assert!((lo..=hi).contains(&map.band_of(apogee)));
        prop_assert!((lo..=hi).contains(&map.band_of(a)));
        // Contiguity: every radius strictly inside the apsis range maps
        // into the run — no band the satellite can visit is skipped.
        for k in 0..8 {
            let r = perigee + (apogee - perigee) * k as f64 / 7.0;
            prop_assert!((lo..=hi).contains(&map.band_of(r)));
        }
    }

    /// Candidate extraction under an arbitrary partition is exactly the
    /// single-shard (global) extraction: same pair set, and since pair
    /// sets deduplicate structurally, every boundary pair exactly once.
    /// Real satellites are inserted exactly once into their home shard;
    /// everything beyond that is a mirror copy.
    #[test]
    fn sharded_extraction_equals_global_extraction(
        spec in arb_spec(),
        positions in proptest::collection::vec(arb_position(), 2..40),
        cell in 20.0..200.0f64,
    ) {
        let changed: Vec<u32> = (0..positions.len() as u32).collect();

        let global_map = ShardMap::new(ShardSpec {
            alt_bands: 1,
            z_shells: 1,
            ..spec
        })
        .unwrap();
        let mut scratch = ShardScratch::new(1);
        let mut stats = ShardScreenStats::new(1);
        let mut expected = HashSet::new();
        extract_step_sharded(
            &global_map, &positions, &changed, cell, 3, &mut scratch, &mut expected, &mut stats,
        );
        prop_assert_eq!(stats.mirrored_inserts, 0, "one shard mirrors nothing");

        let map = ShardMap::new(spec).unwrap();
        let mut scratch = ShardScratch::new(map.shard_count());
        let mut stats = ShardScreenStats::new(map.shard_count());
        let mut got = HashSet::new();
        extract_step_sharded(
            &map, &positions, &changed, cell, 3, &mut scratch, &mut got, &mut stats,
        );
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(
            stats.total_inserts - stats.mirrored_inserts,
            positions.len() as u64
        );
    }

    /// Boundary mirroring is symmetric: when two satellites share a grid
    /// cell but live in different home shards, the pair is found whether
    /// the query runs from A's home or from B's.
    #[test]
    fn boundary_mirroring_is_symmetric(
        spec in arb_spec(),
        base in arb_position(),
        dx in -30.0..30.0f64,
        dz in -30.0..30.0f64,
    ) {
        let other = Vec3::new(base.x + dx, base.y, base.z + dz);
        let positions = vec![base, other];
        let map = ShardMap::new(spec).unwrap();
        let cell = 50.0;

        let extract_from = |who: u32| {
            let mut scratch = ShardScratch::new(map.shard_count());
            let mut stats = ShardScreenStats::new(map.shard_count());
            let mut got = HashSet::new();
            extract_step_sharded(
                &map, &positions, &[who], cell, 0, &mut scratch, &mut got, &mut stats,
            );
            got
        };
        let from_a = extract_from(0);
        let from_b = extract_from(1);
        prop_assert_eq!(
            from_a.is_empty(),
            from_b.is_empty(),
            "pair visibility must not depend on which side queries \
             (homes {} and {})",
            map.home_of(base),
            map.home_of(other)
        );
    }
}
