//! Property-based cross-variant fuzzing: on small random populations the
//! grid variant must agree with the brute-force legacy baseline, and the
//! library must uphold its report invariants on arbitrary (valid) inputs.

use kessler::prelude::*;
use proptest::prelude::*;
use std::f64::consts::{PI, TAU};

/// A random but physically valid LEO-ish element set.
fn arb_elements() -> impl Strategy<Value = KeplerElements> {
    (
        6_800.0..9_000.0f64, // semi-major axis
        0.0..0.02f64,        // eccentricity (near-circular, keeps perigee up)
        0.0..PI,             // inclination
        0.0..TAU,            // raan
        0.0..TAU,            // argp
        0.0..TAU,            // mean anomaly
    )
        .prop_map(|(a, e, i, raan, argp, m)| {
            KeplerElements::new(a, e, i, raan, argp, m).expect("valid by construction")
        })
}

fn arb_population(max: usize) -> impl Strategy<Value = Vec<KeplerElements>> {
    proptest::collection::vec(arb_elements(), 2..max)
}

proptest! {
    // Each case runs three screeners; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The central correctness property of the paper: the spatial-grid
    /// shortcut must find the same colliding pairs as brute force.
    #[test]
    fn grid_matches_legacy_on_random_populations(pop in arb_population(24)) {
        let config = ScreeningConfig::grid_defaults(25.0, 400.0);
        let grid = GridScreener::new(config).screen(&pop);
        let legacy = LegacyScreener::new(config).screen(&pop);
        prop_assert_eq!(
            grid.colliding_pairs(),
            legacy.colliding_pairs(),
            "population: {:?}",
            pop
        );
    }

    /// The gpusim port is bit-identical to the CPU grid screener.
    #[test]
    fn gpusim_is_identical_to_cpu(pop in arb_population(16)) {
        let config = ScreeningConfig::grid_defaults(25.0, 300.0);
        let cpu = GridScreener::new(config).screen(&pop);
        let gpu = GpuGridScreener::new(config).screen(&pop);
        prop_assert_eq!(cpu.conjunction_count(), gpu.conjunction_count());
        for (a, b) in cpu.conjunctions.iter().zip(&gpu.conjunctions) {
            prop_assert_eq!(a.pair(), b.pair());
            prop_assert!((a.tca - b.tca).abs() < 1e-9);
        }
    }

    /// Report invariants hold on arbitrary populations: conjunctions are
    /// sorted/deduplicated, within span and threshold, ids in range.
    #[test]
    fn report_invariants(pop in arb_population(20)) {
        let span = 350.0;
        let threshold = 30.0;
        let config = ScreeningConfig::grid_defaults(threshold, span);
        let report = GridScreener::new(config).screen(&pop);
        let n = pop.len() as u32;
        for c in &report.conjunctions {
            prop_assert!(c.id_lo < c.id_hi, "ids must be ordered");
            prop_assert!(c.id_hi < n, "ids must be in range");
            prop_assert!(c.pca_km <= threshold + 1e-9);
            prop_assert!(c.pca_km >= 0.0);
            prop_assert!(c.tca >= -1e-9 && c.tca <= span + 1e-9);
        }
        // Sorted by pair, then TCA; no duplicate minima inside the dedup
        // tolerance.
        for w in report.conjunctions.windows(2) {
            let key = |c: &Conjunction| (c.id_lo, c.id_hi);
            prop_assert!(key(&w[0]) <= key(&w[1]));
            if key(&w[0]) == key(&w[1]) {
                prop_assert!(w[1].tca - w[0].tca > config.tca_dedup_tolerance_s);
            }
        }
    }

    /// The multi-grid round scheduler must not change screening results.
    #[test]
    fn parallel_steps_do_not_change_results(pop in arb_population(16)) {
        let mut config = ScreeningConfig::grid_defaults(25.0, 200.0);
        let sequential = GridScreener::new(config).screen(&pop);
        config.parallel_steps = Some(4);
        let rounds = GridScreener::new(config).screen(&pop);
        prop_assert_eq!(sequential.colliding_pairs(), rounds.colliding_pairs());
        prop_assert_eq!(sequential.conjunction_count(), rounds.conjunction_count());
    }
}
