//! Validation of the paper's cell-size rule (Eq. 1, Fig. 4).
//!
//! "It occurs when two satellites are at the edge of their cell, but the
//! two cells are not neighbors … In the next sampling step the actual
//! undercut of the threshold that would occur is skipped. To circumvent
//! this, the cell size `g_c` is based on the screening threshold `d`, the
//! typical speed of a satellite in LEO (7.8 km/s), and the seconds between
//! the samples."
//!
//! These tests build the adversarial geometry and show (a) the Eq. 1 cell
//! size never misses it, and (b) a deliberately undersized cell *does*
//! miss it — i.e. the rule is not merely sufficient but necessary.

use kessler::grid::grid::NeighborScan;
use kessler::prelude::*;
use std::f64::consts::TAU;

/// Head-on conjunction at a known time: two equal-radius circular orbits
/// crossing at their mutual node with matched phases.
fn head_on_pair(radius: f64, t_conj: f64) -> Vec<KeplerElements> {
    let n = (kessler::orbits::constants::MU_EARTH / radius.powi(3)).sqrt();
    let m0 = (-n * t_conj).rem_euclid(TAU);
    vec![
        KeplerElements::new(radius, 0.0, 0.3, 0.0, 0.0, m0).unwrap(),
        KeplerElements::new(radius, 0.0, 2.2, 0.0, 0.0, m0).unwrap(),
    ]
}

/// Grid screening with an explicit cell-size override (bypassing Eq. 1) —
/// built from the raw substrate so the experiment controls every knob.
fn conjunction_found_with_cell_size(
    pop: &[KeplerElements],
    threshold: f64,
    sps: f64,
    span: f64,
    cell_size: f64,
) -> bool {
    use kessler::grid::{PairSet, SpatialGrid};
    use kessler::orbits::BatchPropagator;

    let propagator = BatchPropagator::new(pop);
    let grid = SpatialGrid::new(pop.len(), cell_size);
    let pairs = PairSet::with_capacity(1 << 12);
    let steps = (span / sps).ceil() as u32;
    for step in 0..steps {
        let t = step as f64 * sps;
        if step > 0 {
            grid.reset();
        }
        grid.insert_all(&propagator.positions(t)).unwrap();
        grid.collect_candidate_pairs(step, NeighborScan::Half, &pairs);
    }
    // Refine every candidate exactly as the screener does.
    let solver = kessler::orbits::ContourSolver::default();
    let columns = propagator.columns();
    pairs.drain_to_vec().into_iter().any(|e| {
        let t = e.step as f64 * sps;
        let lo = columns.gather(e.id_lo as usize);
        let hi = columns.gather(e.id_hi as usize);
        let interval = kessler::core::refine::grid_refine_interval(&lo, &hi, &solver, t, cell_size);
        kessler::core::refine::refine_pair(&lo, &hi, &solver, e.id_lo, e.id_hi, interval, threshold)
            .is_some()
    })
}

#[test]
fn equation_one_cell_size_never_misses_the_worst_case() {
    let threshold = 2.0;
    // Sweep the conjunction time across sampling phases so it lands at
    // every possible offset between samples, including dead-centre between
    // two steps (the Fig. 4 geometry). Relative speed at the node here is
    // near the 2×7.8 km/s worst case.
    for sps in [1.0, 4.0, 9.0] {
        let cell = threshold + kessler::orbits::constants::LEO_SPEED * sps; // Eq. 1
        for phase in 0..10 {
            let t_conj = 60.0 + sps * phase as f64 / 10.0;
            let pop = head_on_pair(7_000.0, t_conj);
            assert!(
                conjunction_found_with_cell_size(&pop, threshold, sps, 120.0, cell),
                "missed conjunction at t = {t_conj} with s_ps = {sps} (Eq. 1 cell = {cell})"
            );
        }
    }
}

#[test]
fn undersized_cells_do_miss_conjunctions() {
    // With cells sized for the threshold only (ignoring the motion term of
    // Eq. 1) and a coarse 9 s sampling, the head-on pair jumps whole
    // neighbourhoods between samples and at least one sampling phase loses
    // the conjunction.
    let threshold = 2.0;
    let sps = 9.0;
    let undersized = threshold; // what Eq. 1 exists to prevent
    let mut missed_any = false;
    for phase in 0..10 {
        let t_conj = 60.0 + sps * phase as f64 / 10.0;
        let pop = head_on_pair(7_000.0, t_conj);
        if !conjunction_found_with_cell_size(&pop, threshold, sps, 120.0, undersized) {
            missed_any = true;
            break;
        }
    }
    assert!(
        missed_any,
        "undersized cells unexpectedly caught every phase — the Fig. 4 hazard \
         should manifest (if this fails, the adversarial geometry needs tuning)"
    );
}

#[test]
fn grid_screener_uses_equation_one_sizing() {
    // End-to-end: the public GridScreener must catch the worst-case pair
    // at every sampling phase, because its cell size comes from Eq. 1.
    for phase in 0..5 {
        let t_conj = 60.0 + phase as f64 / 5.0;
        let pop = head_on_pair(7_000.0, t_conj);
        let report = GridScreener::new(ScreeningConfig::grid_defaults(2.0, 120.0)).screen(&pop);
        assert!(
            report.conjunction_count() >= 1,
            "GridScreener missed the worst case at t = {t_conj}"
        );
        assert!((report.conjunctions[0].tca - t_conj).abs() < 0.5);
    }
}
