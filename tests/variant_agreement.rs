//! Cross-variant agreement on realistic synthetic populations — the
//! integration-level version of the paper's accuracy experiment (§V-D):
//! all variants screen the *same* KDE population and must report
//! near-identical colliding-pair sets, with the gpusim ports matching
//! their CPU counterparts exactly.

use kessler::prelude::*;
use std::collections::HashSet;

fn population(n: usize, seed: u64) -> Vec<KeplerElements> {
    PopulationGenerator::new(PopulationConfig {
        seed,
        ..Default::default()
    })
    .generate(n)
}

/// Jaccard-style agreement of two pair sets.
fn agreement(a: &HashSet<(u32, u32)>, b: &HashSet<(u32, u32)>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

#[test]
fn grid_and_legacy_find_nearly_the_same_pairs() {
    // 400 satellites over 20 minutes: enough for a handful of encounters.
    let pop = population(400, 1234);
    let config = ScreeningConfig::grid_defaults(2.0, 1_200.0);
    let grid = GridScreener::new(config).screen(&pop);
    let legacy = LegacyScreener::new(config).screen(&pop);
    let ga = grid.colliding_pairs();
    let la = legacy.colliding_pairs();
    let agr = agreement(&ga, &la);
    assert!(
        agr >= 0.85,
        "grid vs legacy agreement {agr}: grid {ga:?} vs legacy {la:?}"
    );
}

#[test]
fn hybrid_and_legacy_find_nearly_the_same_pairs() {
    let pop = population(400, 1234);
    let hybrid = HybridScreener::new(ScreeningConfig::hybrid_defaults(2.0, 1_200.0)).screen(&pop);
    let legacy = LegacyScreener::new(ScreeningConfig::grid_defaults(2.0, 1_200.0)).screen(&pop);
    let ha = hybrid.colliding_pairs();
    let la = legacy.colliding_pairs();
    let agr = agreement(&ha, &la);
    assert!(
        agr >= 0.85,
        "hybrid vs legacy agreement {agr}: hybrid {ha:?} vs legacy {la:?}"
    );
}

#[test]
fn gpusim_grid_matches_cpu_grid_exactly() {
    let pop = population(300, 77);
    let config = ScreeningConfig::grid_defaults(2.0, 900.0);
    let cpu = GridScreener::new(config).screen(&pop);
    let gpu = GpuGridScreener::new(config).screen(&pop);
    assert_eq!(cpu.colliding_pairs(), gpu.colliding_pairs());
    assert_eq!(cpu.conjunction_count(), gpu.conjunction_count());
    for (a, b) in cpu.conjunctions.iter().zip(&gpu.conjunctions) {
        assert_eq!(a.pair(), b.pair());
        assert!((a.tca - b.tca).abs() < 1e-6);
    }
}

#[test]
fn gpusim_hybrid_matches_cpu_hybrid_exactly() {
    let pop = population(300, 77);
    let config = ScreeningConfig::hybrid_defaults(2.0, 900.0);
    let cpu = HybridScreener::new(config).screen(&pop);
    let gpu = GpuHybridScreener::new(config).screen(&pop);
    assert_eq!(cpu.colliding_pairs(), gpu.colliding_pairs());
    assert_eq!(cpu.conjunction_count(), gpu.conjunction_count());
}

#[test]
fn results_are_reproducible_across_runs() {
    let pop = population(250, 9);
    let config = ScreeningConfig::grid_defaults(2.0, 600.0);
    let a = GridScreener::new(config).screen(&pop);
    let b = GridScreener::new(config).screen(&pop);
    assert_eq!(a.conjunction_count(), b.conjunction_count());
    for (x, y) in a.conjunctions.iter().zip(&b.conjunctions) {
        assert_eq!(x.pair(), y.pair());
        assert_eq!(x.tca, y.tca, "parallel execution must not perturb results");
        assert_eq!(x.pca_km, y.pca_km);
    }
}

#[test]
fn every_reported_conjunction_is_physically_real() {
    use kessler::orbits::propagator::PropagationConstants;
    use kessler::orbits::ContourSolver;
    // No false positives: every reported conjunction must verify against
    // direct propagation.
    let pop = population(400, 31);
    let config = ScreeningConfig::grid_defaults(2.0, 1_200.0);
    let report = GridScreener::new(config).screen(&pop);
    let solver = ContourSolver::default();
    for c in &report.conjunctions {
        let a = PropagationConstants::from_elements(&pop[c.id_lo as usize]);
        let b = PropagationConstants::from_elements(&pop[c.id_hi as usize]);
        let d = a.position(c.tca, &solver).dist(b.position(c.tca, &solver));
        assert!(
            (d - c.pca_km).abs() < 1e-6,
            "reported PCA {} disagrees with propagated distance {}",
            c.pca_km,
            d
        );
        assert!(c.pca_km <= 2.0, "conjunction above threshold: {}", c.pca_km);
        // Verify it is a local minimum: distance grows on both sides.
        let before = a
            .position(c.tca - 0.5, &solver)
            .dist(b.position(c.tca - 0.5, &solver));
        let after = a
            .position(c.tca + 0.5, &solver)
            .dist(b.position(c.tca + 0.5, &solver));
        assert!(before >= c.pca_km - 1e-9 && after >= c.pca_km - 1e-9);
    }
}

#[test]
fn screening_report_serialises_to_json() {
    let pop = population(50, 5);
    let config = ScreeningConfig::grid_defaults(2.0, 300.0);
    let report = GridScreener::new(config).screen(&pop);
    let json = serde_json::to_string(&report).expect("report must serialise");
    assert!(json.contains("\"variant\":\"grid\""));
    assert!(json.contains("conjunctions"));
}
