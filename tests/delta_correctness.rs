//! Delta re-screening correctness at scale: after k = 64 element updates on
//! an n = 8000 population, a warm delta re-screen must produce *exactly* the
//! conjunction set a cold full re-screen of the mutated population produces —
//! same pairs in both directions, same TCAs and PCAs. The hybrid twin runs
//! the same invariant through the orbital filter chain at n = 4000.

use kessler::prelude::*;
use kessler::service::{DeltaEngine, HYBRID_DELTA_VARIANT};

const N: usize = 8_000;
const K: usize = 64;

#[test]
fn delta_rescreen_equals_cold_rescreen_after_64_updates() {
    let population = PopulationGenerator::new(PopulationConfig {
        seed: 0xDE17A,
        ..Default::default()
    })
    .generate(N);
    let config = ScreeningConfig::grid_defaults(5.0, 120.0);

    // Warm the engine on the original population.
    let mut engine = DeltaEngine::new(config).unwrap();
    engine.full_screen(&population);

    // Perturb 64 distinct satellites (127 is coprime with 8000, so the
    // indices j·127 mod 8000 never repeat).
    let mut mutated = population.clone();
    let mut changed: Vec<u32> = Vec::with_capacity(K);
    for j in 0..K {
        let idx = (j * 127) % N;
        let el = &mutated[idx];
        mutated[idx] = KeplerElements::new(
            el.semi_major_axis + 0.5,
            el.eccentricity,
            el.inclination,
            el.raan + 0.01,
            el.arg_perigee,
            el.mean_anomaly + 0.3,
        )
        .unwrap();
        changed.push(idx as u32);
    }

    let delta_report = engine.delta_screen(&mutated, &changed);
    let cold_report = GridScreener::new(config).screen(&mutated);

    assert_reports_identical(&delta_report, &cold_report);
}

#[test]
fn hybrid_delta_rescreen_equals_cold_hybrid_rescreen_after_64_updates() {
    const HYBRID_N: usize = 4_000;
    let population = PopulationGenerator::new(PopulationConfig {
        seed: 0xDE17A,
        ..Default::default()
    })
    .generate(HYBRID_N);
    let config = ScreeningConfig::hybrid_defaults(5.0, 120.0);

    // Warm the engine on the original population.
    let mut engine = DeltaEngine::with_variant(config, Variant::Hybrid).unwrap();
    engine.full_screen(&population);

    // Perturb 64 distinct satellites (127 is coprime with 4000, so the
    // indices j·127 mod 4000 never repeat).
    let mut mutated = population.clone();
    let mut changed: Vec<u32> = Vec::with_capacity(K);
    for j in 0..K {
        let idx = (j * 127) % HYBRID_N;
        let el = &mutated[idx];
        mutated[idx] = KeplerElements::new(
            el.semi_major_axis + 0.5,
            el.eccentricity,
            el.inclination,
            el.raan + 0.01,
            el.arg_perigee,
            el.mean_anomaly + 0.3,
        )
        .unwrap();
        changed.push(idx as u32);
    }

    let delta_report = engine.delta_screen(&mutated, &changed);
    assert_eq!(
        delta_report.variant, HYBRID_DELTA_VARIANT,
        "a warm hybrid engine must take the hybrid delta path"
    );
    let cold_report = HybridScreener::new(config).screen(&mutated);

    assert_reports_identical(&delta_report, &cold_report);
}

/// Exact-equality comparison of two screening reports: identical pair sets
/// in both directions, identical multiplicities, and one-to-one TCA/PCA
/// agreement within floating-point noise.
fn assert_reports_identical(delta_report: &ScreeningReport, cold_report: &ScreeningReport) {
    assert_eq!(
        delta_report.pairs_missing_from(cold_report),
        Vec::<(u32, u32)>::new(),
        "delta found pairs the cold screen did not"
    );
    assert_eq!(
        cold_report.pairs_missing_from(delta_report),
        Vec::<(u32, u32)>::new(),
        "cold screen found pairs the delta missed"
    );
    assert_eq!(
        delta_report.conjunction_count(),
        cold_report.conjunction_count(),
        "per-pair conjunction multiplicities differ"
    );

    // Identical pair sets and counts: compare the records one-to-one.
    let mut delta_conjunctions = delta_report.conjunctions.clone();
    let mut cold_conjunctions = cold_report.conjunctions.clone();
    let sort_key = |c: &Conjunction| (c.id_lo, c.id_hi, c.tca);
    delta_conjunctions.sort_by(|a, b| sort_key(a).partial_cmp(&sort_key(b)).unwrap());
    cold_conjunctions.sort_by(|a, b| sort_key(a).partial_cmp(&sort_key(b)).unwrap());
    for (d, c) in delta_conjunctions.iter().zip(&cold_conjunctions) {
        assert_eq!((d.id_lo, d.id_hi), (c.id_lo, c.id_hi));
        assert!(
            (d.tca - c.tca).abs() < 1e-9,
            "TCA drift on ({}, {}): {} vs {}",
            d.id_lo,
            d.id_hi,
            d.tca,
            c.tca
        );
        assert!(
            (d.pca_km - c.pca_km).abs() < 1e-9,
            "PCA drift on ({}, {}): {} vs {}",
            d.id_lo,
            d.id_hi,
            d.pca_km,
            c.pca_km
        );
    }
}
