//! Delta re-screening correctness at scale: after k = 64 element updates on
//! an n = 8000 population, a warm delta re-screen must produce *exactly* the
//! conjunction set a cold full re-screen of the mutated population produces —
//! same pairs in both directions, same TCAs and PCAs. The hybrid twin runs
//! the same invariant through the orbital filter chain at n = 4000.

use kessler::prelude::*;
use kessler::service::{DeltaEngine, ShardSpec, HYBRID_DELTA_VARIANT};

const N: usize = 8_000;
const K: usize = 64;

#[test]
fn delta_rescreen_equals_cold_rescreen_after_64_updates() {
    let population = PopulationGenerator::new(PopulationConfig {
        seed: 0xDE17A,
        ..Default::default()
    })
    .generate(N);
    let config = ScreeningConfig::grid_defaults(5.0, 120.0);

    // Warm the engine on the original population.
    let mut engine = DeltaEngine::new(config).unwrap();
    engine.full_screen(&population);

    // Perturb 64 distinct satellites (127 is coprime with 8000, so the
    // indices j·127 mod 8000 never repeat).
    let mut mutated = population.clone();
    let mut changed: Vec<u32> = Vec::with_capacity(K);
    for j in 0..K {
        let idx = (j * 127) % N;
        let el = &mutated[idx];
        mutated[idx] = KeplerElements::new(
            el.semi_major_axis + 0.5,
            el.eccentricity,
            el.inclination,
            el.raan + 0.01,
            el.arg_perigee,
            el.mean_anomaly + 0.3,
        )
        .unwrap();
        changed.push(idx as u32);
    }

    let delta_report = engine.delta_screen(&mutated, &changed);
    let cold_report = GridScreener::new(config).screen(&mutated);

    assert_reports_identical(&delta_report, &cold_report);
}

/// The ISSUE 9 acceptance invariant: with the catalog sharded by orbital
/// regime, both the sharded full screen and a warm sharded delta re-screen
/// must equal the flat, unsharded result *exactly* — same pairs, same TCAs
/// and PCAs to 1e-9 — including satellites parked right on a shard band
/// edge (whose grid cells straddle two shards) and eccentric satellites
/// whose apsis range spans several altitude bands.
#[test]
fn sharded_screens_equal_unsharded_exactly_including_boundary_straddlers() {
    let mut population = PopulationGenerator::new(PopulationConfig {
        seed: 0xDE17A,
        ..Default::default()
    })
    .generate(N);

    // Park satellites on and around an interior altitude-band edge of the
    // default shard layout (8 bands over [6500, 9000] km put edges at
    // 6812.5, 7125, …), plus a few eccentric ones whose perigee and apogee
    // fall in different bands. Their candidate cells are mirrored across
    // the shard boundary, which is exactly the machinery under test.
    let spec = ShardSpec::default();
    let band_edge = spec.r_min_km + (spec.r_max_km - spec.r_min_km) * 2.0 / spec.alt_bands as f64;
    for j in 0..48 {
        let idx = N - 1 - j * 31;
        let el = &population[idx];
        let ecc = if j % 5 == 0 { 0.04 } else { el.eccentricity };
        population[idx] = KeplerElements::new(
            band_edge + (j as f64 - 24.0) * 0.05,
            ecc,
            el.inclination,
            el.raan,
            el.arg_perigee,
            el.mean_anomaly,
        )
        .unwrap();
    }
    let config = ScreeningConfig::grid_defaults(5.0, 120.0);

    // Cold: the sharded full screen must already match the flat screener.
    let mut engine = DeltaEngine::new(config).unwrap();
    engine.set_shards(Some(spec)).unwrap();
    let sharded_full = engine.full_screen(&population);
    let cold_full = GridScreener::new(config).screen(&population);
    assert_reports_identical(&sharded_full, &cold_full);

    // Warm: perturb 64 satellites — the usual stride plus a handful of the
    // boundary straddlers — and compare the sharded delta re-screen against
    // a cold unsharded screen of the mutated population.
    let mut mutated = population.clone();
    let mut changed: Vec<u32> = Vec::with_capacity(K);
    for j in 0..K {
        let idx = if j < 8 { N - 1 - j * 31 } else { (j * 127) % N };
        let el = &mutated[idx];
        mutated[idx] = KeplerElements::new(
            el.semi_major_axis + 0.5,
            el.eccentricity,
            el.inclination,
            el.raan + 0.01,
            el.arg_perigee,
            el.mean_anomaly + 0.3,
        )
        .unwrap();
        changed.push(idx as u32);
    }

    let delta_report = engine.delta_screen(&mutated, &changed);
    let cold_report = GridScreener::new(config).screen(&mutated);
    assert_reports_identical(&delta_report, &cold_report);
}

#[test]
fn hybrid_delta_rescreen_equals_cold_hybrid_rescreen_after_64_updates() {
    const HYBRID_N: usize = 4_000;
    let population = PopulationGenerator::new(PopulationConfig {
        seed: 0xDE17A,
        ..Default::default()
    })
    .generate(HYBRID_N);
    let config = ScreeningConfig::hybrid_defaults(5.0, 120.0);

    // Warm the engine on the original population.
    let mut engine = DeltaEngine::with_variant(config, Variant::Hybrid).unwrap();
    engine.full_screen(&population);

    // Perturb 64 distinct satellites (127 is coprime with 4000, so the
    // indices j·127 mod 4000 never repeat).
    let mut mutated = population.clone();
    let mut changed: Vec<u32> = Vec::with_capacity(K);
    for j in 0..K {
        let idx = (j * 127) % HYBRID_N;
        let el = &mutated[idx];
        mutated[idx] = KeplerElements::new(
            el.semi_major_axis + 0.5,
            el.eccentricity,
            el.inclination,
            el.raan + 0.01,
            el.arg_perigee,
            el.mean_anomaly + 0.3,
        )
        .unwrap();
        changed.push(idx as u32);
    }

    let delta_report = engine.delta_screen(&mutated, &changed);
    assert_eq!(
        delta_report.variant, HYBRID_DELTA_VARIANT,
        "a warm hybrid engine must take the hybrid delta path"
    );
    let cold_report = HybridScreener::new(config).screen(&mutated);

    assert_reports_identical(&delta_report, &cold_report);
}

/// Exact-equality comparison of two screening reports: identical pair sets
/// in both directions, identical multiplicities, and one-to-one TCA/PCA
/// agreement within floating-point noise.
fn assert_reports_identical(delta_report: &ScreeningReport, cold_report: &ScreeningReport) {
    assert_eq!(
        delta_report.pairs_missing_from(cold_report),
        Vec::<(u32, u32)>::new(),
        "delta found pairs the cold screen did not"
    );
    assert_eq!(
        cold_report.pairs_missing_from(delta_report),
        Vec::<(u32, u32)>::new(),
        "cold screen found pairs the delta missed"
    );
    assert_eq!(
        delta_report.conjunction_count(),
        cold_report.conjunction_count(),
        "per-pair conjunction multiplicities differ"
    );

    // Identical pair sets and counts: compare the records one-to-one.
    let mut delta_conjunctions = delta_report.conjunctions.clone();
    let mut cold_conjunctions = cold_report.conjunctions.clone();
    let sort_key = |c: &Conjunction| (c.id_lo, c.id_hi, c.tca);
    delta_conjunctions.sort_by(|a, b| sort_key(a).partial_cmp(&sort_key(b)).unwrap());
    cold_conjunctions.sort_by(|a, b| sort_key(a).partial_cmp(&sort_key(b)).unwrap());
    for (d, c) in delta_conjunctions.iter().zip(&cold_conjunctions) {
        assert_eq!((d.id_lo, d.id_hi), (c.id_lo, c.id_hi));
        assert!(
            (d.tca - c.tca).abs() < 1e-9,
            "TCA drift on ({}, {}): {} vs {}",
            d.id_lo,
            d.id_hi,
            d.tca,
            c.tca
        );
        assert!(
            (d.pca_km - c.pca_km).abs() < 1e-9,
            "PCA drift on ({}, {}): {} vs {}",
            d.id_lo,
            d.id_hi,
            d.pca_km,
            c.pca_km
        );
    }
}
