//! The Cube method (Liou, Kessler, Matney & Stansbery 2003) — the
//! *statistical* conjunction-rate estimator the paper's related work
//! contrasts with deterministic screening (§II): "The Cube-method divides
//! the space into quadratic volumes and uses randomized object positions
//! on their orbits to fill the volumes. … the volumetric approaches have a
//! runtime complexity linear in the number of objects. However, they can
//! not be used to generate deterministic conjunctions."
//!
//! Our implementation reuses the lock-free spatial grid as the cube
//! structure. Each Monte-Carlo sample places every object at a *uniformly
//! random mean anomaly* on its own orbit; objects sharing a cube
//! contribute a kinetic-theory collision rate
//!
//! ```text
//!   rate(i, j) += s_i · s_j · v_rel · σ · dU
//! ```
//!
//! with `s = 1/dU` the per-object spatial density in the cube volume `dU`
//! and `σ` the collision cross-section. The API deliberately returns
//! *rates*, not conjunctions — reproducing the structural limitation the
//! paper calls out.

use crate::config::ScreeningConfig;
use kessler_grid::pairset::{CandidatePair, PairSet};
use kessler_grid::SpatialGrid;
use kessler_math::Vec3;
use kessler_orbits::{BatchPropagator, ContourSolver, KeplerElements};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cube-method configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CubeConfig {
    /// Cube edge length `dU^(1/3)`, km. Liou recommends ~1 % of the orbit
    /// altitude; 10 km is the conventional LEO choice.
    pub cube_size_km: f64,
    /// Monte-Carlo samples (each re-randomises every object's anomaly).
    pub samples: u32,
    /// Collision cross-section radius, km (σ = π r²).
    pub cross_section_radius_km: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CubeConfig {
    fn default() -> Self {
        CubeConfig {
            cube_size_km: 10.0,
            samples: 200,
            cross_section_radius_km: 2.0,
            seed: 0xC0BE,
        }
    }
}

/// Result of a Cube run.
#[derive(Debug, Clone, Serialize)]
pub struct CubeReport {
    pub config: CubeConfig,
    pub n_satellites: usize,
    /// Total expected collision rate, events per second.
    pub total_rate_per_s: f64,
    /// Per-pair rates (events/s), only pairs that ever shared a cube.
    pub pair_rates: Vec<((u32, u32), f64)>,
}

impl CubeReport {
    /// Expected number of collision-cross-section crossings over `span`
    /// seconds — comparable in order of magnitude to a deterministic
    /// screening count with threshold = cross-section radius.
    pub fn expected_events(&self, span_seconds: f64) -> f64 {
        self.total_rate_per_s * span_seconds
    }
}

/// Deterministic xorshift64* generator (the Cube method's randomisation
/// must be reproducible for tests, and `kessler-core` keeps `rand` out of
/// its dependency set).
struct Lcg(u64);

impl Lcg {
    fn next_uniform(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run the Cube estimator.
pub fn cube_estimate(population: &[KeplerElements], config: &CubeConfig) -> CubeReport {
    let n = population.len();
    let solver = ContourSolver::default();
    let propagator = BatchPropagator::new(population);
    let cube_volume = config.cube_size_km.powi(3);
    let sigma = std::f64::consts::PI * config.cross_section_radius_km.powi(2);

    let mut rng = Lcg(config.seed | 1);
    let grid = SpatialGrid::new(n, config.cube_size_km);
    let mut rates: HashMap<(u32, u32), f64> = HashMap::new();

    let mut anomalies = vec![0.0f64; n];
    let mut positions = vec![Vec3::ZERO; n];
    for sample in 0..config.samples {
        // Randomise every object's position along its own orbit.
        for a in anomalies.iter_mut() {
            *a = rng.next_uniform() * std::f64::consts::TAU;
        }
        positions.par_iter_mut().enumerate().for_each(|(i, slot)| {
            let mut el = population[i];
            el.mean_anomaly = anomalies[i];
            let pc = kessler_orbits::PropagationConstants::from_elements(&el);
            *slot = pc.position(0.0, &solver);
        });
        if sample > 0 {
            grid.reset();
        }
        grid.insert_all(&positions)
            .expect("grid sized at 2n cannot fill up");

        // Same-cube pairs only (the Cube method has no neighbour search —
        // the cube *is* the coincidence volume).
        let pairs = PairSet::with_capacity((4 * n).max(1024));
        for slot in grid.occupied_slots() {
            let members: Vec<u32> = grid.cell_members(slot).collect();
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    pairs.insert(CandidatePair::new(a, b, 0));
                }
            }
        }
        for p in pairs.drain_to_vec() {
            let va = velocity_of(&propagator, p.id_lo as usize, anomalies[p.id_lo as usize]);
            let vb = velocity_of(&propagator, p.id_hi as usize, anomalies[p.id_hi as usize]);
            let v_rel = va.dist(vb);
            // s_i = s_j = 1/dU; rate contribution averaged over samples.
            let contribution = v_rel * sigma / cube_volume / config.samples as f64;
            *rates.entry((p.id_lo, p.id_hi)).or_insert(0.0) += contribution;
        }
    }

    let total_rate_per_s = rates.values().sum();
    let mut pair_rates: Vec<_> = rates.into_iter().collect();
    pair_rates.sort_by(|a, b| b.1.total_cmp(&a.1));
    CubeReport {
        config: *config,
        n_satellites: n,
        total_rate_per_s,
        pair_rates,
    }
}

fn velocity_of(propagator: &BatchPropagator, index: usize, anomaly: f64) -> Vec3 {
    // Velocity at the randomised anomaly: rebuild the constants with the
    // overridden anomaly (cheap relative to the MC loop).
    let mut c = propagator.constants_of(index);
    c.m0 = anomaly;
    c.propagate(0.0, &ContourSolver::default()).velocity
}

/// Convenience: derive a CubeConfig from a screening configuration
/// (threshold → cross-section radius).
pub fn cube_config_from(config: &ScreeningConfig, samples: u32, seed: u64) -> CubeConfig {
    CubeConfig {
        cube_size_km: 10.0f64.max(config.threshold_km),
        samples,
        cross_section_radius_km: config.threshold_km,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crossing_shell(n: usize) -> Vec<KeplerElements> {
        // n satellites on crossing circular orbits of the same radius:
        // collisions are geometrically possible for every pair.
        (0..n)
            .map(|i| {
                KeplerElements::new(
                    7_000.0,
                    0.0,
                    0.3 + 2.4 * (i as f64 / n as f64),
                    (i as f64 * 2.39) % std::f64::consts::TAU,
                    0.0,
                    (i as f64 * 1.17) % std::f64::consts::TAU,
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn rate_is_zero_for_disjoint_shells() {
        let pop = vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(12_000.0, 0.0, 1.2, 1.0, 0.0, 2.0).unwrap(),
        ];
        let report = cube_estimate(
            &pop,
            &CubeConfig {
                samples: 100,
                ..Default::default()
            },
        );
        assert_eq!(report.total_rate_per_s, 0.0);
        assert!(report.pair_rates.is_empty());
    }

    #[test]
    fn crossing_orbits_have_positive_rate() {
        let pop = crossing_shell(60);
        // 10 km cubes on a 7000 km sphere make same-cube coincidences
        // astronomically rare at n = 60; test with coarse 150 km cubes.
        let report = cube_estimate(
            &pop,
            &CubeConfig {
                cube_size_km: 150.0,
                samples: 500,
                ..Default::default()
            },
        );
        assert!(
            report.total_rate_per_s > 0.0,
            "60 co-radius crossing orbits must collide eventually"
        );
        // Rates are attributed to real pairs.
        for &((a, b), rate) in &report.pair_rates {
            assert!(a < b && (b as usize) < pop.len());
            assert!(rate > 0.0);
        }
    }

    #[test]
    fn rate_is_deterministic_per_seed() {
        let pop = crossing_shell(30);
        let cfg = CubeConfig {
            cube_size_km: 200.0,
            samples: 150,
            ..Default::default()
        };
        let a = cube_estimate(&pop, &cfg);
        let b = cube_estimate(&pop, &cfg);
        assert_eq!(a.total_rate_per_s, b.total_rate_per_s);
        let c = cube_estimate(&pop, &CubeConfig { seed: 999, ..cfg });
        assert_ne!(a.total_rate_per_s, c.total_rate_per_s);
    }

    #[test]
    fn rate_scales_with_cross_section() {
        // σ ∝ r²: doubling the radius quadruples every contribution.
        let pop = crossing_shell(40);
        let base = CubeConfig {
            cube_size_km: 200.0,
            samples: 200,
            ..Default::default()
        };
        let small = cube_estimate(&pop, &base);
        let big = cube_estimate(
            &pop,
            &CubeConfig {
                cross_section_radius_km: 4.0,
                ..base
            },
        );
        assert!(small.total_rate_per_s > 0.0);
        let ratio = big.total_rate_per_s / small.total_rate_per_s;
        assert!((ratio - 4.0).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn expected_events_scale_linearly_with_span() {
        let pop = crossing_shell(40);
        let report = cube_estimate(
            &pop,
            &CubeConfig {
                cube_size_km: 200.0,
                samples: 200,
                ..Default::default()
            },
        );
        let one_day = report.expected_events(86_400.0);
        let two_days = report.expected_events(2.0 * 86_400.0);
        assert!((two_days - 2.0 * one_day).abs() < 1e-12);
    }

    #[test]
    fn order_of_magnitude_agrees_with_deterministic_screening() {
        // The paper's point, quantified: on a dense shell the Cube rate
        // must predict the same order of magnitude of sub-threshold
        // encounters as the deterministic grid screener finds.
        use crate::screener::grid::GridScreener;
        use crate::Screener;
        let pop = crossing_shell(80);
        let span = 5_700.0; // ≈ one orbital period
        let threshold = 5.0;

        let deterministic = GridScreener::new(ScreeningConfig::grid_defaults(threshold, span))
            .screen(&pop)
            .conjunction_count() as f64;
        let cube = cube_estimate(
            &pop,
            &CubeConfig {
                cube_size_km: 50.0,
                samples: 2_000,
                cross_section_radius_km: threshold,
                seed: 7,
            },
        );
        let predicted = cube.expected_events(span);
        assert!(
            predicted > deterministic / 20.0 && predicted < deterministic * 20.0 + 20.0,
            "cube predicts {predicted}, deterministic found {deterministic}"
        );
    }
}
