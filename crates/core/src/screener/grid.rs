//! The purely grid-based screening variant (§III, §IV).

use crate::cancel::{CancelToken, Cancelled};
use crate::config::{ScreeningConfig, Variant};
use crate::conjunction::{dedup_conjunctions, Conjunction, ScreeningReport};
use crate::planner::MemoryModel;
use crate::refine::{grid_refine_interval, refine_pair};
use crate::screener::grid_phase::run_grid_phase_cancellable;
use crate::screener::{run_in_pool, Screener};
use crate::timing::{PhaseTimer, PhaseTimings};
use kessler_orbits::{BatchPropagator, ContourSolver, KeplerElements};
use rayon::prelude::*;
use std::collections::HashSet;
use std::time::Instant;

/// Refinement proceeds in chunks of this many candidate entries between
/// cancellation checks: large enough that the per-chunk rayon dispatch is
/// noise, small enough that a CANCEL lands within a few ms of work.
const REFINE_CHUNK: usize = 8192;

/// Grid-based conjunction screener.
///
/// Pipeline per §III: allocate once → per step: parallel propagation +
/// insertion + pair extraction → Brent PCA/TCA refinement of every
/// candidate (no orbital filters).
pub struct GridScreener {
    config: ScreeningConfig,
    solver: ContourSolver,
}

impl GridScreener {
    /// Fallible constructor: an invalid configuration is an `Err`, never a
    /// panic. Long-running callers (the service daemon) use this so a bad
    /// config becomes an error response instead of a crash.
    pub fn try_new(config: ScreeningConfig) -> Result<GridScreener, String> {
        config.validate()?;
        Ok(GridScreener {
            config,
            solver: ContourSolver::default(),
        })
    }

    /// Panicking convenience wrapper around [`GridScreener::try_new`] for
    /// bench/CLI paths where an invalid config is a programming error.
    pub fn new(config: ScreeningConfig) -> GridScreener {
        GridScreener::try_new(config).expect("invalid screening configuration")
    }

    pub fn config(&self) -> &ScreeningConfig {
        &self.config
    }

    /// Screen `population` while checking `cancel` at phase boundaries:
    /// between grid sampling steps and between refinement chunks of
    /// [`REFINE_CHUNK`] candidates. A screen that completes without the
    /// token tripping returns exactly the report [`Screener::screen`]
    /// would have produced.
    pub fn screen_cancellable(
        &self,
        population: &[KeplerElements],
        cancel: &CancelToken,
    ) -> Result<ScreeningReport, Cancelled> {
        let config = self.config;
        let solver = self.solver;
        run_in_pool(config.threads, move || {
            screen_body(&config, &solver, population, Some(cancel))
        })
    }
}

/// The full grid pipeline, shared between the infallible and the
/// cancellable entry points.
fn screen_body(
    config: &ScreeningConfig,
    solver: &ContourSolver,
    population: &[KeplerElements],
    cancel: Option<&CancelToken>,
) -> Result<ScreeningReport, Cancelled> {
    let wall = Instant::now();
    let mut timings = PhaseTimings::default();
    let planner = MemoryModel::new(Variant::Grid).plan(population.len(), config);

    // Step 1 (§III): fixed allocations — satellite data and the
    // precomputed Kepler solver constants.
    let propagator = BatchPropagator::new(population);

    // Steps 2: propagation, insertion, pair identification.
    let phase = run_grid_phase_cancellable(&propagator, config, &planner, &mut timings, cancel)?;
    let candidate_entries = phase.entries.len();
    let candidate_pairs = phase
        .entries
        .iter()
        .map(|e| (e.id_lo, e.id_hi))
        .collect::<HashSet<_>>()
        .len();

    // Step 4: PCA/TCA determination, one Brent search per candidate
    // occurrence, all independent (§IV-C). Chunked so a tripped token is
    // observed between chunks; chunk outputs are appended in order, which
    // keeps the result identical to the single par_iter pass.
    let mut found: Vec<Conjunction> = Vec::new();
    {
        let _timer = PhaseTimer::start(&mut timings.refinement);
        let columns = propagator.columns();
        for chunk in phase.entries.chunks(REFINE_CHUNK) {
            if let Some(token) = cancel {
                token.check()?;
            }
            found.par_extend(chunk.par_iter().filter_map(|entry| {
                // Gather the two satellites' constants out of the SoA
                // columns for the scalar Brent search.
                let a = columns.gather(entry.id_lo as usize);
                let b = columns.gather(entry.id_hi as usize);
                let t = entry.step as f64 * planner.seconds_per_sample;
                let interval = grid_refine_interval(&a, &b, solver, t, planner.cell_size_km);
                refine_pair(
                    &a,
                    &b,
                    solver,
                    entry.id_lo,
                    entry.id_hi,
                    interval,
                    config.threshold_km,
                )
            }));
        }
    }
    found = dedup_conjunctions(found, config.tca_dedup_tolerance_s);

    timings.total = wall.elapsed();
    Ok(ScreeningReport {
        variant: Variant::Grid.label().to_string(),
        n_satellites: population.len(),
        config: *config,
        conjunctions: found,
        candidate_entries,
        candidate_pairs,
        pair_set_regrows: phase.regrows,
        timings,
        planner,
        filter_stats: None,
        device_metrics: None,
    })
}

impl Screener for GridScreener {
    fn screen(&self, population: &[KeplerElements]) -> ScreeningReport {
        let config = self.config;
        let solver = self.solver;
        run_in_pool(config.threads, move || {
            screen_body(&config, &solver, population, None)
                .expect("uncancellable screen cannot be cancelled")
        })
    }

    fn label(&self) -> &str {
        "grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crossing_pair_population() -> Vec<KeplerElements> {
        vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ]
    }

    #[test]
    fn detects_a_head_on_conjunction() {
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let report = GridScreener::new(config).screen(&crossing_pair_population());
        assert!(report.conjunction_count() >= 1, "report: {report:?}");
        let c = &report.conjunctions[0];
        assert_eq!(c.pair(), (0, 1));
        assert!(c.tca.abs() < 1.0, "tca = {}", c.tca);
        assert!(c.pca_km < 1.0, "pca = {}", c.pca_km);
    }

    #[test]
    fn distant_satellites_produce_nothing() {
        let pop = vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(9_000.0, 0.0, 1.2, 1.0, 0.0, 2.0).unwrap(),
        ];
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let report = GridScreener::new(config).screen(&pop);
        assert_eq!(report.conjunction_count(), 0);
        assert_eq!(report.candidate_entries, 0);
    }

    #[test]
    fn recurring_conjunctions_are_counted_per_encounter() {
        // Same-period crossing orbits meet at the node every revolution:
        // screening 2.2 periods must find ≥ 2 distinct conjunctions (the
        // dedup must NOT collapse different passes).
        let pop = crossing_pair_population();
        let period = pop[0].period();
        let config = ScreeningConfig::grid_defaults(2.0, 2.2 * period);
        let report = GridScreener::new(config).screen(&pop);
        assert!(
            report.conjunction_count() >= 2,
            "found {} conjunctions",
            report.conjunction_count()
        );
        // All for the same colliding pair.
        assert_eq!(report.colliding_pairs().len(), 1);
    }

    #[test]
    fn empty_population_is_fine() {
        let config = ScreeningConfig::grid_defaults(2.0, 60.0);
        let report = GridScreener::new(config).screen(&[]);
        assert_eq!(report.conjunction_count(), 0);
        assert_eq!(report.n_satellites, 0);
    }

    #[test]
    fn single_satellite_is_fine() {
        let config = ScreeningConfig::grid_defaults(2.0, 60.0);
        let pop = vec![KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap()];
        let report = GridScreener::new(config).screen(&pop);
        assert_eq!(report.conjunction_count(), 0);
    }

    #[test]
    fn explicit_thread_count_gives_identical_results() {
        let pop = crossing_pair_population();
        let mut config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let baseline = GridScreener::new(config).screen(&pop);
        config.threads = Some(1);
        let single = GridScreener::new(config).screen(&pop);
        assert_eq!(baseline.conjunction_count(), single.conjunction_count());
        for (a, b) in baseline.conjunctions.iter().zip(&single.conjunctions) {
            assert_eq!(a.pair(), b.pair());
            assert!((a.tca - b.tca).abs() < 1e-6);
            assert!((a.pca_km - b.pca_km).abs() < 1e-9);
        }
    }

    #[test]
    fn timings_are_populated() {
        let config = ScreeningConfig::grid_defaults(2.0, 120.0);
        let report = GridScreener::new(config).screen(&crossing_pair_population());
        assert!(report.timings.total.as_nanos() > 0);
        assert!(report.timings.insertion.as_nanos() > 0);
        assert!(report.timings.total >= report.timings.insertion);
    }

    #[test]
    fn cancellable_screen_matches_plain_screen_when_never_cancelled() {
        let pop = crossing_pair_population();
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let screener = GridScreener::new(config);
        let plain = screener.screen(&pop);
        let token = CancelToken::new();
        let tokened = screener
            .screen_cancellable(&pop, &token)
            .expect("never tripped");
        assert_eq!(plain.conjunction_count(), tokened.conjunction_count());
        assert_eq!(plain.candidate_entries, tokened.candidate_entries);
        for (a, b) in plain.conjunctions.iter().zip(&tokened.conjunctions) {
            assert_eq!(a.pair(), b.pair());
            assert_eq!(a.tca.to_bits(), b.tca.to_bits());
            assert_eq!(a.pca_km.to_bits(), b.pca_km.to_bits());
        }
    }

    #[test]
    fn pre_tripped_token_cancels_before_any_work() {
        let pop = crossing_pair_population();
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let token = CancelToken::new();
        token.cancel();
        let result = GridScreener::new(config).screen_cancellable(&pop, &token);
        assert_eq!(result.unwrap_err(), crate::cancel::Cancelled);
    }

    #[test]
    #[should_panic(expected = "invalid screening configuration")]
    fn invalid_config_is_rejected_at_construction() {
        let mut config = ScreeningConfig::grid_defaults(2.0, 600.0);
        config.threshold_km = -1.0;
        GridScreener::new(config);
    }

    #[test]
    fn try_new_rejects_invalid_config_without_panicking() {
        let mut config = ScreeningConfig::grid_defaults(2.0, 600.0);
        config.threshold_km = -1.0;
        assert!(GridScreener::try_new(config).is_err());
    }
}
