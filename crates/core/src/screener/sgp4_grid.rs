//! Grid screening with SGP4 dynamics — real-catalog screening.
//!
//! The paper's evaluation uses two-body propagation, which is exact for its
//! synthetic elements; real TLE catalogs demand SGP4 (their elements are
//! SGP4 mean elements, and drag/J2 secular motion shifts LEO positions by
//! kilometres within hours). This screener runs the identical grid pipeline
//! — Eq. 1 cells, lock-free insertion, 26-neighbourhood candidate
//! extraction, Brent PCA/TCA refinement with boundary-escape handling —
//! on top of the from-scratch [`kessler_orbits::sgp4`] propagator.
//!
//! Construction skips (and reports) objects SGP4 cannot handle
//! (deep-space period, invalid elements) instead of failing the batch, the
//! behaviour an operational catalog screen needs.

use crate::config::{ScreeningConfig, Variant};
use crate::conjunction::{dedup_conjunctions, Conjunction, ScreeningReport};
use crate::planner::MemoryModel;
use crate::refine::refine_pair_with;
use crate::screener::{run_in_pool, Screener};
use crate::timing::{PhaseTimer, PhaseTimings};
use kessler_grid::pairset::PairSet;
use kessler_grid::SpatialGrid;
use kessler_math::{Interval, Vec3};
use kessler_orbits::sgp4::{MeanElements, Sgp4, Sgp4Error};
use kessler_orbits::KeplerElements;
use rayon::prelude::*;
use std::time::Instant;

/// Grid screener over SGP4-propagated TLE mean elements.
pub struct Sgp4GridScreener {
    config: ScreeningConfig,
    propagators: Vec<Sgp4>,
    /// Indices (into the input slice) of objects SGP4 rejected, with the
    /// reason — deep-space objects, decayed orbits.
    skipped: Vec<(usize, Sgp4Error)>,
}

impl Sgp4GridScreener {
    /// Initialise from TLE mean elements. Unpropagatable objects are
    /// recorded in [`Sgp4GridScreener::skipped`] and excluded from the
    /// screen; their ids never appear in conjunctions.
    pub fn new(config: ScreeningConfig, elements: &[MeanElements]) -> Sgp4GridScreener {
        config.validate().expect("invalid screening configuration");
        let mut propagators = Vec::with_capacity(elements.len());
        let mut skipped = Vec::new();
        for (i, el) in elements.iter().enumerate() {
            match Sgp4::new(el) {
                Ok(p) => propagators.push(p),
                Err(e) => {
                    skipped.push((i, e));
                    // Keep index alignment with a placeholder that is
                    // never propagated (masked below).
                    propagators.push(
                        Sgp4::new(&MeanElements {
                            mean_motion_rev_per_day: 14.0,
                            eccentricity: 0.001,
                            inclination: 0.9,
                            raan: 0.0,
                            arg_perigee: 0.0,
                            mean_anomaly: 0.0,
                            bstar: 0.0,
                        })
                        .expect("placeholder elements are valid"),
                    );
                }
            }
        }
        Sgp4GridScreener {
            config,
            propagators,
            skipped,
        }
    }

    /// Objects that could not be screened, with reasons.
    pub fn skipped(&self) -> &[(usize, Sgp4Error)] {
        &self.skipped
    }

    fn is_masked(&self, id: usize) -> bool {
        self.skipped.iter().any(|&(i, _)| i == id)
    }

    /// Position at `t` seconds past the common epoch (SGP4 works in
    /// minutes). Objects whose drag model decays mid-span are parked far
    /// outside the populated volume so they never pair.
    fn position(&self, id: usize, t_seconds: f64) -> Vec3 {
        const PARKED: Vec3 = Vec3 {
            x: 1.0e7,
            y: 1.0e7,
            z: 1.0e7,
        };
        if self.is_masked(id) {
            return PARKED + Vec3::new(0.0, 0.0, id as f64 * 1.0e5);
        }
        match self.propagators[id].propagate(t_seconds / 60.0) {
            Ok(state) => state.position,
            Err(_) => PARKED + Vec3::new(0.0, 0.0, id as f64 * 1.0e5),
        }
    }

    fn distance_sq(&self, a: usize, b: usize, t_seconds: f64) -> f64 {
        self.position(a, t_seconds)
            .dist_sq(self.position(b, t_seconds))
    }
}

impl Screener for Sgp4GridScreener {
    fn screen(&self, _population: &[KeplerElements]) -> ScreeningReport {
        self.screen_tles()
    }

    fn label(&self) -> &str {
        "grid-sgp4"
    }
}

impl Sgp4GridScreener {
    /// Screen the TLE set this screener was constructed with.
    pub fn screen_tles(&self) -> ScreeningReport {
        let config = self.config;
        run_in_pool(config.threads, || {
            let wall = Instant::now();
            let mut timings = PhaseTimings::default();
            let n = self.propagators.len();
            let planner = MemoryModel::new(Variant::Grid).plan(n, &config);

            let grid = SpatialGrid::new(n, planner.cell_size_km);
            let pairs = PairSet::with_capacity(planner.pair_capacity);
            let mut positions = vec![Vec3::ZERO; n];

            for step in 0..planner.total_steps {
                let t = step as f64 * planner.seconds_per_sample;
                {
                    let _timer = PhaseTimer::start(&mut timings.insertion);
                    positions
                        .par_iter_mut()
                        .enumerate()
                        .for_each(|(i, slot)| *slot = self.position(i, t));
                    if step > 0 {
                        grid.reset();
                    }
                    grid.insert_all(&positions)
                        .expect("grid sized at 2n slots cannot fill up");
                }
                {
                    let _timer = PhaseTimer::start(&mut timings.pair_extraction);
                    grid.collect_candidate_pairs(step, config.neighbor_scan, &pairs);
                    assert_eq!(pairs.overflow_count(), 0, "pair set sized by Eq. 3");
                }
            }

            let entries = pairs.drain_to_vec();
            let candidate_entries = entries.len();
            let candidate_pairs = {
                let mut p: Vec<_> = entries.iter().map(|e| (e.id_lo, e.id_hi)).collect();
                p.sort_unstable();
                p.dedup();
                p.len()
            };

            let mut found: Vec<Conjunction>;
            {
                let _timer = PhaseTimer::start(&mut timings.refinement);
                found = entries
                    .par_iter()
                    .filter_map(|e| {
                        let t = e.step as f64 * planner.seconds_per_sample;
                        // Interval radius per §IV-C from LEO speeds; SGP4
                        // velocities hover around the same 7–8 km/s.
                        let radius =
                            2.0 * planner.cell_size_km / kessler_orbits::constants::LEO_SPEED;
                        refine_pair_with(
                            |tt| self.distance_sq(e.id_lo as usize, e.id_hi as usize, tt),
                            e.id_lo,
                            e.id_hi,
                            Interval::new(t - radius, t + radius),
                            config.threshold_km,
                        )
                    })
                    .collect();
            }
            found = dedup_conjunctions(found, config.tca_dedup_tolerance_s);
            found.retain(|c| c.tca >= -1e-9 && c.tca <= config.span_seconds + 1e-9);

            timings.total = wall.elapsed();
            ScreeningReport {
                variant: "grid-sgp4".to_string(),
                n_satellites: n,
                config,
                conjunctions: found,
                candidate_entries,
                candidate_pairs,
                pair_set_regrows: 0,
                timings,
                planner,
                filter_stats: None,
                device_metrics: None,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(rev_per_day: f64, e: f64, i: f64, raan: f64, argp: f64, m: f64) -> MeanElements {
        MeanElements {
            mean_motion_rev_per_day: rev_per_day,
            eccentricity: e,
            inclination: i,
            raan,
            arg_perigee: argp,
            mean_anomaly: m,
            bstar: 0.0,
        }
    }

    #[test]
    fn finds_a_co_phased_crossing_conjunction() {
        // Two equal-period circular orbits crossing at the node with
        // matched phases (the SGP4 analogue of the two-body test).
        let els = vec![
            mean(15.2, 0.0001, 0.4, 0.0, 0.0, 0.0),
            mean(15.2, 0.0001, 1.2, 0.0, 0.0, 0.0),
        ];
        let config = ScreeningConfig::grid_defaults(10.0, 600.0);
        let screener = Sgp4GridScreener::new(config, &els);
        assert!(screener.skipped().is_empty());
        let report = screener.screen_tles();
        assert!(
            report.conjunction_count() >= 1,
            "SGP4 pair must meet near the node: {report:?}"
        );
        // With J2 periodics the TCA shifts a bit from the ideal 0, but
        // stays within the first minute.
        assert!(report.conjunctions[0].tca.abs() < 60.0);
    }

    #[test]
    fn deep_space_objects_are_skipped_not_fatal() {
        let els = vec![
            mean(15.2, 0.0001, 0.4, 0.0, 0.0, 0.0),
            mean(1.0027, 0.0002, 0.01, 1.0, 2.0, 3.0), // GEO → skipped
            mean(15.2, 0.0001, 1.2, 0.0, 0.0, 0.0),
        ];
        let config = ScreeningConfig::grid_defaults(10.0, 300.0);
        let screener = Sgp4GridScreener::new(config, &els);
        assert_eq!(screener.skipped().len(), 1);
        assert_eq!(screener.skipped()[0].0, 1);
        let report = screener.screen_tles();
        // The skipped object must never appear in a conjunction.
        for c in &report.conjunctions {
            assert_ne!(c.id_lo, 1);
            assert_ne!(c.id_hi, 1);
        }
    }

    #[test]
    fn agrees_with_two_body_screener_for_undragged_leo() {
        // With bstar = 0 and a short span, SGP4 differs from two-body only
        // by J2 — colliding-pair sets on a crossing geometry must agree.
        use crate::screener::grid::GridScreener;
        let els_sgp4 = vec![
            mean(15.2, 0.0001, 0.4, 0.0, 0.0, 0.0),
            mean(15.2, 0.0001, 1.2, 0.0, 0.0, 0.0),
        ];
        // Matching two-body elements: a from the period.
        let n_rad_s = 15.2 * std::f64::consts::TAU / 86_400.0;
        let a = (kessler_orbits::constants::MU_EARTH / (n_rad_s * n_rad_s)).cbrt();
        let pop = vec![
            KeplerElements::new(a, 0.0001, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(a, 0.0001, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ];
        let config = ScreeningConfig::grid_defaults(10.0, 600.0);
        let sgp4_pairs = Sgp4GridScreener::new(config, &els_sgp4)
            .screen_tles()
            .colliding_pairs();
        let kepler_pairs = GridScreener::new(config).screen(&pop).colliding_pairs();
        assert_eq!(sgp4_pairs, kepler_pairs);
    }
}
