//! The hybrid screening variant (§III, §IV-C): grid pre-filter with larger
//! cells and steps, classical orbital filters on the candidates, Brent
//! refinement inside the filter-derived time windows.

use crate::config::{ScreeningConfig, Variant};
use crate::conjunction::{dedup_conjunctions, Conjunction, ScreeningReport};
use crate::planner::MemoryModel;
use crate::refine::{grid_refine_interval, refine_pair};
use crate::screener::grid_phase::run_grid_phase;
use crate::screener::{run_in_pool, Screener};
use crate::timing::{PhaseTimer, PhaseTimings};
use kessler_filters::{FilterChain, FilterConfig, FilterDecision};
use kessler_math::Interval;
use kessler_orbits::{BatchPropagator, ContourSolver, KeplerElements};
use rayon::prelude::*;
use std::time::Instant;

/// Hybrid conjunction screener.
pub struct HybridScreener {
    config: ScreeningConfig,
    filter_config: FilterConfig,
    solver: ContourSolver,
}

/// A unique candidate pair with every sampling step the grid saw it at.
struct GroupedPair {
    id_lo: u32,
    id_hi: u32,
    steps: Vec<u32>,
}

impl HybridScreener {
    pub fn new(config: ScreeningConfig) -> HybridScreener {
        config.validate().expect("invalid screening configuration");
        HybridScreener {
            config,
            filter_config: FilterConfig::new(config.threshold_km),
            solver: ContourSolver::default(),
        }
    }

    /// Override the filter configuration (padding, coplanarity tolerance).
    pub fn with_filter_config(mut self, fc: FilterConfig) -> HybridScreener {
        self.filter_config = fc;
        self
    }

    pub fn config(&self) -> &ScreeningConfig {
        &self.config
    }
}

/// Collapse (pair, step) entries into unique pairs with their step lists.
fn group_pairs(mut entries: Vec<kessler_grid::CandidatePair>) -> Vec<GroupedPair> {
    entries.sort_unstable();
    let mut out: Vec<GroupedPair> = Vec::new();
    for e in entries {
        match out.last_mut() {
            Some(g) if g.id_lo == e.id_lo && g.id_hi == e.id_hi => g.steps.push(e.step),
            _ => out.push(GroupedPair {
                id_lo: e.id_lo,
                id_hi: e.id_hi,
                steps: vec![e.step],
            }),
        }
    }
    out
}

impl Screener for HybridScreener {
    fn screen(&self, population: &[KeplerElements]) -> ScreeningReport {
        let config = self.config;
        let filter_config = self.filter_config;
        let solver = self.solver;
        run_in_pool(config.threads, move || {
            let wall = Instant::now();
            let mut timings = PhaseTimings::default();
            let planner = MemoryModel::new(Variant::Hybrid).plan(population.len(), &config);

            let propagator = BatchPropagator::new(population);

            // Grid pre-filter at the (possibly reduced) hybrid step size.
            let phase = run_grid_phase(&propagator, &config, &planner, &mut timings);
            let candidate_entries = phase.entries.len();
            let grouped = group_pairs(phase.entries);
            let candidate_pairs = grouped.len();

            // Step 3 (§III): orbital filters on the unique pairs.
            let chain = FilterChain::new(filter_config);
            let span = Interval::new(0.0, config.span_seconds);
            let decisions: Vec<FilterDecision>;
            {
                let _timer = PhaseTimer::start(&mut timings.filters);
                decisions = grouped
                    .par_iter()
                    .map(|g| {
                        chain.evaluate(
                            &population[g.id_lo as usize],
                            &population[g.id_hi as usize],
                            span,
                        )
                    })
                    .collect();
            }

            // Step 4: PCA/TCA determination. Non-coplanar survivors search
            // the filter windows; coplanar pairs fall back to the
            // grid-style per-step intervals (§IV-C).
            let mut found: Vec<Conjunction>;
            {
                let _timer = PhaseTimer::start(&mut timings.refinement);
                let constants = propagator.constants();
                found = grouped
                    .par_iter()
                    .zip(decisions.par_iter())
                    .flat_map_iter(|(g, decision)| {
                        let a = &constants[g.id_lo as usize];
                        let b = &constants[g.id_hi as usize];
                        let mut local: Vec<Conjunction> = Vec::new();
                        match decision {
                            FilterDecision::Windows(windows) => {
                                for w in windows {
                                    // Pad a little so boundary minima are
                                    // interior; refine_pair clips escapes.
                                    let padded = w.padded(1.0);
                                    if let Some(c) = refine_pair(
                                        a,
                                        b,
                                        &solver,
                                        g.id_lo,
                                        g.id_hi,
                                        padded,
                                        config.threshold_km,
                                    ) {
                                        local.push(c);
                                    }
                                }
                            }
                            FilterDecision::Coplanar => {
                                for &step in &g.steps {
                                    let t = step as f64 * planner.seconds_per_sample;
                                    let interval = grid_refine_interval(
                                        a,
                                        b,
                                        &solver,
                                        t,
                                        planner.cell_size_km,
                                    );
                                    if let Some(c) = refine_pair(
                                        a,
                                        b,
                                        &solver,
                                        g.id_lo,
                                        g.id_hi,
                                        interval,
                                        config.threshold_km,
                                    ) {
                                        local.push(c);
                                    }
                                }
                            }
                            FilterDecision::ExcludedApsis
                            | FilterDecision::ExcludedPath
                            | FilterDecision::ExcludedTime => {}
                        }
                        local
                    })
                    .collect();
            }
            found = dedup_conjunctions(found, config.tca_dedup_tolerance_s);
            // Conjunctions must lie inside the screened span.
            found.retain(|c| c.tca >= span.start - 1e-9 && c.tca <= span.end + 1e-9);

            timings.total = wall.elapsed();
            ScreeningReport {
                variant: Variant::Hybrid.label().to_string(),
                n_satellites: population.len(),
                config,
                conjunctions: found,
                candidate_entries,
                candidate_pairs,
                pair_set_regrows: phase.regrows,
                timings,
                planner,
                filter_stats: Some(chain.stats.snapshot()),
                device_metrics: None,
            }
        })
    }

    fn label(&self) -> &str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crossing_pair_population() -> Vec<KeplerElements> {
        vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ]
    }

    #[test]
    fn detects_the_head_on_conjunction_via_windows() {
        let config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        let report = HybridScreener::new(config).screen(&crossing_pair_population());
        assert!(report.conjunction_count() >= 1, "report: {report:?}");
        let c = &report.conjunctions[0];
        assert_eq!(c.pair(), (0, 1));
        assert!(c.tca.abs() < 1.0, "tca = {}", c.tca);
        // The filter stats must show the pair went through the chain.
        let stats = report.filter_stats.unwrap();
        assert_eq!(stats.tested, 1);
        assert_eq!(stats.kept, 1);
    }

    #[test]
    fn coplanar_candidates_take_the_sampled_path() {
        // Two coplanar satellites, one trailing the other closely on the
        // same orbit — within the (huge) hybrid cells but never within the
        // threshold.
        let pop = vec![
            KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 0.0, 0.005).unwrap(),
        ];
        let config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        let report = HybridScreener::new(config).screen(&pop);
        let stats = report.filter_stats.unwrap();
        assert_eq!(stats.coplanar, 1, "stats: {stats:?}");
        // Separation ≈ 0.005 rad · 7000 km = 35 km > 2 km: no conjunction.
        assert_eq!(report.conjunction_count(), 0);
    }

    #[test]
    fn coplanar_collision_course_is_detected() {
        // Two satellites on the same eccentric orbit with a tiny phase
        // offset stay ~0.7 m apart. Their chord distance oscillates with
        // the orbital period, so a span covering a full revolution contains
        // a genuine local minimum (PCA) — which the coplanar sampled path
        // must find. (Over a short span the distance is monotone and the
        // strict PCA definition correctly yields nothing.)
        let pop = vec![
            KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 0.0, 1e-7).unwrap(),
        ];
        let period = pop[0].period();
        let config = ScreeningConfig::hybrid_defaults(2.0, 1.2 * period);
        let report = HybridScreener::new(config).screen(&pop);
        assert!(report.conjunction_count() >= 1, "report: {report:?}");
        assert_eq!(report.filter_stats.unwrap().coplanar, 1);
    }

    #[test]
    fn apsis_separated_candidates_are_filtered_out() {
        // A LEO pair in the same *cell volume* cannot exist with a GEO
        // bird, so instead verify the stats path: LEO + slightly higher
        // LEO in crossing planes whose shells are 100+ km apart: the grid
        // (72 km cells) may pair them, the chain must drop them.
        let pop = vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_130.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ];
        let config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        let report = HybridScreener::new(config).screen(&pop);
        assert_eq!(report.conjunction_count(), 0);
        if let Some(stats) = report.filter_stats {
            if stats.tested > 0 {
                assert_eq!(stats.kept, 0);
            }
        }
    }

    #[test]
    fn hybrid_uses_larger_cells_than_grid() {
        let config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        let report = HybridScreener::new(config).screen(&crossing_pair_population());
        assert!(report.planner.cell_size_km > 70.0);
        assert_eq!(report.variant, "hybrid");
    }

    #[test]
    fn group_pairs_collapses_steps() {
        use kessler_grid::CandidatePair;
        let grouped = group_pairs(vec![
            CandidatePair::new(1, 2, 5),
            CandidatePair::new(1, 2, 3),
            CandidatePair::new(2, 3, 0),
            CandidatePair::new(1, 2, 9),
        ]);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].steps, vec![3, 5, 9]);
        assert_eq!((grouped[1].id_lo, grouped[1].id_hi), (2, 3));
    }

    #[test]
    fn empty_population_is_fine() {
        let config = ScreeningConfig::hybrid_defaults(2.0, 60.0);
        let report = HybridScreener::new(config).screen(&[]);
        assert_eq!(report.conjunction_count(), 0);
    }
}
