//! The hybrid screening variant (§III, §IV-C): grid pre-filter with larger
//! cells and steps, classical orbital filters on the candidates, Brent
//! refinement inside the filter-derived time windows.

use crate::cancel::{check_opt, CancelToken, Cancelled};
use crate::config::{ScreeningConfig, Variant};
use crate::conjunction::{dedup_conjunctions, Conjunction, ScreeningReport};
use crate::planner::{MemoryModel, PlannerReport};
use crate::refine::{grid_refine_interval, refine_pair};
use crate::screener::grid_phase::run_grid_phase_cancellable;
use crate::screener::{run_in_pool, Screener};
use crate::timing::{PhaseTimer, PhaseTimings};
use kessler_filters::{FilterChain, FilterConfig, FilterDecision};
use kessler_math::Interval;
use kessler_orbits::propagator::PropagationConstants;
use kessler_orbits::{BatchPropagator, ContourSolver, KeplerElements};
use rayon::prelude::*;
use std::time::Instant;

/// Filter evaluation and refinement proceed in chunks of this many grouped
/// pairs between cancellation checks — same granularity as the grid path.
const REFINE_CHUNK: usize = 8192;

/// Hybrid conjunction screener.
pub struct HybridScreener {
    config: ScreeningConfig,
    filter_config: FilterConfig,
    solver: ContourSolver,
}

/// A unique candidate pair with every sampling step the grid saw it at.
pub struct GroupedPair {
    pub id_lo: u32,
    pub id_hi: u32,
    pub steps: Vec<u32>,
}

impl HybridScreener {
    /// Fallible constructor: an invalid configuration is an `Err`, never a
    /// panic. Long-running callers (the service daemon) use this so a bad
    /// config becomes an error response instead of a crash.
    pub fn try_new(config: ScreeningConfig) -> Result<HybridScreener, String> {
        config.validate()?;
        Ok(HybridScreener {
            config,
            filter_config: FilterConfig::new(config.threshold_km),
            solver: ContourSolver::default(),
        })
    }

    /// Panicking convenience wrapper around [`HybridScreener::try_new`]
    /// for bench/CLI paths where an invalid config is a programming error.
    pub fn new(config: ScreeningConfig) -> HybridScreener {
        HybridScreener::try_new(config).expect("invalid screening configuration")
    }

    /// Override the filter configuration (padding, coplanarity tolerance).
    pub fn with_filter_config(mut self, fc: FilterConfig) -> HybridScreener {
        self.filter_config = fc;
        self
    }

    pub fn config(&self) -> &ScreeningConfig {
        &self.config
    }

    /// Screen `population` while checking `cancel` at phase boundaries:
    /// between grid sampling steps, between filter-evaluation chunks, and
    /// between refinement chunks of [`REFINE_CHUNK`] grouped pairs. A
    /// screen that completes without the token tripping returns exactly
    /// the report [`Screener::screen`] would have produced.
    pub fn screen_cancellable(
        &self,
        population: &[KeplerElements],
        cancel: &CancelToken,
    ) -> Result<ScreeningReport, Cancelled> {
        let config = self.config;
        let filter_config = self.filter_config;
        let solver = self.solver;
        run_in_pool(config.threads, move || {
            hybrid_screen_job(&config, &filter_config, &solver, population, Some(cancel))
        })
    }
}

/// Collapse (pair, step) entries into unique pairs with their step lists.
pub fn group_pairs(mut entries: Vec<kessler_grid::CandidatePair>) -> Vec<GroupedPair> {
    entries.sort_unstable();
    let mut out: Vec<GroupedPair> = Vec::new();
    for e in entries {
        match out.last_mut() {
            Some(g) if g.id_lo == e.id_lo && g.id_hi == e.id_hi => g.steps.push(e.step),
            _ => out.push(GroupedPair {
                id_lo: e.id_lo,
                id_hi: e.id_hi,
                steps: vec![e.step],
            }),
        }
    }
    out
}

/// Step 4 (§IV-C) for one filtered pair: non-coplanar survivors search the
/// filter windows; coplanar pairs fall back to the grid-style per-step
/// intervals; excluded pairs produce nothing. Shared between the cold
/// hybrid screen and the service's hybrid delta path.
pub fn refine_filtered_pair(
    a: &PropagationConstants,
    b: &PropagationConstants,
    solver: &ContourSolver,
    pair: &GroupedPair,
    decision: &FilterDecision,
    planner: &PlannerReport,
    threshold_km: f64,
) -> Vec<Conjunction> {
    let mut local: Vec<Conjunction> = Vec::new();
    match decision {
        FilterDecision::Windows(windows) => {
            for w in windows {
                // Pad a little so boundary minima are interior;
                // refine_pair clips escapes.
                let padded = w.padded(1.0);
                if let Some(c) =
                    refine_pair(a, b, solver, pair.id_lo, pair.id_hi, padded, threshold_km)
                {
                    local.push(c);
                }
            }
        }
        FilterDecision::Coplanar => {
            for &step in &pair.steps {
                let t = step as f64 * planner.seconds_per_sample;
                let interval = grid_refine_interval(a, b, solver, t, planner.cell_size_km);
                if let Some(c) =
                    refine_pair(a, b, solver, pair.id_lo, pair.id_hi, interval, threshold_km)
                {
                    local.push(c);
                }
            }
        }
        FilterDecision::ExcludedApsis
        | FilterDecision::ExcludedPath
        | FilterDecision::ExcludedTime => {}
    }
    local
}

/// The full hybrid pipeline as a pure, cancellable job function, shared
/// between [`Screener::screen`], [`HybridScreener::screen_cancellable`],
/// and the service execution layer. Must be called from inside the rayon
/// pool the caller wants the parallel phases to run on.
pub fn hybrid_screen_job(
    config: &ScreeningConfig,
    filter_config: &FilterConfig,
    solver: &ContourSolver,
    population: &[KeplerElements],
    cancel: Option<&CancelToken>,
) -> Result<ScreeningReport, Cancelled> {
    let wall = Instant::now();
    let mut timings = PhaseTimings::default();
    let planner = MemoryModel::new(Variant::Hybrid).plan(population.len(), config);

    let propagator = BatchPropagator::new(population);

    // Grid pre-filter at the (possibly reduced) hybrid step size.
    let phase = run_grid_phase_cancellable(&propagator, config, &planner, &mut timings, cancel)?;
    let candidate_entries = phase.entries.len();
    let grouped = group_pairs(phase.entries);
    let candidate_pairs = grouped.len();

    // Step 3 (§III): orbital filters on the unique pairs. Chunked so a
    // tripped token is observed between chunks; chunk outputs extend in
    // order, which keeps the result identical to one par_iter pass.
    let chain = FilterChain::new(*filter_config);
    let span = Interval::new(0.0, config.span_seconds);
    let mut decisions: Vec<FilterDecision> = Vec::with_capacity(grouped.len());
    {
        let _timer = PhaseTimer::start(&mut timings.filters);
        for chunk in grouped.chunks(REFINE_CHUNK) {
            check_opt(cancel)?;
            decisions.par_extend(chunk.par_iter().map(|g| {
                chain.evaluate(
                    &population[g.id_lo as usize],
                    &population[g.id_hi as usize],
                    span,
                )
            }));
        }
    }

    // Step 4: PCA/TCA determination inside the filter-derived windows.
    let mut found: Vec<Conjunction> = Vec::new();
    {
        let _timer = PhaseTimer::start(&mut timings.refinement);
        let columns = propagator.columns();
        for (gchunk, dchunk) in grouped
            .chunks(REFINE_CHUNK)
            .zip(decisions.chunks(REFINE_CHUNK))
        {
            check_opt(cancel)?;
            found.par_extend(gchunk.par_iter().zip(dchunk.par_iter()).flat_map_iter(
                |(g, decision)| {
                    refine_filtered_pair(
                        &columns.gather(g.id_lo as usize),
                        &columns.gather(g.id_hi as usize),
                        solver,
                        g,
                        decision,
                        &planner,
                        config.threshold_km,
                    )
                },
            ));
        }
    }
    let mut found = dedup_conjunctions(found, config.tca_dedup_tolerance_s);
    // Conjunctions must lie inside the screened span.
    found.retain(|c| c.tca >= span.start - 1e-9 && c.tca <= span.end + 1e-9);

    timings.total = wall.elapsed();
    Ok(ScreeningReport {
        variant: Variant::Hybrid.label().to_string(),
        n_satellites: population.len(),
        config: *config,
        conjunctions: found,
        candidate_entries,
        candidate_pairs,
        pair_set_regrows: phase.regrows,
        timings,
        planner,
        filter_stats: Some(chain.stats.snapshot()),
        device_metrics: None,
    })
}

impl Screener for HybridScreener {
    fn screen(&self, population: &[KeplerElements]) -> ScreeningReport {
        let config = self.config;
        let filter_config = self.filter_config;
        let solver = self.solver;
        run_in_pool(config.threads, move || {
            hybrid_screen_job(&config, &filter_config, &solver, population, None)
                .expect("uncancellable screen cannot be cancelled")
        })
    }

    fn label(&self) -> &str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crossing_pair_population() -> Vec<KeplerElements> {
        vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ]
    }

    #[test]
    fn detects_the_head_on_conjunction_via_windows() {
        let config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        let report = HybridScreener::new(config).screen(&crossing_pair_population());
        assert!(report.conjunction_count() >= 1, "report: {report:?}");
        let c = &report.conjunctions[0];
        assert_eq!(c.pair(), (0, 1));
        assert!(c.tca.abs() < 1.0, "tca = {}", c.tca);
        // The filter stats must show the pair went through the chain.
        let stats = report.filter_stats.unwrap();
        assert_eq!(stats.tested, 1);
        assert_eq!(stats.kept, 1);
    }

    #[test]
    fn coplanar_candidates_take_the_sampled_path() {
        // Two coplanar satellites, one trailing the other closely on the
        // same orbit — within the (huge) hybrid cells but never within the
        // threshold.
        let pop = vec![
            KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 0.0, 0.005).unwrap(),
        ];
        let config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        let report = HybridScreener::new(config).screen(&pop);
        let stats = report.filter_stats.unwrap();
        assert_eq!(stats.coplanar, 1, "stats: {stats:?}");
        // Separation ≈ 0.005 rad · 7000 km = 35 km > 2 km: no conjunction.
        assert_eq!(report.conjunction_count(), 0);
    }

    #[test]
    fn coplanar_collision_course_is_detected() {
        // Two satellites on the same eccentric orbit with a tiny phase
        // offset stay ~0.7 m apart. Their chord distance oscillates with
        // the orbital period, so a span covering a full revolution contains
        // a genuine local minimum (PCA) — which the coplanar sampled path
        // must find. (Over a short span the distance is monotone and the
        // strict PCA definition correctly yields nothing.)
        let pop = vec![
            KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 0.0, 1e-7).unwrap(),
        ];
        let period = pop[0].period();
        let config = ScreeningConfig::hybrid_defaults(2.0, 1.2 * period);
        let report = HybridScreener::new(config).screen(&pop);
        assert!(report.conjunction_count() >= 1, "report: {report:?}");
        assert_eq!(report.filter_stats.unwrap().coplanar, 1);
    }

    #[test]
    fn apsis_separated_candidates_are_filtered_out() {
        // A LEO pair in the same *cell volume* cannot exist with a GEO
        // bird, so instead verify the stats path: LEO + slightly higher
        // LEO in crossing planes whose shells are 100+ km apart: the grid
        // (72 km cells) may pair them, the chain must drop them.
        let pop = vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_130.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ];
        let config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        let report = HybridScreener::new(config).screen(&pop);
        assert_eq!(report.conjunction_count(), 0);
        if let Some(stats) = report.filter_stats {
            if stats.tested > 0 {
                assert_eq!(stats.kept, 0);
            }
        }
    }

    #[test]
    fn hybrid_uses_larger_cells_than_grid() {
        let config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        let report = HybridScreener::new(config).screen(&crossing_pair_population());
        assert!(report.planner.cell_size_km > 70.0);
        assert_eq!(report.variant, "hybrid");
    }

    #[test]
    fn group_pairs_collapses_steps() {
        use kessler_grid::CandidatePair;
        let grouped = group_pairs(vec![
            CandidatePair::new(1, 2, 5),
            CandidatePair::new(1, 2, 3),
            CandidatePair::new(2, 3, 0),
            CandidatePair::new(1, 2, 9),
        ]);
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].steps, vec![3, 5, 9]);
        assert_eq!((grouped[1].id_lo, grouped[1].id_hi), (2, 3));
    }

    #[test]
    fn empty_population_is_fine() {
        let config = ScreeningConfig::hybrid_defaults(2.0, 60.0);
        let report = HybridScreener::new(config).screen(&[]);
        assert_eq!(report.conjunction_count(), 0);
    }

    #[test]
    fn try_new_rejects_invalid_config_without_panicking() {
        let mut config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        config.threshold_km = -1.0;
        assert!(HybridScreener::try_new(config).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid screening configuration")]
    fn new_panics_on_invalid_config() {
        let mut config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        config.span_seconds = 0.0;
        HybridScreener::new(config);
    }

    #[test]
    fn cancellable_screen_matches_plain_screen_when_never_cancelled() {
        let pop = crossing_pair_population();
        let config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        let screener = HybridScreener::new(config);
        let plain = screener.screen(&pop);
        let token = CancelToken::new();
        let tokened = screener
            .screen_cancellable(&pop, &token)
            .expect("never tripped");
        assert_eq!(plain.conjunction_count(), tokened.conjunction_count());
        assert_eq!(plain.candidate_entries, tokened.candidate_entries);
        assert_eq!(plain.filter_stats, tokened.filter_stats);
        for (a, b) in plain.conjunctions.iter().zip(&tokened.conjunctions) {
            assert_eq!(a.pair(), b.pair());
            assert_eq!(a.tca.to_bits(), b.tca.to_bits());
            assert_eq!(a.pca_km.to_bits(), b.pca_km.to_bits());
        }
    }

    #[test]
    fn pre_tripped_token_cancels_before_any_work() {
        let pop = crossing_pair_population();
        let config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        let token = CancelToken::new();
        token.cancel();
        let result = HybridScreener::new(config).screen_cancellable(&pop, &token);
        assert_eq!(result.unwrap_err(), Cancelled);
    }
}
