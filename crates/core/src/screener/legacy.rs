//! The legacy baseline: deterministic all-on-all filter-chain screening.
//!
//! "Traditional deterministic filter-based conjunction detection algorithms
//! compare each satellite to every other satellite and pass them through a
//! chain of orbital filters" (abstract). The paper's baseline is a
//! single-threaded numba-accelerated Python implementation \[45\]; ours is
//! the closest native equivalent — the same chain, single-threaded by
//! default (a parallel mode exists for ablations, clearly labelled).

use crate::config::{ScreeningConfig, Variant};
use crate::conjunction::{dedup_conjunctions, Conjunction, ScreeningReport};
use crate::planner::MemoryModel;
use crate::refine::{refine_pair, sampled_minima_search};
use crate::screener::{run_in_pool, Screener};
use crate::timing::PhaseTimings;
use kessler_filters::{FilterChain, FilterConfig, FilterDecision};
use kessler_math::Interval;
use kessler_orbits::{BatchPropagator, ContourSolver, KeplerElements};
use rayon::prelude::*;
use std::time::Instant;

/// All-on-all filter-chain screener.
pub struct LegacyScreener {
    config: ScreeningConfig,
    filter_config: FilterConfig,
    solver: ContourSolver,
    parallel: bool,
}

impl LegacyScreener {
    /// Single-threaded baseline, mirroring the paper's legacy variant.
    pub fn new(config: ScreeningConfig) -> LegacyScreener {
        config.validate().expect("invalid screening configuration");
        LegacyScreener {
            config,
            filter_config: FilterConfig::new(config.threshold_km),
            solver: ContourSolver::default(),
            parallel: false,
        }
    }

    /// Enable pair-level parallelism (ablation; not the paper's baseline).
    pub fn parallel(mut self, yes: bool) -> LegacyScreener {
        self.parallel = yes;
        self
    }

    fn screen_pair(
        &self,
        chain: &FilterChain,
        population: &[KeplerElements],
        columns: &kessler_orbits::SoaColumns<'_>,
        span: Interval,
        i: u32,
        j: u32,
    ) -> Vec<Conjunction> {
        let decision = chain.evaluate(&population[i as usize], &population[j as usize], span);
        let a = columns.gather(i as usize);
        let b = columns.gather(j as usize);
        match decision {
            FilterDecision::Windows(windows) => windows
                .iter()
                .filter_map(|w| {
                    refine_pair(
                        &a,
                        &b,
                        &self.solver,
                        i,
                        j,
                        w.padded(1.0),
                        self.config.threshold_km,
                    )
                })
                .collect(),
            FilterDecision::Coplanar => sampled_minima_search(
                &a,
                &b,
                &self.solver,
                i,
                j,
                span,
                self.config.seconds_per_sample,
                self.config.threshold_km,
            ),
            _ => Vec::new(),
        }
    }
}

impl Screener for LegacyScreener {
    fn screen(&self, population: &[KeplerElements]) -> ScreeningReport {
        let threads = if self.parallel {
            self.config.threads
        } else {
            Some(1)
        };
        run_in_pool(threads, || {
            let wall = Instant::now();
            let mut timings = PhaseTimings::default();
            let planner = MemoryModel::new(Variant::Legacy).plan(population.len(), &self.config);
            let propagator = BatchPropagator::new(population);
            let columns = propagator.columns();
            let chain = FilterChain::new(self.filter_config);
            let span = Interval::new(0.0, self.config.span_seconds);
            let n = population.len() as u32;

            let filter_start = Instant::now();
            let pairs: Vec<(u32, u32)> = (0..n)
                .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
                .collect();

            let mut found: Vec<Conjunction> = if self.parallel {
                pairs
                    .par_iter()
                    .flat_map_iter(|&(i, j)| {
                        self.screen_pair(&chain, population, &columns, span, i, j)
                    })
                    .collect()
            } else {
                pairs
                    .iter()
                    .flat_map(|&(i, j)| self.screen_pair(&chain, population, &columns, span, i, j))
                    .collect()
            };
            // The chain and refinement interleave per pair; attribute the
            // whole sweep to `filters` + leave refinement inside it (the
            // legacy profile in the paper is likewise dominated by the
            // chain sweep).
            timings.filters = filter_start.elapsed();

            found = dedup_conjunctions(found, self.config.tca_dedup_tolerance_s);
            found.retain(|c| c.tca >= span.start - 1e-9 && c.tca <= span.end + 1e-9);

            timings.total = wall.elapsed();
            ScreeningReport {
                variant: Variant::Legacy.label().to_string(),
                n_satellites: population.len(),
                config: self.config,
                conjunctions: found,
                candidate_entries: 0,
                candidate_pairs: pairs.len(),
                pair_set_regrows: 0,
                timings,
                planner,
                filter_stats: Some(chain.stats.snapshot()),
                device_metrics: None,
            }
        })
    }

    fn label(&self) -> &str {
        "legacy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crossing_pair_population() -> Vec<KeplerElements> {
        vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ]
    }

    #[test]
    fn detects_the_head_on_conjunction() {
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let report = LegacyScreener::new(config).screen(&crossing_pair_population());
        assert!(report.conjunction_count() >= 1);
        let c = &report.conjunctions[0];
        assert_eq!(c.pair(), (0, 1));
        assert!(c.tca.abs() < 1.0);
        assert_eq!(report.candidate_pairs, 1);
    }

    #[test]
    fn tests_every_pair_exactly_once() {
        let pop: Vec<KeplerElements> = (0..6)
            .map(|i| {
                KeplerElements::new(
                    7_000.0 + 100.0 * i as f64,
                    0.001,
                    0.5 + 0.1 * i as f64,
                    0.3 * i as f64,
                    0.0,
                    1.0 * i as f64,
                )
                .unwrap()
            })
            .collect();
        let config = ScreeningConfig::grid_defaults(2.0, 60.0);
        let report = LegacyScreener::new(config).screen(&pop);
        let stats = report.filter_stats.unwrap();
        assert_eq!(stats.tested, 15); // C(6,2)
        assert_eq!(report.candidate_pairs, 15);
    }

    #[test]
    fn coplanar_trailing_satellites_are_screened_by_sampling() {
        let pop = vec![
            KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 0.0, 1e-7).unwrap(),
        ];
        // The chord distance of a trailing pair oscillates with the orbital
        // period; a span longer than one revolution contains a local
        // minimum for the sampled coplanar search to find.
        let config = ScreeningConfig::grid_defaults(2.0, 1.2 * pop[0].period());
        let report = LegacyScreener::new(config).screen(&pop);
        assert!(report.conjunction_count() >= 1);
        assert_eq!(report.filter_stats.unwrap().coplanar, 1);
    }

    #[test]
    fn parallel_mode_matches_sequential_results() {
        let pop = crossing_pair_population();
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let seq = LegacyScreener::new(config).screen(&pop);
        let par = LegacyScreener::new(config).parallel(true).screen(&pop);
        assert_eq!(seq.conjunction_count(), par.conjunction_count());
        for (a, b) in seq.conjunctions.iter().zip(&par.conjunctions) {
            assert_eq!(a.pair(), b.pair());
            assert!((a.tca - b.tca).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_and_singleton_populations() {
        let config = ScreeningConfig::grid_defaults(2.0, 60.0);
        assert_eq!(
            LegacyScreener::new(config).screen(&[]).conjunction_count(),
            0
        );
        let one = vec![KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap()];
        assert_eq!(
            LegacyScreener::new(config).screen(&one).conjunction_count(),
            0
        );
    }
}
