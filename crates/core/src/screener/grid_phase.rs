//! The shared grid phase: propagate → insert → extract candidate pairs,
//! repeated over all sampling steps (§III step 2).
//!
//! Both CPU screeners drive this loop; the gpusim screeners re-express the
//! same phases as kernel launches. One grid is reused across steps via
//! bulk reset (the paper allocates `p` grids and fills them in parallel —
//! on the CPU the within-step rayon parallelism already saturates the
//! cores, so the reuse trades no parallelism for a `p×` memory saving; the
//! planner still reports `p` for the memory model).

use crate::cancel::{check_opt, CancelToken, Cancelled};
use crate::config::ScreeningConfig;
use crate::planner::PlannerReport;
use crate::timing::{PhaseTimer, PhaseTimings};
use kessler_grid::pairset::{CandidatePair, PairSet};
use kessler_grid::SpatialGrid;
use kessler_math::Vec3;
use kessler_orbits::BatchPropagator;

/// Output of the grid phase.
pub(crate) struct GridPhaseOutput {
    /// All deduplicated (pair, step) candidate entries.
    pub entries: Vec<CandidatePair>,
    /// How many times the pair set had to be regrown on overflow (0 when
    /// the Extra-P sizing was sufficient, as it should normally be).
    pub regrows: usize,
}

/// Run the grid phase with the (possibly planner-adjusted) configuration.
/// Dispatches to the multi-grid round path when `config.parallel_steps`
/// requests step-level parallelism. Production paths all go through
/// `run_grid_phase_cancellable` now; this uncancellable wrapper remains
/// for the phase tests.
#[cfg(test)]
pub(crate) fn run_grid_phase(
    propagator: &BatchPropagator,
    config: &ScreeningConfig,
    planner: &PlannerReport,
    timings: &mut PhaseTimings,
) -> GridPhaseOutput {
    run_grid_phase_cancellable(propagator, config, planner, timings, None)
        .expect("grid phase without a token cannot be cancelled")
}

/// Like `run_grid_phase`, but checks `cancel` between sampling steps
/// (and between rounds on the multi-grid path). A never-tripped token
/// yields output identical to the plain path.
pub(crate) fn run_grid_phase_cancellable(
    propagator: &BatchPropagator,
    config: &ScreeningConfig,
    planner: &PlannerReport,
    timings: &mut PhaseTimings,
    cancel: Option<&CancelToken>,
) -> Result<GridPhaseOutput, Cancelled> {
    let grids_in_flight = config
        .parallel_steps
        .unwrap_or(1)
        .clamp(1, planner.parallel_factor.max(1));
    if grids_in_flight > 1 {
        return run_grid_phase_rounds(
            propagator,
            config,
            planner,
            timings,
            grids_in_flight,
            cancel,
        );
    }

    let n = propagator.len();
    let cell_size = planner.cell_size_km;
    let grid = SpatialGrid::new(n, cell_size);
    let mut pairs = PairSet::with_capacity(planner.pair_capacity);
    let mut positions: Vec<Vec3> = vec![Vec3::ZERO; n];
    let mut regrows = 0usize;

    let total_steps = planner.total_steps;
    for step in 0..total_steps {
        check_opt(cancel)?;
        let t = step as f64 * planner.seconds_per_sample;

        // INS: parallel propagation + parallel insertion.
        {
            let _timer = PhaseTimer::start(&mut timings.insertion);
            propagator.positions_into(t, &mut positions);
            if step > 0 {
                grid.reset();
            }
            grid.insert_all(&positions)
                .expect("grid sized at 2n slots cannot fill up");
        }

        // CD (pair extraction): parallel scan of occupied cells.
        {
            let _timer = PhaseTimer::start(&mut timings.pair_extraction);
            let mut overflow_before = pairs.overflow_count();
            grid.collect_candidate_pairs(step, config.neighbor_scan, &pairs);
            // The Extra-P estimate is a model, not a guarantee; regrow on
            // overflow instead of silently dropping candidates.
            while pairs.overflow_count() > overflow_before {
                regrows += 1;
                let salvaged = pairs.drain_to_vec();
                pairs = PairSet::with_capacity(pairs.capacity() * 2);
                for p in salvaged {
                    pairs.insert(p);
                }
                overflow_before = pairs.overflow_count();
                grid.collect_candidate_pairs(step, config.neighbor_scan, &pairs);
            }
        }
    }

    Ok(GridPhaseOutput {
        entries: pairs.drain_to_vec(),
        regrows,
    })
}

/// One grid + its positions buffer, the unit the round scheduler hands to
/// a worker.
struct StepSlot {
    grid: SpatialGrid,
    positions: Vec<Vec3>,
}

/// The paper's round mechanism (§V-B): allocate `p_eff` grids once, then
/// process the `o` sampling steps in `⌈o / p_eff⌉` rounds. Within a round,
/// each in-flight step owns one grid; insertion and pair extraction run as
/// two barrier-separated parallel phases so the timings stay attributable.
fn run_grid_phase_rounds(
    propagator: &BatchPropagator,
    config: &ScreeningConfig,
    planner: &PlannerReport,
    timings: &mut PhaseTimings,
    grids_in_flight: usize,
    cancel: Option<&CancelToken>,
) -> Result<GridPhaseOutput, Cancelled> {
    use rayon::prelude::*;

    let n = propagator.len();
    let total_steps = planner.total_steps;
    let p_eff = grids_in_flight.min(total_steps.max(1) as usize);
    let mut slots: Vec<StepSlot> = (0..p_eff)
        .map(|_| StepSlot {
            grid: SpatialGrid::new(n, planner.cell_size_km),
            positions: vec![Vec3::ZERO; n],
        })
        .collect();
    let mut pairs = PairSet::with_capacity(planner.pair_capacity);
    let mut regrows = 0usize;

    let steps: Vec<u32> = (0..total_steps).collect();
    for (round_idx, round) in steps.chunks(p_eff).enumerate() {
        check_opt(cancel)?;
        // Phase A (INS): every in-flight step propagates its satellites
        // and fills its own grid.
        {
            let _timer = PhaseTimer::start(&mut timings.insertion);
            slots[..round.len()]
                .par_iter_mut()
                .zip(round.par_iter())
                .for_each(|(slot, &step)| {
                    let t = step as f64 * planner.seconds_per_sample;
                    if round_idx > 0 {
                        slot.grid.reset();
                    }
                    // Sequential inner propagation: the parallelism of this
                    // path lives at the step level.
                    propagator.positions_into_seq(t, &mut slot.positions);
                    slot.grid
                        .insert_all(&slot.positions)
                        .expect("grid sized at 2n slots cannot fill up");
                });
        }

        // Phase B (CD): extract candidate pairs from every grid of the
        // round into the shared pair set.
        {
            let _timer = PhaseTimer::start(&mut timings.pair_extraction);
            let mut overflow_before = pairs.overflow_count();
            let collect_round = |pairs: &PairSet| {
                slots[..round.len()]
                    .par_iter()
                    .zip(round.par_iter())
                    .for_each(|(slot, &step)| {
                        slot.grid
                            .collect_candidate_pairs(step, config.neighbor_scan, pairs);
                    });
            };
            collect_round(&pairs);
            while pairs.overflow_count() > overflow_before {
                regrows += 1;
                let salvaged = pairs.drain_to_vec();
                pairs = PairSet::with_capacity(pairs.capacity() * 2);
                for p in salvaged {
                    pairs.insert(p);
                }
                overflow_before = pairs.overflow_count();
                collect_round(&pairs);
            }
        }
    }

    Ok(GridPhaseOutput {
        entries: pairs.drain_to_vec(),
        regrows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::planner::MemoryModel;
    use kessler_orbits::KeplerElements;

    fn crossing_population() -> Vec<KeplerElements> {
        vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
            // A far-away GEO bird that never pairs with the LEO ones.
            KeplerElements::new(42_164.0, 0.0, 0.1, 1.0, 0.0, 0.0).unwrap(),
        ]
    }

    #[test]
    fn grid_phase_finds_the_crossing_pair_and_not_the_geo_bird() {
        let pop = crossing_population();
        let config = ScreeningConfig::grid_defaults(2.0, 30.0);
        let planner = MemoryModel::new(Variant::Grid).plan(pop.len(), &config);
        let propagator = BatchPropagator::new(&pop);
        let mut timings = PhaseTimings::default();
        let out = run_grid_phase(&propagator, &config, &planner, &mut timings);
        assert_eq!(out.regrows, 0);
        assert!(
            !out.entries.is_empty(),
            "the co-phased crossing pair must appear"
        );
        for e in &out.entries {
            assert_eq!((e.id_lo, e.id_hi), (0, 1), "only the LEO pair may appear");
        }
        assert!(timings.insertion.as_nanos() > 0);
        assert!(timings.pair_extraction.as_nanos() > 0);
    }

    #[test]
    fn round_scheduler_matches_the_sequential_path() {
        use std::collections::HashSet;
        let pop: Vec<KeplerElements> = (0..40)
            .map(|i| {
                KeplerElements::new(
                    7_000.0 + 0.5 * i as f64,
                    0.001,
                    0.4 + 0.05 * (i % 7) as f64,
                    0.3 * (i % 5) as f64,
                    0.0,
                    0.2 * i as f64,
                )
                .unwrap()
            })
            .collect();
        let mut sequential_cfg = ScreeningConfig::grid_defaults(2.0, 12.0);
        let mut rounds_cfg = sequential_cfg;
        rounds_cfg.parallel_steps = Some(4);
        let planner = MemoryModel::new(Variant::Grid).plan(pop.len(), &sequential_cfg);
        let propagator = BatchPropagator::new(&pop);
        let mut t1 = PhaseTimings::default();
        let mut t2 = PhaseTimings::default();
        let seq = run_grid_phase(&propagator, &sequential_cfg, &planner, &mut t1);
        let par = run_grid_phase(&propagator, &rounds_cfg, &planner, &mut t2);
        let a: HashSet<_> = seq.entries.into_iter().collect();
        let b: HashSet<_> = par.entries.into_iter().collect();
        assert_eq!(a, b, "round scheduler must find the identical entry set");
        let _ = &mut sequential_cfg;
    }

    #[test]
    fn round_scheduler_survives_pair_set_overflow() {
        let pop: Vec<KeplerElements> = (0..32)
            .map(|i| {
                KeplerElements::new(7_000.0 + 0.001 * i as f64, 0.0, 0.9, 0.0, 0.0, 0.0).unwrap()
            })
            .collect();
        let mut config = ScreeningConfig::grid_defaults(2.0, 3.0);
        config.max_pair_capacity = Some(8);
        config.parallel_steps = Some(3);
        let planner = MemoryModel::new(Variant::Grid).plan(pop.len(), &config);
        let propagator = BatchPropagator::new(&pop);
        let mut timings = PhaseTimings::default();
        let out = run_grid_phase(&propagator, &config, &planner, &mut timings);
        assert!(out.regrows > 0);
        let expected = 32 * 31 / 2 * planner.total_steps as usize;
        assert_eq!(out.entries.len(), expected);
    }

    #[test]
    fn overflow_regrow_preserves_all_candidates() {
        // Force a ridiculous undersized pair set by capping capacity.
        let pop: Vec<KeplerElements> = (0..64)
            .map(|i| {
                // All in one tight shell so nearly everything pairs.
                KeplerElements::new(
                    7_000.0 + 0.001 * i as f64,
                    0.0,
                    0.9,
                    0.0,
                    0.0,
                    i as f64 * 1e-6,
                )
                .unwrap()
            })
            .collect();
        let mut config = ScreeningConfig::grid_defaults(2.0, 2.0);
        config.max_pair_capacity = Some(8);
        let planner = MemoryModel::new(Variant::Grid).plan(pop.len(), &config);
        assert_eq!(planner.pair_capacity, 8);
        let propagator = BatchPropagator::new(&pop);
        let mut timings = PhaseTimings::default();
        let out = run_grid_phase(&propagator, &config, &planner, &mut timings);
        assert!(out.regrows > 0, "test must actually trigger regrowth");
        // All 64 satellites co-located → all C(64,2) pairs at both steps.
        let expected = 64 * 63 / 2 * planner.total_steps as usize;
        assert_eq!(out.entries.len(), expected);
    }
}
