//! Grid and hybrid screeners on the GPU execution simulator.
//!
//! These variants express the same three phases as kernels on
//! [`kessler_gpusim::Device`] — the CUDA substitution of DESIGN.md §3:
//!
//! * `propagate_insert` — one thread per satellite: solve Kepler's
//!   equation from the precomputed constants (resident in device memory as
//!   the paper's `a_k` allocation), insert into the lock-free grid.
//! * `conjunction_detect` — one thread per occupied cell: neighbour scan,
//!   CAS insertion into the conjunction pair set.
//! * `coplanarity_filters` (hybrid only) — one thread per unique pair:
//!   the classical filter chain.
//! * `refine_pca_tca` — one thread per candidate occurrence/window: Brent
//!   search.
//!
//! The grid hash set and the conjunction map are charged against the
//! device-memory budget, so a device that is too small fails loudly the
//! way an actual CUDA allocation would.

use crate::config::{ScreeningConfig, Variant};
use crate::conjunction::{dedup_conjunctions, Conjunction, ScreeningReport};
use crate::planner::{MemoryModel, PlannerReport};
use crate::refine::{grid_refine_interval, refine_pair};
use crate::screener::{run_in_pool, Screener};
use crate::timing::{PhaseTimer, PhaseTimings};
use kessler_filters::{FilterChain, FilterConfig, FilterDecision};
use kessler_gpusim::{Device, DeviceBuffer, LaunchConfig};
use kessler_grid::grid::NeighborScan;
use kessler_grid::pairset::{CandidatePair, PairSet};
use kessler_grid::SpatialGrid;
use kessler_math::Interval;
use kessler_orbits::{BatchPropagator, ContourSolver, KeplerElements, SoaColumns};
use std::collections::HashSet;
use std::time::Instant;

/// Shared device-side grid phase over a step range. Returns candidate
/// entries for `steps` (a sub-range when several devices split the span —
/// the paper's "using multiple GPUs would solve this problem to some
/// degree" future work, §VI).
#[allow(clippy::too_many_arguments)]
fn device_grid_phase(
    device: &Device,
    constants: &DeviceBuffer<f64>,
    n: usize,
    planner: &PlannerReport,
    scan: NeighborScan,
    solver: &ContourSolver,
    timings: &mut PhaseTimings,
    steps: std::ops::Range<u32>,
) -> Vec<CandidatePair> {
    // Device allocations for the grid structures (charged to the budget;
    // the actual data structures live host-side, shadowed byte-for-byte).
    let grid = SpatialGrid::new(n, planner.cell_size_km);
    let _grid_shadow = DeviceBuffer::<u8>::alloc(device, grid.memory_bytes())
        .expect("device memory exhausted by the grid hash set");
    let pairs = PairSet::with_capacity(planner.pair_capacity);
    let _pairs_shadow = DeviceBuffer::<u8>::alloc(device, pairs.memory_bytes())
        .expect("device memory exhausted by the conjunction map");

    let first_step = steps.start;
    for step in steps {
        let t = step as f64 * planner.seconds_per_sample;
        {
            let _timer = PhaseTimer::start(&mut timings.insertion);
            if step > first_step {
                grid.reset();
            }
            // The a_k allocation is a flat structure-of-arrays buffer on
            // the device; each thread gathers its satellite's lane.
            let cols = SoaColumns::from_flat(constants.as_slice(), n);
            device.launch("propagate_insert", LaunchConfig::for_elements(n), |tid| {
                let pos = cols.position(tid.global, t, solver);
                grid.insert(tid.global as u32, pos)
                    .expect("grid sized at 2n slots cannot fill up");
            });
        }
        {
            let _timer = PhaseTimer::start(&mut timings.pair_extraction);
            let slots = grid.occupied_slots();
            device.launch(
                "conjunction_detect",
                LaunchConfig::for_elements(slots.len()),
                |tid| {
                    grid.collect_pairs_for_slot(slots[tid.global], step, scan, &pairs);
                },
            );
            assert_eq!(
                pairs.overflow_count(),
                0,
                "conjunction map overflow on device: the Extra-P estimate was too small"
            );
        }
    }
    pairs.drain_to_vec()
}

/// Purely grid-based screener on the GPU simulator.
pub struct GpuGridScreener {
    config: ScreeningConfig,
    device: Device,
    solver: ContourSolver,
}

impl GpuGridScreener {
    /// Screener on an RTX-3090-sized device.
    pub fn new(config: ScreeningConfig) -> GpuGridScreener {
        GpuGridScreener::on_device(config, Device::rtx3090_like())
    }

    pub fn on_device(config: ScreeningConfig, device: Device) -> GpuGridScreener {
        config.validate().expect("invalid screening configuration");
        GpuGridScreener {
            config,
            device,
            solver: ContourSolver::default(),
        }
    }
}

impl Screener for GpuGridScreener {
    fn screen(&self, population: &[KeplerElements]) -> ScreeningReport {
        let config = self.config;
        run_in_pool(config.threads, || {
            let wall = Instant::now();
            let mut timings = PhaseTimings::default();
            let mut planner_config = config;
            planner_config.memory_budget_bytes = self.device.memory_budget();
            let planner = MemoryModel::new(Variant::Grid).plan(population.len(), &planner_config);

            self.device.reset_metrics();
            // H→D: satellite constants (the a_k upload), as one flat
            // structure-of-arrays f64 buffer.
            let host_propagator = BatchPropagator::new(population);
            let constants = DeviceBuffer::from_host(&self.device, host_propagator.raw_columns())
                .expect("device memory exhausted by satellite data");

            let entries = device_grid_phase(
                &self.device,
                &constants,
                population.len(),
                &planner,
                config.neighbor_scan,
                &self.solver,
                &mut timings,
                0..planner.total_steps,
            );
            let candidate_entries = entries.len();
            let candidate_pairs = entries
                .iter()
                .map(|e| (e.id_lo, e.id_hi))
                .collect::<HashSet<_>>()
                .len();

            let mut found: Vec<Conjunction>;
            {
                let _timer = PhaseTimer::start(&mut timings.refinement);
                let cols = SoaColumns::from_flat(constants.as_slice(), population.len());
                let solver = self.solver;
                let threshold = config.threshold_km;
                let cell = planner.cell_size_km;
                let sps = planner.seconds_per_sample;
                found = self
                    .device
                    .launch_map(
                        "refine_pca_tca",
                        LaunchConfig::for_elements(entries.len()),
                        |tid| {
                            let e = &entries[tid.global];
                            let a = cols.gather(e.id_lo as usize);
                            let b = cols.gather(e.id_hi as usize);
                            let t = e.step as f64 * sps;
                            let interval = grid_refine_interval(&a, &b, &solver, t, cell);
                            refine_pair(&a, &b, &solver, e.id_lo, e.id_hi, interval, threshold)
                        },
                    )
                    .into_iter()
                    .flatten()
                    .collect();
            }
            found = dedup_conjunctions(found, config.tca_dedup_tolerance_s);
            found.retain(|c| c.tca >= -1e-9 && c.tca <= config.span_seconds + 1e-9);

            timings.total = wall.elapsed();
            ScreeningReport {
                variant: "grid-gpusim".to_string(),
                n_satellites: population.len(),
                config,
                conjunctions: found,
                candidate_entries,
                candidate_pairs,
                pair_set_regrows: 0,
                timings,
                planner,
                filter_stats: None,
                device_metrics: Some(self.device.metrics()),
            }
        })
    }

    fn label(&self) -> &str {
        "grid-gpusim"
    }
}

/// Hybrid screener on the GPU simulator.
pub struct GpuHybridScreener {
    config: ScreeningConfig,
    filter_config: FilterConfig,
    device: Device,
    solver: ContourSolver,
}

impl GpuHybridScreener {
    pub fn new(config: ScreeningConfig) -> GpuHybridScreener {
        GpuHybridScreener::on_device(config, Device::rtx3090_like())
    }

    pub fn on_device(config: ScreeningConfig, device: Device) -> GpuHybridScreener {
        config.validate().expect("invalid screening configuration");
        GpuHybridScreener {
            config,
            filter_config: FilterConfig::new(config.threshold_km),
            device,
            solver: ContourSolver::default(),
        }
    }
}

impl Screener for GpuHybridScreener {
    fn screen(&self, population: &[KeplerElements]) -> ScreeningReport {
        let config = self.config;
        run_in_pool(config.threads, || {
            let wall = Instant::now();
            let mut timings = PhaseTimings::default();
            let mut planner_config = config;
            planner_config.memory_budget_bytes = self.device.memory_budget();
            let planner = MemoryModel::new(Variant::Hybrid).plan(population.len(), &planner_config);

            self.device.reset_metrics();
            let host_propagator = BatchPropagator::new(population);
            let constants = DeviceBuffer::from_host(&self.device, host_propagator.raw_columns())
                .expect("device memory exhausted by satellite data");

            let mut entries = device_grid_phase(
                &self.device,
                &constants,
                population.len(),
                &planner,
                config.neighbor_scan,
                &self.solver,
                &mut timings,
                0..planner.total_steps,
            );
            let candidate_entries = entries.len();

            // Group into unique pairs with their step lists.
            entries.sort_unstable();
            let mut unique: Vec<(u32, u32, Vec<u32>)> = Vec::new();
            for e in entries {
                match unique.last_mut() {
                    Some((lo, hi, steps)) if *lo == e.id_lo && *hi == e.id_hi => steps.push(e.step),
                    _ => unique.push((e.id_lo, e.id_hi, vec![e.step])),
                }
            }
            let candidate_pairs = unique.len();

            // Filter-chain kernel: one thread per unique pair.
            let chain = FilterChain::new(self.filter_config);
            let span = Interval::new(0.0, config.span_seconds);
            let decisions: Vec<FilterDecision>;
            {
                let _timer = PhaseTimer::start(&mut timings.filters);
                decisions = self.device.launch_map(
                    "coplanarity_filters",
                    LaunchConfig::for_elements(unique.len()),
                    |tid| {
                        let (lo, hi, _) = &unique[tid.global];
                        chain.evaluate(&population[*lo as usize], &population[*hi as usize], span)
                    },
                );
            }

            // Refinement kernel.
            let mut found: Vec<Conjunction>;
            {
                let _timer = PhaseTimer::start(&mut timings.refinement);
                let cols = SoaColumns::from_flat(constants.as_slice(), population.len());
                let solver = self.solver;
                let threshold = config.threshold_km;
                let cell = planner.cell_size_km;
                let sps = planner.seconds_per_sample;
                found = self
                    .device
                    .launch_map(
                        "refine_pca_tca",
                        LaunchConfig::for_elements(unique.len()),
                        |tid| {
                            let (lo, hi, steps) = &unique[tid.global];
                            let a = cols.gather(*lo as usize);
                            let b = cols.gather(*hi as usize);
                            let mut local = Vec::new();
                            match &decisions[tid.global] {
                                FilterDecision::Windows(windows) => {
                                    for w in windows {
                                        if let Some(c) = refine_pair(
                                            &a,
                                            &b,
                                            &solver,
                                            *lo,
                                            *hi,
                                            w.padded(1.0),
                                            threshold,
                                        ) {
                                            local.push(c);
                                        }
                                    }
                                }
                                FilterDecision::Coplanar => {
                                    for &step in steps {
                                        let t = step as f64 * sps;
                                        let interval =
                                            grid_refine_interval(&a, &b, &solver, t, cell);
                                        if let Some(c) = refine_pair(
                                            &a, &b, &solver, *lo, *hi, interval, threshold,
                                        ) {
                                            local.push(c);
                                        }
                                    }
                                }
                                _ => {}
                            }
                            local
                        },
                    )
                    .into_iter()
                    .flatten()
                    .collect();
            }
            found = dedup_conjunctions(found, config.tca_dedup_tolerance_s);
            found.retain(|c| c.tca >= span.start - 1e-9 && c.tca <= span.end + 1e-9);

            timings.total = wall.elapsed();
            ScreeningReport {
                variant: "hybrid-gpusim".to_string(),
                n_satellites: population.len(),
                config,
                conjunctions: found,
                candidate_entries,
                candidate_pairs,
                pair_set_regrows: 0,
                timings,
                planner,
                filter_stats: Some(chain.stats.snapshot()),
                device_metrics: Some(self.device.metrics()),
            }
        })
    }

    fn label(&self) -> &str {
        "hybrid-gpusim"
    }
}

/// Grid screener distributed across several simulated devices — the
/// paper's multi-GPU future work (§VI): "memory usage is the current
/// limiting factor — using multiple GPUs would solve this problem to some
/// degree". The sampling steps are split into contiguous ranges, one per
/// device; every device holds its own copy of the satellite constants
/// (the paper's replication cost), runs the grid phase for its range, and
/// the merged candidates are refined on the first device.
pub struct MultiDeviceGridScreener {
    config: ScreeningConfig,
    devices: Vec<Device>,
    solver: ContourSolver,
}

impl MultiDeviceGridScreener {
    pub fn new(config: ScreeningConfig, devices: Vec<Device>) -> MultiDeviceGridScreener {
        config.validate().expect("invalid screening configuration");
        assert!(!devices.is_empty(), "at least one device is required");
        MultiDeviceGridScreener {
            config,
            devices,
            solver: ContourSolver::default(),
        }
    }

    pub fn device_count(&self) -> usize {
        self.devices.len()
    }
}

impl Screener for MultiDeviceGridScreener {
    fn screen(&self, population: &[KeplerElements]) -> ScreeningReport {
        let config = self.config;
        run_in_pool(config.threads, || {
            let wall = Instant::now();
            let mut timings = PhaseTimings::default();
            // Plan against the smallest device (every device must fit its
            // own grid + map + constants).
            let mut planner_config = config;
            planner_config.memory_budget_bytes = self
                .devices
                .iter()
                .map(Device::memory_budget)
                .min()
                .expect("non-empty device list");
            let planner = MemoryModel::new(Variant::Grid).plan(population.len(), &planner_config);
            for d in &self.devices {
                d.reset_metrics();
            }

            let host_propagator = BatchPropagator::new(population);

            // Contiguous step ranges, one per device.
            let total = planner.total_steps;
            let k = self.devices.len() as u32;
            let per_device = total.div_ceil(k);
            let ranges: Vec<std::ops::Range<u32>> = (0..k)
                .map(|d| (d * per_device).min(total)..((d + 1) * per_device).min(total))
                .collect();

            // Each device runs its share; rayon parallelises across
            // devices exactly as independent GPUs would run concurrently.
            use rayon::prelude::*;
            let per_device_results: Vec<(Vec<CandidatePair>, PhaseTimings)> = self
                .devices
                .par_iter()
                .zip(ranges.par_iter())
                .map(|(device, range)| {
                    let mut local_timings = PhaseTimings::default();
                    let constants = DeviceBuffer::from_host(device, host_propagator.raw_columns())
                        .expect("device memory exhausted by satellite data");
                    let entries = device_grid_phase(
                        device,
                        &constants,
                        population.len(),
                        &planner,
                        config.neighbor_scan,
                        &self.solver,
                        &mut local_timings,
                        range.clone(),
                    );
                    (entries, local_timings)
                })
                .collect();

            let mut entries: Vec<CandidatePair> = Vec::new();
            for (device_entries, local) in per_device_results {
                entries.extend(device_entries);
                timings.insertion += local.insertion;
                timings.pair_extraction += local.pair_extraction;
            }
            let candidate_entries = entries.len();
            let candidate_pairs = entries
                .iter()
                .map(|e| (e.id_lo, e.id_hi))
                .collect::<HashSet<_>>()
                .len();

            // Refinement on device 0 (the merge target).
            let refine_device = &self.devices[0];
            let constants = DeviceBuffer::from_host(refine_device, host_propagator.raw_columns())
                .expect("device memory exhausted by satellite data");
            let mut found: Vec<Conjunction>;
            {
                let _timer = PhaseTimer::start(&mut timings.refinement);
                let cols = SoaColumns::from_flat(constants.as_slice(), population.len());
                let solver = self.solver;
                let threshold = config.threshold_km;
                let cell = planner.cell_size_km;
                let sps = planner.seconds_per_sample;
                found = refine_device
                    .launch_map(
                        "refine_pca_tca",
                        LaunchConfig::for_elements(entries.len()),
                        |tid| {
                            let e = &entries[tid.global];
                            let a = cols.gather(e.id_lo as usize);
                            let b = cols.gather(e.id_hi as usize);
                            let t = e.step as f64 * sps;
                            let interval = grid_refine_interval(&a, &b, &solver, t, cell);
                            refine_pair(&a, &b, &solver, e.id_lo, e.id_hi, interval, threshold)
                        },
                    )
                    .into_iter()
                    .flatten()
                    .collect();
            }
            found = dedup_conjunctions(found, config.tca_dedup_tolerance_s);
            found.retain(|c| c.tca >= -1e-9 && c.tca <= config.span_seconds + 1e-9);

            timings.total = wall.elapsed();
            ScreeningReport {
                variant: format!("grid-gpusim-x{}", self.devices.len()),
                n_satellites: population.len(),
                config,
                conjunctions: found,
                candidate_entries,
                candidate_pairs,
                pair_set_regrows: 0,
                timings,
                planner,
                filter_stats: None,
                device_metrics: Some(self.devices[0].metrics()),
            }
        })
    }

    fn label(&self) -> &str {
        "grid-gpusim-multi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crossing_pair_population() -> Vec<KeplerElements> {
        vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ]
    }

    #[test]
    fn gpu_grid_matches_cpu_grid() {
        use crate::screener::grid::GridScreener;
        let pop = crossing_pair_population();
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let cpu = GridScreener::new(config).screen(&pop);
        let gpu = GpuGridScreener::new(config).screen(&pop);
        assert_eq!(cpu.conjunction_count(), gpu.conjunction_count());
        for (a, b) in cpu.conjunctions.iter().zip(&gpu.conjunctions) {
            assert_eq!(a.pair(), b.pair());
            assert!((a.tca - b.tca).abs() < 1e-6);
            assert!((a.pca_km - b.pca_km).abs() < 1e-9);
        }
    }

    #[test]
    fn gpu_hybrid_matches_cpu_hybrid() {
        use crate::screener::hybrid::HybridScreener;
        let pop = crossing_pair_population();
        let config = ScreeningConfig::hybrid_defaults(2.0, 600.0);
        let cpu = HybridScreener::new(config).screen(&pop);
        let gpu = GpuHybridScreener::new(config).screen(&pop);
        assert_eq!(cpu.conjunction_count(), gpu.conjunction_count());
    }

    #[test]
    fn device_metrics_are_reported() {
        let config = ScreeningConfig::grid_defaults(2.0, 60.0);
        let report = GpuGridScreener::new(config).screen(&crossing_pair_population());
        let m = report.device_metrics.expect("gpusim must report metrics");
        assert!(m.kernel_launches > 0);
        assert!(m.bytes_h2d > 0, "constants upload must be metered");
        assert!(m.kernel_time.contains_key("propagate_insert"));
        assert!(m.kernel_time.contains_key("conjunction_detect"));
        assert!(m.kernel_time.contains_key("refine_pca_tca"));
    }

    #[test]
    fn multi_device_matches_single_device() {
        let pop = crossing_pair_population();
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let single = GpuGridScreener::new(config).screen(&pop);
        let multi = MultiDeviceGridScreener::new(
            config,
            vec![
                Device::rtx3090_like(),
                Device::rtx3090_like(),
                Device::rtx3090_like(),
            ],
        )
        .screen(&pop);
        assert_eq!(single.conjunction_count(), multi.conjunction_count());
        assert_eq!(single.colliding_pairs(), multi.colliding_pairs());
        for (a, b) in single.conjunctions.iter().zip(&multi.conjunctions) {
            assert!((a.tca - b.tca).abs() < 1e-6);
        }
        assert_eq!(multi.variant, "grid-gpusim-x3");
    }

    #[test]
    fn multi_device_boundary_conjunction_is_not_lost() {
        // A conjunction right at the step boundary between two devices'
        // ranges must be found by at least one of them (the refinement
        // interval spans the seam).
        use std::f64::consts::TAU;
        let radius = 7_000.0f64;
        let n_mean = (kessler_orbits::constants::MU_EARTH / radius.powi(3)).sqrt();
        // 600 s span / 2 devices → seam at step 300 (s_ps = 1).
        let t_conj = 300.0;
        let m0 = (-n_mean * t_conj).rem_euclid(TAU);
        let pop = vec![
            KeplerElements::new(radius, 0.0, 0.4, 0.0, 0.0, m0).unwrap(),
            KeplerElements::new(radius, 0.0, 1.2, 0.0, 0.0, m0).unwrap(),
        ];
        let config = ScreeningConfig::grid_defaults(2.0, 600.0);
        let multi = MultiDeviceGridScreener::new(
            config,
            vec![Device::rtx3090_like(), Device::rtx3090_like()],
        )
        .screen(&pop);
        assert!(multi.conjunction_count() >= 1, "seam conjunction lost");
        assert!((multi.conjunctions[0].tca - t_conj).abs() < 1.0);
    }

    #[test]
    fn too_small_device_fails_loudly() {
        let config = ScreeningConfig::grid_defaults(2.0, 60.0);
        let tiny = Device::with_memory(64);
        let screener = GpuGridScreener::on_device(config, tiny);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            screener.screen(&crossing_pair_population())
        }));
        assert!(result.is_err(), "allocation on a 64-byte device must fail");
    }
}
