//! The screening variants.
//!
//! All variants implement [`Screener`] and produce the same
//! [`crate::ScreeningReport`], which is what makes the paper's accuracy
//! comparison (§V-D) a one-liner in the experiment harness.

pub mod gpu;
pub mod grid;
pub mod hybrid;
pub mod legacy;
pub mod sgp4_grid;
pub mod sieve;

mod grid_phase;

use crate::conjunction::ScreeningReport;
use kessler_orbits::KeplerElements;

/// A conjunction-screening algorithm.
pub trait Screener {
    /// Screen `population` over the configured span. Satellite ids are the
    /// indices into the slice.
    fn screen(&self, population: &[KeplerElements]) -> ScreeningReport;

    /// Variant label used in reports and benchmark output.
    fn label(&self) -> &str;
}

/// Run `f` on a dedicated rayon pool of `threads` workers when requested,
/// or on the global pool otherwise. This is how the thread-scaling
/// experiment (§V-C.2) sweeps worker counts.
///
/// Pool construction can fail (thread-spawn limits, exhausted resources).
/// A long-running service must not crash on that, so the failure degrades
/// to the global pool — the screen still runs, just not on the requested
/// worker count.
pub(crate) fn run_in_pool<R: Send>(threads: Option<usize>, f: impl FnOnce() -> R + Send) -> R {
    match threads {
        Some(t) => match rayon::ThreadPoolBuilder::new().num_threads(t).build() {
            Ok(pool) => pool.install(f),
            Err(err) => {
                eprintln!(
                    "kessler: could not build a {t}-thread rayon pool ({err}); \
                     falling back to the global pool"
                );
                f()
            }
        },
        None => f(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_in_pool_respects_thread_count() {
        let inside = run_in_pool(Some(2), rayon::current_num_threads);
        assert_eq!(inside, 2);
    }

    #[test]
    fn run_in_pool_none_uses_global_pool() {
        let global = rayon::current_num_threads();
        let inside = run_in_pool(None, rayon::current_num_threads);
        assert_eq!(inside, global);
    }
}
