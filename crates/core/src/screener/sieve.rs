//! The (smart) sieve screening variant — the *other* parallel screening
//! family the paper's related work surveys (§II, refs \[16\]/\[17\]), included
//! as a comparison point: an apogee/perigee prefilter, then per sampling
//! step a cascade of cheap Cartesian rejection tests over the surviving
//! pairs, then Brent refinement of the candidates.
//!
//! Unlike the grid, the sieve still touches every surviving pair at every
//! step (O(pairs · steps)); its per-test cost is tiny, which is why it was
//! the method of choice on pre-grid hardware — and why the paper's grid
//! wins asymptotically.

use crate::config::{ScreeningConfig, Variant};
use crate::conjunction::{dedup_conjunctions, Conjunction, ScreeningReport};
use crate::planner::MemoryModel;
use crate::refine::refine_pair;
use crate::screener::{run_in_pool, Screener};
use crate::timing::{PhaseTimer, PhaseTimings};
use kessler_filters::apsis::apsis_filter;
use kessler_filters::sieve::{critical_distance, sieve_pair, SieveOutcome, SieveStats};
use kessler_math::Interval;
use kessler_orbits::{BatchPropagator, ContourSolver, KeplerElements};
use rayon::prelude::*;
use std::time::Instant;

/// Worst-case relative speed of two LEO objects (head-on), km/s.
const MAX_REL_SPEED: f64 = 2.0 * kessler_orbits::constants::LEO_SPEED;

/// Smart-sieve screener.
pub struct SieveScreener {
    config: ScreeningConfig,
    solver: ContourSolver,
}

impl SieveScreener {
    /// The sieve tolerates larger steps than the grid because its critical
    /// distance absorbs the worst-case relative motion; `config`'s
    /// `seconds_per_sample` is used as-is (callers typically pass 8 s).
    pub fn new(config: ScreeningConfig) -> SieveScreener {
        config.validate().expect("invalid screening configuration");
        SieveScreener {
            config,
            solver: ContourSolver::default(),
        }
    }

    /// A config preset with the conventional 8 s sieve step.
    pub fn default_config(threshold_km: f64, span_seconds: f64) -> ScreeningConfig {
        ScreeningConfig {
            seconds_per_sample: 8.0,
            ..ScreeningConfig::grid_defaults(threshold_km, span_seconds)
        }
    }
}

impl Screener for SieveScreener {
    fn screen(&self, population: &[KeplerElements]) -> ScreeningReport {
        let config = self.config;
        let solver = self.solver;
        run_in_pool(config.threads, move || {
            let wall = Instant::now();
            let mut timings = PhaseTimings::default();
            let planner = MemoryModel::new(Variant::Sieve).plan(population.len(), &config);
            let propagator = BatchPropagator::new(population);
            let n = population.len() as u32;
            let sps = config.seconds_per_sample;
            let d_crit = critical_distance(config.threshold_km, MAX_REL_SPEED, sps);

            // Apogee/perigee prefilter over all pairs, padded by the
            // critical distance (once, not per step).
            let survivors: Vec<(u32, u32)>;
            {
                let _timer = PhaseTimer::start(&mut timings.filters);
                survivors = (0..n)
                    .into_par_iter()
                    .flat_map_iter(|i| {
                        let a = &population[i as usize];
                        ((i + 1)..n).filter_map(move |j| {
                            apsis_filter(a, &population[j as usize], d_crit).then_some((i, j))
                        })
                    })
                    .collect();
            }

            // Per-step sieve cascade.
            let mut candidates: Vec<(u32, u32, u32)> = Vec::new();
            let mut stats = SieveStats::default();
            let total_steps = planner.total_steps;
            for step in 0..total_steps {
                let t = step as f64 * sps;
                let states;
                {
                    let _timer = PhaseTimer::start(&mut timings.insertion);
                    states = propagator.states(t);
                }
                let _timer = PhaseTimer::start(&mut timings.pair_extraction);
                let (step_candidates, step_stats) = survivors
                    .par_iter()
                    .fold(
                        || (Vec::new(), SieveStats::default()),
                        |(mut acc, mut st), &(i, j)| {
                            let sa = &states[i as usize];
                            let sb = &states[j as usize];
                            let outcome = sieve_pair(
                                sa.position - sb.position,
                                sa.velocity - sb.velocity,
                                d_crit,
                                config.threshold_km,
                                sps,
                            );
                            st.record(outcome);
                            if outcome == SieveOutcome::Candidate {
                                acc.push((i, j, step));
                            }
                            (acc, st)
                        },
                    )
                    .reduce(
                        || (Vec::new(), SieveStats::default()),
                        |(mut a, mut sa), (b, sb)| {
                            a.extend(b);
                            sa.merge(&sb);
                            (a, sa)
                        },
                    );
                candidates.extend(step_candidates);
                stats.merge(&step_stats);
            }
            let candidate_entries = candidates.len();
            let candidate_pairs = {
                let mut pairs: Vec<(u32, u32)> =
                    candidates.iter().map(|&(i, j, _)| (i, j)).collect();
                pairs.sort_unstable();
                pairs.dedup();
                pairs.len()
            };

            // Brent refinement around each candidate step.
            let mut found: Vec<Conjunction>;
            {
                let _timer = PhaseTimer::start(&mut timings.refinement);
                let columns = propagator.columns();
                found = candidates
                    .par_iter()
                    .filter_map(|&(i, j, step)| {
                        let t = step as f64 * sps;
                        refine_pair(
                            &columns.gather(i as usize),
                            &columns.gather(j as usize),
                            &solver,
                            i,
                            j,
                            Interval::new(t - sps, t + sps),
                            config.threshold_km,
                        )
                    })
                    .collect();
            }
            found = dedup_conjunctions(found, config.tca_dedup_tolerance_s);
            found.retain(|c| c.tca >= -1e-9 && c.tca <= config.span_seconds + 1e-9);

            timings.total = wall.elapsed();
            ScreeningReport {
                variant: Variant::Sieve.label().to_string(),
                n_satellites: population.len(),
                config,
                conjunctions: found,
                candidate_entries,
                candidate_pairs,
                pair_set_regrows: 0,
                timings,
                planner,
                filter_stats: None,
                device_metrics: None,
            }
        })
    }

    fn label(&self) -> &str {
        "sieve"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crossing_pair_population() -> Vec<KeplerElements> {
        vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ]
    }

    #[test]
    fn detects_the_head_on_conjunction() {
        let config = SieveScreener::default_config(2.0, 600.0);
        let report = SieveScreener::new(config).screen(&crossing_pair_population());
        assert!(report.conjunction_count() >= 1, "report: {report:?}");
        let c = &report.conjunctions[0];
        assert_eq!(c.pair(), (0, 1));
        assert!(c.tca.abs() < 1.0, "tca = {}", c.tca);
        assert!(c.pca_km < 0.5);
        assert_eq!(report.variant, "sieve");
    }

    #[test]
    fn apsis_prefilter_removes_disjoint_shells() {
        let pop = vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(42_164.0, 0.0, 0.1, 1.0, 0.0, 0.0).unwrap(),
        ];
        let config = SieveScreener::default_config(2.0, 600.0);
        let report = SieveScreener::new(config).screen(&pop);
        assert_eq!(report.conjunction_count(), 0);
        assert_eq!(report.candidate_entries, 0);
    }

    #[test]
    fn matches_grid_screener_on_a_synthetic_population() {
        use crate::screener::grid::GridScreener;
        use kessler_population::{PopulationConfig, PopulationGenerator};
        let pop = PopulationGenerator::new(PopulationConfig {
            seed: 5150,
            ..Default::default()
        })
        .generate(300);
        let span = 900.0;
        let sieve = SieveScreener::new(SieveScreener::default_config(5.0, span)).screen(&pop);
        let grid = GridScreener::new(ScreeningConfig::grid_defaults(5.0, span)).screen(&pop);
        assert_eq!(
            sieve.colliding_pairs(),
            grid.colliding_pairs(),
            "sieve and grid must agree on colliding pairs"
        );
    }

    #[test]
    fn empty_population_is_fine() {
        let config = SieveScreener::default_config(2.0, 60.0);
        let report = SieveScreener::new(config).screen(&[]);
        assert_eq!(report.conjunction_count(), 0);
    }
}
