//! Conjunction assessment: collision probability at a screened conjunction.
//!
//! The paper's screening phase deliberately stops at PCA/TCA: "all
//! encounters with a minimal distance below this threshold are considered
//! for further assessment" by the operator (§III). This module implements
//! that next step — the standard short-encounter collision-probability
//! computation (Foster & Estes 1992; Akella & Alfriend 2000):
//!
//! 1. Build the **encounter plane** at TCA: the plane perpendicular to the
//!    relative velocity (valid for the fast, linear relative motion of a
//!    LEO conjunction).
//! 2. Project the relative position and the combined position covariance
//!    into that plane.
//! 3. Integrate the resulting 2-D Gaussian over the combined hard-body
//!    disk of radius `R` (Foster's 1-D reduction with normal CDFs).

use kessler_math::erf::normal_cdf;
use kessler_math::Vec3;
use serde::{Deserialize, Serialize};

/// A 2×2 symmetric covariance in the encounter plane (km²).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Covariance2 {
    pub xx: f64,
    pub xy: f64,
    pub yy: f64,
}

impl Covariance2 {
    /// Isotropic covariance with standard deviation `sigma` km.
    pub fn isotropic(sigma: f64) -> Covariance2 {
        Covariance2 {
            xx: sigma * sigma,
            xy: 0.0,
            yy: sigma * sigma,
        }
    }

    /// Eigen-decomposition of the symmetric 2×2 matrix:
    /// `(λ₁, λ₂, θ)` with λ₁ ≥ λ₂ and θ the angle of the λ₁ eigenvector.
    pub fn eigen(&self) -> (f64, f64, f64) {
        let tr = self.xx + self.yy;
        let det = self.xx * self.yy - self.xy * self.xy;
        let disc = (tr * tr / 4.0 - det).max(0.0).sqrt();
        let l1 = tr / 2.0 + disc;
        let l2 = tr / 2.0 - disc;
        let theta = if self.xy.abs() < 1e-300 && (self.xx - l1).abs() < 1e-300 {
            0.0
        } else {
            0.5 * (2.0 * self.xy).atan2(self.xx - self.yy)
        };
        (l1, l2, theta)
    }

    /// Positive-definiteness check.
    pub fn is_valid(&self) -> bool {
        self.xx > 0.0 && self.yy > 0.0 && self.xx * self.yy - self.xy * self.xy > 0.0
    }
}

/// The encounter geometry of one conjunction at its TCA.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EncounterGeometry {
    /// Miss vector projected into the encounter plane, km (x, y).
    pub miss: (f64, f64),
    /// Miss distance, km (equals the screening PCA).
    pub miss_distance: f64,
    /// Relative speed at TCA, km/s.
    pub relative_speed: f64,
}

/// Build the encounter plane from the relative state at TCA.
///
/// Axes: `x̂` along the projected miss vector (so `miss = (d, 0)` exactly),
/// `ŷ` completing the right-handed triad with the relative-velocity
/// direction. Returns `None` for degenerate geometry (zero relative
/// velocity — the short-encounter assumption does not apply).
pub fn encounter_geometry(rel_position: Vec3, rel_velocity: Vec3) -> Option<EncounterGeometry> {
    let v_hat = rel_velocity.normalized()?;
    // Component of the miss vector perpendicular to the relative velocity.
    let perp = rel_position - v_hat * rel_position.dot(v_hat);
    let miss_distance = perp.norm();
    Some(EncounterGeometry {
        miss: (miss_distance, 0.0),
        miss_distance,
        relative_speed: rel_velocity.norm(),
    })
}

/// Foster's collision probability: integrate the 2-D Gaussian
/// `N(miss, cov)` over the disk of radius `hard_body_radius` centred at
/// the origin.
///
/// The x-axis is rotated into the covariance principal frame first, then
/// the integral reduces to a 1-D quadrature of normal CDFs, evaluated with
/// Simpson's rule on `steps` panels (default use: 512 — the integrand is
/// smooth, so this is far below 1e-9 absolute error).
pub fn collision_probability(
    miss: (f64, f64),
    cov: Covariance2,
    hard_body_radius: f64,
    steps: usize,
) -> f64 {
    assert!(hard_body_radius >= 0.0, "negative hard-body radius");
    if hard_body_radius == 0.0 {
        return 0.0;
    }
    assert!(cov.is_valid(), "covariance must be positive definite");

    // Principal-axis frame: rotate the miss vector by −θ.
    let (l1, l2, theta) = cov.eigen();
    let (s, c) = theta.sin_cos();
    let mx = c * miss.0 + s * miss.1;
    let my = -s * miss.0 + c * miss.1;
    let (sx, sy) = (l1.sqrt(), l2.sqrt());

    let r = hard_body_radius;
    let n = steps.max(2) + steps % 2; // even panel count for Simpson
                                      // Substitute x = R·sin φ: the half-chord becomes R·cos φ and the
                                      // integrand is smooth at the disk edges (plain Simpson on x stalls at
                                      // O(h^1.5) because of the √(R²−x²) endpoint derivative).
    let h = std::f64::consts::PI / n as f64; // φ ∈ [−π/2, π/2]
    let integrand = |phi: f64| -> f64 {
        let (sp, cp) = phi.sin_cos();
        let x = r * sp;
        let half_chord = r * cp;
        let gx = (-0.5 * ((x - mx) / sx).powi(2)).exp() / (sx * (std::f64::consts::TAU).sqrt());
        let band = normal_cdf((half_chord - my) / sy) - normal_cdf((-half_chord - my) / sy);
        gx * band * r * cp // dx = R·cos φ·dφ
    };
    let lo = -std::f64::consts::FRAC_PI_2;
    let mut sum = integrand(lo) + integrand(-lo);
    for k in 1..n {
        let phi = lo + k as f64 * h;
        sum += integrand(phi) * if k % 2 == 1 { 4.0 } else { 2.0 };
    }
    (sum * h / 3.0).clamp(0.0, 1.0)
}

/// A position covariance expressed in a satellite's RIC (radial /
/// in-track / cross-track) frame, the convention of operational
/// conjunction data messages. Diagonal form: most CDMs quote the three
/// standard deviations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RicCovariance {
    /// Radial standard deviation, km.
    pub sigma_r: f64,
    /// In-track standard deviation, km (usually the largest: along-track
    /// timing error dominates catalog uncertainty).
    pub sigma_i: f64,
    /// Cross-track standard deviation, km.
    pub sigma_c: f64,
}

impl RicCovariance {
    /// Typical radar-catalog uncertainty one day after the last
    /// observation (order-of-magnitude defaults).
    pub fn typical_catalog() -> RicCovariance {
        RicCovariance {
            sigma_r: 0.1,
            sigma_i: 0.5,
            sigma_c: 0.1,
        }
    }

    /// RIC axes for a satellite state: radial (position direction),
    /// cross-track (orbit normal), in-track (completing the triad).
    /// Returns `None` for degenerate states.
    pub fn ric_axes(state: &kessler_orbits::CartesianState) -> Option<(Vec3, Vec3, Vec3)> {
        let r_hat = state.position.normalized()?;
        let c_hat = state.position.cross(state.velocity).normalized()?;
        let i_hat = c_hat.cross(r_hat);
        Some((r_hat, i_hat, c_hat))
    }

    /// Project this (diagonal RIC) covariance into the encounter plane
    /// spanned by the orthonormal axes `x_hat`, `y_hat` (ECI vectors).
    ///
    /// `Σ_plane[a][b] = Σ_k σ_k² (ê_k · â)(ê_k · b̂)` over the three RIC
    /// axes of the owning satellite.
    pub fn project(
        &self,
        state: &kessler_orbits::CartesianState,
        x_hat: Vec3,
        y_hat: Vec3,
    ) -> Option<Covariance2> {
        let (r_hat, i_hat, c_hat) = Self::ric_axes(state)?;
        let axes = [
            (self.sigma_r * self.sigma_r, r_hat),
            (self.sigma_i * self.sigma_i, i_hat),
            (self.sigma_c * self.sigma_c, c_hat),
        ];
        let mut cov = Covariance2 {
            xx: 0.0,
            xy: 0.0,
            yy: 0.0,
        };
        for (var, e) in axes {
            let ex = e.dot(x_hat);
            let ey = e.dot(y_hat);
            cov.xx += var * ex * ex;
            cov.xy += var * ex * ey;
            cov.yy += var * ey * ey;
        }
        Some(cov)
    }
}

/// Combined encounter-plane covariance of two satellites with RIC
/// covariances, plus the encounter geometry, from their states at TCA.
///
/// Returns `(geometry, combined_covariance)`; the encounter plane's x-axis
/// is along the projected miss vector, the y-axis completes the triad with
/// the relative-velocity direction. `None` for degenerate geometry
/// (parallel motion or zero miss vector with zero relative speed).
pub fn encounter_covariance(
    state_a: &kessler_orbits::CartesianState,
    cov_a: &RicCovariance,
    state_b: &kessler_orbits::CartesianState,
    cov_b: &RicCovariance,
) -> Option<(EncounterGeometry, Covariance2)> {
    let rel_p = state_a.position - state_b.position;
    let rel_v = state_a.velocity - state_b.velocity;
    let geom = encounter_geometry(rel_p, rel_v)?;
    let v_hat = rel_v.normalized()?;
    // Plane axes: x along the projected miss vector (or any perpendicular
    // if the miss is head-on-zero), y = v̂ × x̂.
    let perp = rel_p - v_hat * rel_p.dot(v_hat);
    let x_hat = perp.normalized().or_else(|| {
        // Zero miss: any direction perpendicular to v̂ serves.
        let trial = if v_hat.x.abs() < 0.9 {
            Vec3::X
        } else {
            Vec3::Y
        };
        (trial - v_hat * trial.dot(v_hat)).normalized()
    })?;
    let y_hat = v_hat.cross(x_hat);
    let ca = cov_a.project(state_a, x_hat, y_hat)?;
    let cb = cov_b.project(state_b, x_hat, y_hat)?;
    Some((
        geom,
        Covariance2 {
            xx: ca.xx + cb.xx,
            xy: ca.xy + cb.xy,
            yy: ca.yy + cb.yy,
        },
    ))
}

/// Convenience: probability for an encounter with isotropic combined
/// position uncertainty `sigma_km` per axis.
pub fn collision_probability_isotropic(
    miss_distance_km: f64,
    sigma_km: f64,
    hard_body_radius_km: f64,
) -> f64 {
    collision_probability(
        (miss_distance_km, 0.0),
        Covariance2::isotropic(sigma_km),
        hard_body_radius_km,
        512,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal_matrix() {
        let c = Covariance2 {
            xx: 4.0,
            xy: 0.0,
            yy: 1.0,
        };
        let (l1, l2, theta) = c.eigen();
        assert_eq!((l1, l2), (4.0, 1.0));
        assert!(theta.abs() < 1e-12);
    }

    #[test]
    fn eigen_of_rotated_matrix() {
        // 45°-rotated diag(4, 1): xx = yy = 2.5, xy = 1.5.
        let c = Covariance2 {
            xx: 2.5,
            xy: 1.5,
            yy: 2.5,
        };
        let (l1, l2, theta) = c.eigen();
        assert!((l1 - 4.0).abs() < 1e-12);
        assert!((l2 - 1.0).abs() < 1e-12);
        assert!((theta - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn centered_isotropic_matches_rayleigh_closed_form() {
        // For a centred isotropic Gaussian, Pc = 1 − exp(−R²/2σ²).
        for (r, sigma) in [(0.5, 1.0), (1.0, 1.0), (2.0, 1.5), (0.01, 0.1)] {
            let pc = collision_probability((0.0, 0.0), Covariance2::isotropic(sigma), r, 512);
            let analytic = 1.0 - (-r * r / (2.0 * sigma * sigma)).exp();
            assert!(
                (pc - analytic).abs() < 1e-6,
                "R={r}, σ={sigma}: {pc} vs {analytic}"
            );
        }
    }

    #[test]
    fn probability_decreases_with_miss_distance() {
        let cov = Covariance2::isotropic(1.0);
        let mut prev = 1.0;
        for d in [0.0, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let pc = collision_probability((d, 0.0), cov, 0.1, 512);
            assert!(pc <= prev + 1e-12, "Pc must fall with miss distance");
            prev = pc;
        }
    }

    #[test]
    fn tight_covariance_makes_the_outcome_certain() {
        let cov = Covariance2::isotropic(1e-4);
        // Miss well inside the hard body: certain collision.
        assert!(collision_probability((0.01, 0.0), cov, 0.05, 512) > 0.999_99);
        // Miss well outside: certain miss.
        assert!(collision_probability((1.0, 0.0), cov, 0.05, 512) < 1e-12);
    }

    #[test]
    fn huge_hard_body_captures_everything() {
        let cov = Covariance2::isotropic(1.0);
        assert!(collision_probability((0.5, 0.3), cov, 50.0, 512) > 0.999_999);
    }

    #[test]
    fn zero_radius_is_zero_probability() {
        assert_eq!(
            collision_probability((0.0, 0.0), Covariance2::isotropic(1.0), 0.0, 512),
            0.0
        );
    }

    #[test]
    fn anisotropic_covariance_prefers_the_long_axis() {
        // Strongly elongated along x: a miss along x is "inside" the error
        // ellipse and more probable than the same miss along y.
        let cov = Covariance2 {
            xx: 9.0,
            xy: 0.0,
            yy: 0.01,
        };
        let along_x = collision_probability((2.0, 0.0), cov, 0.1, 1024);
        let along_y = collision_probability((0.0, 2.0), cov, 0.1, 1024);
        assert!(
            along_x > 100.0 * along_y,
            "along_x = {along_x}, along_y = {along_y}"
        );
    }

    #[test]
    fn rotation_invariance_of_isotropic_case() {
        let cov = Covariance2::isotropic(0.7);
        let a = collision_probability((1.0, 0.0), cov, 0.2, 512);
        let b = collision_probability((0.0, 1.0), cov, 0.2, 512);
        let c = collision_probability((0.6, 0.8), cov, 0.2, 512);
        // Differences stem from the erf kernel's ~1e-7 absolute error and
        // the orientation of the quadrature axis.
        assert!((a - b).abs() < 1e-6);
        assert!((a - c).abs() < 1e-6);
    }

    #[test]
    fn encounter_geometry_projects_out_the_velocity_component() {
        // Relative position with a component along the velocity: only the
        // perpendicular part is the miss.
        let rel_v = Vec3::new(10.0, 0.0, 0.0);
        let rel_p = Vec3::new(123.0, 3.0, 4.0);
        let g = encounter_geometry(rel_p, rel_v).unwrap();
        assert!((g.miss_distance - 5.0).abs() < 1e-12);
        assert!((g.relative_speed - 10.0).abs() < 1e-12);
        assert!(encounter_geometry(rel_p, Vec3::ZERO).is_none());
    }

    #[test]
    fn ric_axes_are_orthonormal() {
        use kessler_orbits::CartesianState;
        let state = CartesianState::new(Vec3::new(7_000.0, 0.0, 0.0), Vec3::new(0.1, 7.5, 0.2));
        let (r, i, c) = RicCovariance::ric_axes(&state).unwrap();
        for v in [r, i, c] {
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
        assert!(r.dot(i).abs() < 1e-12);
        assert!(r.dot(c).abs() < 1e-12);
        assert!(i.dot(c).abs() < 1e-12);
        // Radial axis points along the position.
        assert!(r.dot(Vec3::X) > 0.999);
    }

    #[test]
    fn projection_preserves_total_variance_for_isotropic_ric() {
        use kessler_orbits::CartesianState;
        // Isotropic RIC: the projection must be isotropic in any plane.
        let state = CartesianState::new(Vec3::new(7_000.0, 0.0, 0.0), Vec3::new(0.0, 7.5, 0.0));
        let ric = RicCovariance {
            sigma_r: 0.3,
            sigma_i: 0.3,
            sigma_c: 0.3,
        };
        let cov = ric.project(&state, Vec3::Y, Vec3::Z).unwrap();
        assert!((cov.xx - 0.09).abs() < 1e-12);
        assert!((cov.yy - 0.09).abs() < 1e-12);
        assert!(cov.xy.abs() < 1e-12);
    }

    #[test]
    fn in_track_dominant_covariance_projects_anisotropically() {
        use kessler_orbits::CartesianState;
        // In-track = +Y for this state; the plane axis aligned with Y must
        // carry the large variance.
        let state = CartesianState::new(Vec3::new(7_000.0, 0.0, 0.0), Vec3::new(0.0, 7.5, 0.0));
        let ric = RicCovariance {
            sigma_r: 0.05,
            sigma_i: 1.0,
            sigma_c: 0.05,
        };
        let cov = ric.project(&state, Vec3::Y, Vec3::Z).unwrap();
        assert!(
            cov.xx > 0.99 && cov.xx < 1.01,
            "in-track variance on x: {}",
            cov.xx
        );
        assert!(cov.yy < 0.01, "cross-track variance on y: {}", cov.yy);
    }

    #[test]
    fn encounter_covariance_end_to_end() {
        use kessler_orbits::CartesianState;
        // Head-on encounter with a 1 km radial miss.
        let a = CartesianState::new(Vec3::new(7_000.0, 0.0, 0.0), Vec3::new(0.0, 7.5, 0.0));
        let b = CartesianState::new(Vec3::new(7_001.0, 0.0, 0.0), Vec3::new(0.0, -7.5, 0.0));
        let ric = RicCovariance::typical_catalog();
        let (geom, cov) = encounter_covariance(&a, &ric, &b, &ric).unwrap();
        assert!((geom.miss_distance - 1.0).abs() < 1e-9);
        assert!((geom.relative_speed - 15.0).abs() < 1e-9);
        assert!(cov.is_valid());
        // The miss is radial; both satellites' radial σ (0.1) add in
        // quadrature on the x axis: xx = 2·0.01 = 0.02.
        assert!((cov.xx - 0.02).abs() < 1e-9, "xx = {}", cov.xx);
        let pc = collision_probability(geom.miss, cov, 0.02, 512);
        assert!((0.0..1.0).contains(&pc));
    }

    #[test]
    fn zero_miss_head_on_still_produces_a_plane() {
        use kessler_orbits::CartesianState;
        let a = CartesianState::new(Vec3::new(7_000.0, 0.0, 0.0), Vec3::new(0.0, 7.5, 0.0));
        let b = CartesianState::new(Vec3::new(7_000.0, 0.0, 0.0), Vec3::new(0.0, -7.5, 0.0));
        let ric = RicCovariance::typical_catalog();
        let (geom, cov) = encounter_covariance(&a, &ric, &b, &ric).unwrap();
        assert_eq!(geom.miss_distance, 0.0);
        assert!(cov.is_valid());
        // Dead-centre: Pc is substantial for a 20 m object with 100 m σ.
        let pc = collision_probability(geom.miss, cov, 0.02, 512);
        assert!(pc > 1e-3, "pc = {pc}");
    }

    #[test]
    #[should_panic(expected = "positive definite")]
    fn invalid_covariance_is_rejected() {
        collision_probability(
            (0.0, 0.0),
            Covariance2 {
                xx: 1.0,
                xy: 2.0,
                yy: 1.0,
            },
            0.1,
            64,
        );
    }
}
