//! Phase instrumentation (§V-C.1 "Relative Time Consumption").
//!
//! The paper reports per-variant breakdowns over four phases:
//! propagation + grid insertion (INS), candidate-pair extraction +
//! PCA/TCA computation (CD — §IV-A3 covers both), and, for the hybrid
//! variant, the coplanarity/filter stage. We time the phases separately
//! and expose both the raw numbers and the paper's aggregation.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Wall time per screening phase.
///
/// Serialises each phase as fractional **milliseconds** (`duration_ms`),
/// so the JSON reports written by `core::io` and the service `STATUS`
/// responses are directly consumable by dashboards instead of exposing
/// `Duration`'s internal `{secs, nanos}` pair.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Parallel propagation and insertion into the grid (INS).
    #[serde(with = "duration_ms")]
    pub insertion: Duration,
    /// Candidate-pair extraction from the grid.
    #[serde(with = "duration_ms")]
    pub pair_extraction: Duration,
    /// Orbital filters incl. the coplanarity determination (hybrid/legacy).
    #[serde(with = "duration_ms")]
    pub filters: Duration,
    /// PCA/TCA refinement (Brent searches).
    #[serde(with = "duration_ms")]
    pub refinement: Duration,
    /// End-to-end wall time of the screening call.
    #[serde(with = "duration_ms")]
    pub total: Duration,
}

/// Serde adapter mapping `Duration` to fractional milliseconds on the wire.
pub mod duration_ms {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_secs_f64() * 1e3).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let ms = f64::deserialize(d)?;
        if !ms.is_finite() || ms < 0.0 {
            return Err(serde::de::Error::custom(
                "duration milliseconds must be finite and non-negative",
            ));
        }
        // Huge-but-finite values (e.g. 1e300) pass the check above but
        // overflow Duration; try_from keeps corrupt input an Err, not a panic.
        Duration::try_from_secs_f64(ms / 1e3)
            .map_err(|e| serde::de::Error::custom(format!("duration out of range: {e}")))
    }
}

impl PhaseTimings {
    /// The paper's "CD" bucket: pair extraction + PCA/TCA computation.
    pub fn cd(&self) -> Duration {
        self.pair_extraction + self.refinement
    }

    /// Fraction of total time spent in a duration (0 when total is 0).
    pub fn fraction(&self, phase: Duration) -> f64 {
        let total = self.total.as_secs_f64();
        if total > 0.0 {
            phase.as_secs_f64() / total
        } else {
            0.0
        }
    }

    /// `(INS, CD, filters)` fractions, the §V-C.1 triple.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        (
            self.fraction(self.insertion),
            self.fraction(self.cd()),
            self.fraction(self.filters),
        )
    }
}

/// Scope timer: measures into a `Duration` accumulator on drop.
pub struct PhaseTimer<'a> {
    target: &'a mut Duration,
    start: Instant,
}

impl<'a> PhaseTimer<'a> {
    pub fn start(target: &'a mut Duration) -> PhaseTimer<'a> {
        PhaseTimer {
            target,
            start: Instant::now(),
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        *self.target += self.start.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cd_aggregates_pairs_and_refinement() {
        let t = PhaseTimings {
            insertion: Duration::from_millis(10),
            pair_extraction: Duration::from_millis(20),
            filters: Duration::from_millis(5),
            refinement: Duration::from_millis(65),
            total: Duration::from_millis(100),
        };
        assert_eq!(t.cd(), Duration::from_millis(85));
        let (ins, cd, fil) = t.breakdown();
        assert!((ins - 0.10).abs() < 1e-9);
        assert!((cd - 0.85).abs() < 1e-9);
        assert!((fil - 0.05).abs() < 1e-9);
    }

    #[test]
    fn zero_total_yields_zero_fractions() {
        let t = PhaseTimings::default();
        assert_eq!(t.breakdown(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn timings_serialize_as_milliseconds() {
        let t = PhaseTimings {
            insertion: Duration::from_micros(1_500),
            pair_extraction: Duration::from_millis(20),
            filters: Duration::ZERO,
            refinement: Duration::from_millis(65),
            total: Duration::from_millis(100),
        };
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("\"insertion\":1.5"), "json: {json}");
        assert!(json.contains("\"total\":100.0"), "json: {json}");
        let back: PhaseTimings = serde_json::from_str(&json).unwrap();
        assert_eq!(back.insertion, t.insertion);
        assert_eq!(back.total, t.total);
    }

    #[test]
    fn negative_or_non_finite_millis_are_rejected() {
        assert!(serde_json::from_str::<PhaseTimings>(
            r#"{"insertion":-1.0,"pair_extraction":0.0,"filters":0.0,"refinement":0.0,"total":0.0}"#
        )
        .is_err());
    }

    #[test]
    fn huge_but_finite_millis_error_instead_of_panicking() {
        // 1e300 ms is finite and non-negative but overflows Duration;
        // from_secs_f64 would panic here — the adapter must return Err.
        let err = serde_json::from_str::<PhaseTimings>(
            r#"{"insertion":0.0,"pair_extraction":0.0,"filters":0.0,"refinement":0.0,"total":1e300}"#,
        );
        assert!(err.is_err(), "1e300 ms must be a deserialization error");
        assert!(serde_json::from_str::<PhaseTimings>(
            r#"{"insertion":1.7976931348623157e308,"pair_extraction":0.0,"filters":0.0,"refinement":0.0,"total":0.0}"#
        )
        .is_err());
    }

    #[test]
    fn phase_timer_accumulates() {
        let mut acc = Duration::ZERO;
        {
            let _t = PhaseTimer::start(&mut acc);
            std::thread::sleep(Duration::from_millis(5));
        }
        {
            let _t = PhaseTimer::start(&mut acc);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(acc >= Duration::from_millis(9), "acc = {acc:?}");
    }
}
