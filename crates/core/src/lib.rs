//! Conjunction screening with lock-free spatial grids — the core library of
//! the `kessler` workspace, reproducing the system of
//! *"Satellite Collision Detection using Spatial Data Structures"*
//! (Hellwig, Czappa, Michel, Bertrand, Wolf — IPDPS 2023).
//!
//! # Quick start
//!
//! ```
//! use kessler_core::{GridScreener, ScreeningConfig, Screener};
//! use kessler_orbits::KeplerElements;
//!
//! // Two satellites on crossing circular orbits that meet near t = 0.
//! let population = vec![
//!     KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
//!     KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
//! ];
//! let config = ScreeningConfig::grid_defaults(2.0, 600.0);
//! let report = GridScreener::new(config).screen(&population);
//! assert!(report.conjunction_count() >= 1);
//! ```
//!
//! # Variants
//!
//! * [`GridScreener`] — the paper's purely grid-based variant: small cells
//!   (Eq. 1), small time steps; every grid candidate goes straight to Brent
//!   PCA/TCA refinement.
//! * [`HybridScreener`] — the grid as a pre-filter with larger steps and
//!   cells, followed by the classical orbital filter chain whose time
//!   windows drive the refinement.
//! * [`LegacyScreener`] — the all-on-all filter-chain baseline
//!   (quadratic pair enumeration).
//! * [`SieveScreener`] — the (smart) sieve comparison variant from the
//!   paper's related work (§II): per-step Cartesian rejection cascades.
//! * [`GpuGridScreener`] / [`GpuHybridScreener`] — the same algorithms
//!   expressed as kernels on the [`kessler_gpusim`] execution simulator
//!   (CUDA substitution; see DESIGN.md §3).

pub mod assessment;
pub mod cancel;
pub mod config;
pub mod conjunction;
pub mod cube;
pub mod io;
pub mod metrics;
pub mod planner;
pub mod refine;
pub mod screener;
pub mod timing;

pub use cancel::{CancelToken, Cancelled};
pub use config::{ScreeningConfig, Variant};
pub use conjunction::{Conjunction, ScreeningReport};
pub use kessler_filters::chain::FilterStatsSnapshot;
pub use kessler_filters::{FilterChain, FilterConfig, FilterDecision};
pub use metrics::{Histogram, HistogramSummary, PhaseSeries, PhaseSummaries};
pub use planner::{MemoryModel, PlannerReport};
pub use screener::gpu::{GpuGridScreener, GpuHybridScreener, MultiDeviceGridScreener};
pub use screener::grid::GridScreener;
pub use screener::hybrid::{
    group_pairs, hybrid_screen_job, refine_filtered_pair, GroupedPair, HybridScreener,
};
pub use screener::legacy::LegacyScreener;
pub use screener::sgp4_grid::Sgp4GridScreener;
pub use screener::sieve::SieveScreener;
pub use screener::Screener;
pub use timing::PhaseTimings;
