//! Cooperative cancellation for long-running screening jobs.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between the party
//! that owns a job and the code executing it. Screeners check the token at
//! phase boundaries (between grid steps, between refinement chunks) and
//! bail out with [`Cancelled`] — they never abort mid-phase, so a screen
//! that runs to completion with a never-tripped token is bit-identical to
//! one run without a token at all.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag. Cloning hands out another handle to the same
/// underlying flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trip the flag. Idempotent; all clones observe it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Phase-boundary check: `Err(Cancelled)` once the flag is tripped.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

/// The job observed its tripped token at a phase boundary and stopped
/// without producing a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("job cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Convenience for `Option<&CancelToken>` call sites: `None` never cancels.
pub fn check_opt(token: Option<&CancelToken>) -> Result<(), Cancelled> {
    match token {
        Some(t) => t.check(),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_trips_for_all_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(clone.check().is_ok());
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.check(), Err(Cancelled));
        // Idempotent.
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancelled_formats_and_is_an_error() {
        let err: Box<dyn std::error::Error> = Box::new(Cancelled);
        assert_eq!(err.to_string(), "job cancelled");
    }
}
