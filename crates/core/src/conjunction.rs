//! Conjunction records and screening reports.
//!
//! The paper's accuracy discussion (§V-D) distinguishes *conjunctions*
//! (every local distance minimum below the threshold — a pair can have
//! several across the span) from *colliding pairs* (distinct satellite
//! pairs with at least one conjunction). Both views live here, together
//! with the TCA-based deduplication that collapses the same physical
//! minimum found from two overlapping step intervals.

use crate::config::ScreeningConfig;
use crate::planner::PlannerReport;
use crate::timing::PhaseTimings;
use kessler_filters::chain::FilterStatsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One detected conjunction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Conjunction {
    /// Smaller satellite id.
    pub id_lo: u32,
    /// Larger satellite id.
    pub id_hi: u32,
    /// Time of closest approach, seconds past the element epoch.
    pub tca: f64,
    /// Point of closest approach: the minimum distance, km.
    pub pca_km: f64,
}

impl Conjunction {
    pub fn pair(&self) -> (u32, u32) {
        (self.id_lo, self.id_hi)
    }
}

/// Sort + dedup a conjunction list: entries of the same pair whose TCAs lie
/// within `tca_tol` seconds are one physical conjunction (the one with the
/// smaller PCA is kept).
pub fn dedup_conjunctions(mut found: Vec<Conjunction>, tca_tol: f64) -> Vec<Conjunction> {
    found.sort_by(|a, b| {
        (a.id_lo, a.id_hi)
            .cmp(&(b.id_lo, b.id_hi))
            .then(a.tca.total_cmp(&b.tca))
    });
    let mut out: Vec<Conjunction> = Vec::with_capacity(found.len());
    for c in found {
        match out.last_mut() {
            Some(last) if last.pair() == c.pair() && (c.tca - last.tca).abs() <= tca_tol => {
                // Same physical minimum; keep the deeper refinement.
                if c.pca_km < last.pca_km {
                    *last = c;
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// Complete result of one screening run.
#[derive(Debug, Clone, Serialize)]
pub struct ScreeningReport {
    /// Variant label ("grid", "hybrid", "legacy", "grid-gpusim", …).
    pub variant: String,
    /// Population size.
    pub n_satellites: usize,
    /// Configuration the run used (after planner adjustment).
    pub config: ScreeningConfig,
    /// Deduplicated conjunctions, sorted by pair then TCA.
    pub conjunctions: Vec<Conjunction>,
    /// Total candidate (pair, step) entries produced by the grid phase
    /// (0 for the legacy variant, which has no grid).
    pub candidate_entries: usize,
    /// Distinct candidate pairs examined.
    pub candidate_pairs: usize,
    /// Times the grid phase regrew an overflowing pair set (0 when the
    /// Extra-P sizing sufficed).
    pub pair_set_regrows: usize,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Planner output for this run.
    pub planner: PlannerReport,
    /// Filter-chain statistics (hybrid/legacy only).
    pub filter_stats: Option<FilterStatsSnapshot>,
    /// GPU-simulator metrics (gpusim variants only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub device_metrics: Option<kessler_gpusim::DeviceMetrics>,
}

impl ScreeningReport {
    /// Number of conjunctions (the paper's per-variant headline count).
    pub fn conjunction_count(&self) -> usize {
        self.conjunctions.len()
    }

    /// The distinct colliding pairs (§V-D's second metric).
    pub fn colliding_pairs(&self) -> HashSet<(u32, u32)> {
        self.conjunctions.iter().map(Conjunction::pair).collect()
    }

    /// Pairs found by `self` but not by `other` (accuracy comparison).
    pub fn pairs_missing_from(&self, other: &ScreeningReport) -> Vec<(u32, u32)> {
        let mine = self.colliding_pairs();
        let theirs = other.colliding_pairs();
        let mut missing: Vec<_> = mine.difference(&theirs).copied().collect();
        missing.sort_unstable();
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(lo: u32, hi: u32, tca: f64, pca: f64) -> Conjunction {
        Conjunction {
            id_lo: lo,
            id_hi: hi,
            tca,
            pca_km: pca,
        }
    }

    #[test]
    fn dedup_merges_close_tcas_keeping_best_pca() {
        let deduped = dedup_conjunctions(
            vec![
                c(1, 2, 100.00, 1.5),
                c(1, 2, 100.02, 1.2), // same minimum, deeper
                c(1, 2, 500.0, 0.9),  // second conjunction of the pair
            ],
            0.05,
        );
        assert_eq!(deduped.len(), 2);
        assert!((deduped[0].pca_km - 1.2).abs() < 1e-12);
        assert!((deduped[1].tca - 500.0).abs() < 1e-12);
    }

    #[test]
    fn dedup_keeps_different_pairs_apart() {
        let deduped = dedup_conjunctions(
            vec![
                c(1, 2, 100.0, 1.0),
                c(1, 3, 100.0, 1.0),
                c(2, 3, 100.0, 1.0),
            ],
            0.05,
        );
        assert_eq!(deduped.len(), 3);
    }

    #[test]
    fn dedup_chain_of_close_tcas_collapses() {
        // 100.00, 100.04, 100.08 — each within tol of its neighbour.
        let deduped = dedup_conjunctions(
            vec![
                c(1, 2, 100.0, 1.0),
                c(1, 2, 100.04, 0.8),
                c(1, 2, 100.08, 0.9),
            ],
            0.05,
        );
        assert_eq!(deduped.len(), 1);
        assert!((deduped[0].pca_km - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dedup_of_empty_input() {
        assert!(dedup_conjunctions(vec![], 0.05).is_empty());
    }

    #[test]
    fn dedup_output_is_sorted() {
        let deduped = dedup_conjunctions(
            vec![c(3, 4, 5.0, 1.0), c(1, 2, 9.0, 1.0), c(1, 2, 2.0, 1.0)],
            0.05,
        );
        assert_eq!(
            deduped.iter().map(Conjunction::pair).collect::<Vec<_>>(),
            vec![(1, 2), (1, 2), (3, 4)]
        );
        assert!(deduped[0].tca < deduped[1].tca);
    }
}
