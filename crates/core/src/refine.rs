//! PCA/TCA refinement (§IV-C).
//!
//! Each candidate pair carries a time interval that should bracket a local
//! distance minimum. We minimise the squared inter-satellite distance with
//! Brent's method; a minimum that lands on the interval boundary is probed
//! slightly beyond it — if the distance keeps decreasing outside, the true
//! minimum belongs to the neighbouring interval and the occurrence is
//! discarded ("the minimum will be found when considering the neighboring
//! interval").

use crate::conjunction::Conjunction;
use kessler_math::brent::brent_minimize;
use kessler_math::Interval;
use kessler_orbits::propagator::PropagationConstants;
use kessler_orbits::ContourSolver;

/// Relative tolerance of the Brent search on the time axis.
const BRENT_TOL: f64 = 1e-10;
/// Brent iteration budget per pair.
const BRENT_ITER: u32 = 80;
/// A minimum within this fraction of the interval length of a boundary is
/// treated as "at the boundary".
const EDGE_FRACTION: f64 = 1e-3;
/// How far beyond the boundary the escape probe looks, as a fraction of
/// the interval length.
const PROBE_FRACTION: f64 = 0.05;

/// Squared distance between two propagated satellites at time `t`.
#[inline]
pub fn distance_sq_at(
    a: &PropagationConstants,
    b: &PropagationConstants,
    solver: &ContourSolver,
    t: f64,
) -> f64 {
    a.position(t, solver).dist_sq(b.position(t, solver))
}

/// Refine one candidate occurrence on `interval`.
///
/// Returns the conjunction if a local minimum interior to the interval
/// undercuts `threshold_km`; `None` if the pair never comes below the
/// threshold in this interval or the minimum escapes through a boundary.
pub fn refine_pair(
    a: &PropagationConstants,
    b: &PropagationConstants,
    solver: &ContourSolver,
    id_lo: u32,
    id_hi: u32,
    interval: Interval,
    threshold_km: f64,
) -> Option<Conjunction> {
    refine_pair_with(
        |t| distance_sq_at(a, b, solver, t),
        id_lo,
        id_hi,
        interval,
        threshold_km,
    )
}

/// Propagator-agnostic refinement core: minimise an arbitrary squared
/// inter-satellite distance function over `interval` with the same edge-
/// escape semantics as [`refine_pair`]. Used by the SGP4-backed screener,
/// whose dynamics are not expressible as [`PropagationConstants`].
pub fn refine_pair_with<D: Fn(f64) -> f64>(
    d2: D,
    id_lo: u32,
    id_hi: u32,
    interval: Interval,
    threshold_km: f64,
) -> Option<Conjunction> {
    if interval.is_empty() {
        return None;
    }
    let result = brent_minimize(&d2, interval.start, interval.end, BRENT_TOL, BRENT_ITER);

    let length = interval.length().max(1e-9);
    let edge_eps = EDGE_FRACTION * length;
    let probe = PROBE_FRACTION * length;

    // Boundary-escape check (§IV-C): if the minimum sits at an edge and the
    // function still decreases beyond it, the local minimum lies outside.
    if result.xmin - interval.start <= edge_eps {
        if d2(interval.start - probe) < result.fmin {
            return None;
        }
    } else if interval.end - result.xmin <= edge_eps && d2(interval.end + probe) < result.fmin {
        return None;
    }

    let pca_km = result.fmin.max(0.0).sqrt();
    if pca_km <= threshold_km {
        Some(Conjunction {
            id_lo,
            id_hi,
            tca: result.xmin,
            pca_km,
        })
    } else {
        None
    }
}

/// The grid variant's refinement interval (§IV-C): centred on the sample
/// time, with radius "the time it takes the slower of both satellites to
/// cross two cells", computed from the velocity at the sample.
pub fn grid_refine_interval(
    a: &PropagationConstants,
    b: &PropagationConstants,
    solver: &ContourSolver,
    sample_time: f64,
    cell_size_km: f64,
) -> Interval {
    let va = a.propagate(sample_time, solver).velocity.norm();
    let vb = b.propagate(sample_time, solver).velocity.norm();
    let v_slow = va.min(vb).max(1e-6);
    let radius = 2.0 * cell_size_km / v_slow;
    Interval::new(sample_time - radius, sample_time + radius)
}

/// Sampled local-minima search, used where no grid steps and no filter
/// windows exist (the legacy variant's coplanar pairs): sample the distance
/// at `coarse_step` over `span`, bracket every local minimum, refine each
/// with Brent.
#[allow(clippy::too_many_arguments)] // mirrors refine_pair's signature plus the sampling step
pub fn sampled_minima_search(
    a: &PropagationConstants,
    b: &PropagationConstants,
    solver: &ContourSolver,
    id_lo: u32,
    id_hi: u32,
    span: Interval,
    coarse_step: f64,
    threshold_km: f64,
) -> Vec<Conjunction> {
    let mut out = Vec::new();
    if span.is_empty() || coarse_step <= 0.0 {
        return out;
    }
    let steps = ((span.length() / coarse_step).ceil() as usize).max(2);
    let d2: Vec<f64> = (0..=steps)
        .map(|k| distance_sq_at(a, b, solver, span.start + k as f64 * coarse_step))
        .collect();
    let t_of = |k: usize| span.start + k as f64 * coarse_step;
    for k in 0..=steps {
        let is_min = match k {
            0 => d2[0] <= d2[1],
            _ if k == steps => d2[steps] <= d2[steps - 1],
            _ => d2[k] <= d2[k - 1] && d2[k] <= d2[k + 1],
        };
        if !is_min {
            continue;
        }
        let lo = if k == 0 { span.start } else { t_of(k - 1) };
        let hi = if k == steps { span.end } else { t_of(k + 1) };
        let bracket = Interval::new(lo.max(span.start), hi.min(span.end));
        if let Some(c) = refine_pair(a, b, solver, id_lo, id_hi, bracket, threshold_km) {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kessler_orbits::KeplerElements;

    fn pc(a: f64, e: f64, i: f64, raan: f64, argp: f64, m0: f64) -> PropagationConstants {
        PropagationConstants::from_elements(&KeplerElements::new(a, e, i, raan, argp, m0).unwrap())
    }

    /// Two circular orbits of equal radius crossing at RAAN 0 with both
    /// satellites passing the node at t = 0: conjunction at t ≈ 0, PCA ≈ 0.
    fn crossing_pair() -> (PropagationConstants, PropagationConstants) {
        (
            pc(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0),
            pc(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0),
        )
    }

    #[test]
    fn finds_head_on_conjunction() {
        let (a, b) = crossing_pair();
        let solver = ContourSolver::default();
        let c = refine_pair(&a, &b, &solver, 0, 1, Interval::new(-30.0, 30.0), 2.0)
            .expect("conjunction must be found");
        assert!(c.tca.abs() < 0.5, "tca = {}", c.tca);
        assert!(c.pca_km < 0.5, "pca = {}", c.pca_km);
        assert_eq!((c.id_lo, c.id_hi), (0, 1));
    }

    #[test]
    fn rejects_pair_above_threshold() {
        // Equal-radius rings but phased so the satellites pass the node
        // 200 s apart: minimum distance is large.
        let a = pc(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0);
        let b = pc(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.3); // ~279 s of anomaly offset
        let solver = ContourSolver::default();
        assert!(refine_pair(&a, &b, &solver, 0, 1, Interval::new(-30.0, 30.0), 2.0).is_none());
    }

    #[test]
    fn minimum_escaping_through_the_edge_is_discarded() {
        // The true minimum is at t = 0; an interval ending just before it
        // must discard the occurrence (the neighbouring interval owns it).
        let (a, b) = crossing_pair();
        let solver = ContourSolver::default();
        let result = refine_pair(&a, &b, &solver, 0, 1, Interval::new(-50.0, -5.0), 5_000.0);
        assert!(
            result.is_none(),
            "edge minimum must be discarded, got {result:?}"
        );
    }

    #[test]
    fn neighboring_interval_finds_the_escaped_minimum() {
        let (a, b) = crossing_pair();
        let solver = ContourSolver::default();
        // The interval that actually contains t = 0.
        let c = refine_pair(&a, &b, &solver, 0, 1, Interval::new(-5.0, 40.0), 2.0);
        assert!(c.is_some());
    }

    #[test]
    fn empty_interval_is_rejected() {
        let (a, b) = crossing_pair();
        let solver = ContourSolver::default();
        assert!(refine_pair(&a, &b, &solver, 0, 1, Interval::new(10.0, -10.0), 2.0).is_none());
    }

    #[test]
    fn grid_interval_radius_matches_two_cell_crossings() {
        let (a, b) = crossing_pair();
        let solver = ContourSolver::default();
        let iv = grid_refine_interval(&a, &b, &solver, 100.0, 9.8);
        // Circular LEO speed ≈ 7.546 km/s → radius ≈ 2·9.8/7.546 ≈ 2.6 s.
        let radius = iv.length() / 2.0;
        assert!(
            (radius - 2.0 * 9.8 / 7.546).abs() < 0.05,
            "radius = {radius}"
        );
        assert!((iv.center() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_search_finds_every_periodic_encounter() {
        // Crossing equal-period orbits meet twice per period (once per
        // node); over two periods the sampled search must find ≥ 2
        // sub-threshold conjunctions at the co-phased node.
        let (a, b) = crossing_pair();
        let solver = ContourSolver::default();
        let el = KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap();
        let span = Interval::new(0.0, 2.2 * el.period());
        let found = sampled_minima_search(&a, &b, &solver, 0, 1, span, 1.0, 2.0);
        assert!(found.len() >= 2, "found {} conjunctions", found.len());
        for c in &found {
            assert!(c.pca_km <= 2.0);
            assert!(span.contains(c.tca));
        }
    }

    #[test]
    fn sampled_search_handles_degenerate_inputs() {
        let (a, b) = crossing_pair();
        let solver = ContourSolver::default();
        assert!(
            sampled_minima_search(&a, &b, &solver, 0, 1, Interval::new(5.0, 1.0), 1.0, 2.0)
                .is_empty()
        );
        assert!(
            sampled_minima_search(&a, &b, &solver, 0, 1, Interval::new(0.0, 10.0), 0.0, 2.0)
                .is_empty()
        );
    }

    #[test]
    fn refinement_matches_dense_sampling() {
        // Ground truth by brute force: sample the distance at 1 ms over the
        // bracketing interval and compare.
        let a = pc(7_000.0, 0.001, 0.4, 0.1, 0.3, 0.01);
        let b = pc(7_002.0, 0.0015, 1.1, 0.1, 0.2, 6.27);
        let solver = ContourSolver::default();
        let iv = Interval::new(-60.0, 60.0);
        if let Some(c) = refine_pair(&a, &b, &solver, 0, 1, iv, 10_000.0) {
            let mut best = (0.0f64, f64::INFINITY);
            let mut t = iv.start;
            while t <= iv.end {
                let d = distance_sq_at(&a, &b, &solver, t).sqrt();
                if d < best.1 {
                    best = (t, d);
                }
                t += 0.001;
            }
            assert!(
                (c.tca - best.0).abs() < 0.01,
                "tca {} vs sampled {}",
                c.tca,
                best.0
            );
            assert!(
                (c.pca_km - best.1).abs() < 0.01,
                "pca {} vs sampled {}",
                c.pca_km,
                best.1
            );
        }
    }
}
