//! Persistence for screening inputs and outputs.
//!
//! Operational screening pipelines exchange conjunction lists and element
//! sets as flat files; this module provides the plumbing: conjunction CSV
//! (the shape of an operator's screening summary), JSON round-trips for
//! populations and full reports, and element-set CSV for spreadsheet
//! interchange.

use crate::conjunction::{Conjunction, ScreeningReport};
use crate::metrics::{PhaseSeries, PhaseSummaries};
use crate::timing::PhaseTimings;
use kessler_orbits::KeplerElements;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// I/O + parse errors.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Json(serde_json::Error),
    Csv { line: usize, message: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> IoError {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> IoError {
        IoError::Json(e)
    }
}

/// Write conjunctions as CSV (`id_lo,id_hi,tca_s,pca_km`).
pub fn write_conjunctions_csv<W: Write>(
    out: W,
    conjunctions: &[Conjunction],
) -> Result<(), IoError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "id_lo,id_hi,tca_s,pca_km")?;
    for c in conjunctions {
        writeln!(w, "{},{},{:.6},{:.6}", c.id_lo, c.id_hi, c.tca, c.pca_km)?;
    }
    w.flush()?;
    Ok(())
}

/// Read conjunctions from the CSV written by [`write_conjunctions_csv`].
pub fn read_conjunctions_csv<R: Read>(input: R) -> Result<Vec<Conjunction>, IoError> {
    let reader = BufReader::new(input);
    let mut out = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if idx == 0 || line.trim().is_empty() {
            continue; // header / blank
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(IoError::Csv {
                line: idx + 1,
                message: format!("expected 4 fields, got {}", fields.len()),
            });
        }
        let parse = |s: &str, what: &str| -> Result<f64, IoError> {
            s.trim().parse().map_err(|_| IoError::Csv {
                line: idx + 1,
                message: format!("bad {what}: `{s}`"),
            })
        };
        out.push(Conjunction {
            id_lo: parse(fields[0], "id_lo")? as u32,
            id_hi: parse(fields[1], "id_hi")? as u32,
            tca: parse(fields[2], "tca")?,
            pca_km: parse(fields[3], "pca")?,
        });
    }
    Ok(out)
}

/// Save a population (element set) as JSON.
pub fn save_population<P: AsRef<Path>>(
    path: P,
    population: &[KeplerElements],
) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), population)?;
    Ok(())
}

/// Load a population saved by [`save_population`].
pub fn load_population<P: AsRef<Path>>(path: P) -> Result<Vec<KeplerElements>, IoError> {
    let file = std::fs::File::open(path)?;
    Ok(serde_json::from_reader(BufReader::new(file))?)
}

/// Save a full screening report as pretty JSON.
pub fn save_report<P: AsRef<Path>>(path: P, report: &ScreeningReport) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(BufWriter::new(file), report)?;
    Ok(())
}

/// Aggregate repeated screens into per-phase quantile digests
/// (milliseconds) — the distribution companion to a single
/// [`PhaseTimings`] breakdown.
pub fn phase_summaries(timings: &[PhaseTimings]) -> PhaseSummaries {
    let mut series = PhaseSeries::new();
    for t in timings {
        series.record(t);
    }
    series.summaries()
}

/// Save per-phase quantile digests as pretty JSON, so `results_*.json`
/// trajectories carry p50/p90/p99 across repeats, not just means.
pub fn save_phase_summaries<P: AsRef<Path>>(
    path: P,
    summaries: &PhaseSummaries,
) -> Result<(), IoError> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer_pretty(BufWriter::new(file), summaries)?;
    Ok(())
}

/// Write an element set as CSV
/// (`a_km,e,i_rad,raan_rad,argp_rad,mean_anomaly_rad`).
pub fn write_population_csv<W: Write>(
    out: W,
    population: &[KeplerElements],
) -> Result<(), IoError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "a_km,e,i_rad,raan_rad,argp_rad,mean_anomaly_rad")?;
    for el in population {
        writeln!(
            w,
            "{:.6},{:.9},{:.9},{:.9},{:.9},{:.9}",
            el.semi_major_axis,
            el.eccentricity,
            el.inclination,
            el.raan,
            el.arg_perigee,
            el.mean_anomaly
        )?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScreeningConfig;
    use crate::screener::grid::GridScreener;
    use crate::Screener;

    fn sample_conjunctions() -> Vec<Conjunction> {
        vec![
            Conjunction {
                id_lo: 1,
                id_hi: 2,
                tca: 123.456,
                pca_km: 0.789,
            },
            Conjunction {
                id_lo: 3,
                id_hi: 40,
                tca: 9_876.5,
                pca_km: 1.999,
            },
        ]
    }

    #[test]
    fn conjunction_csv_round_trip() {
        let mut buf = Vec::new();
        write_conjunctions_csv(&mut buf, &sample_conjunctions()).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("id_lo,id_hi,tca_s,pca_km\n"));
        let back = read_conjunctions_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].pair(), (1, 2));
        assert!((back[0].tca - 123.456).abs() < 1e-6);
        assert!((back[1].pca_km - 1.999).abs() < 1e-6);
    }

    #[test]
    fn malformed_csv_is_reported_with_line_numbers() {
        let bad = "id_lo,id_hi,tca_s,pca_km\n1,2,3\n";
        let err = read_conjunctions_csv(bad.as_bytes()).unwrap_err();
        match err {
            IoError::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
        let bad2 = "id_lo,id_hi,tca_s,pca_km\n1,2,xyz,4\n";
        assert!(matches!(
            read_conjunctions_csv(bad2.as_bytes()).unwrap_err(),
            IoError::Csv { line: 2, .. }
        ));
    }

    #[test]
    fn population_json_round_trip() {
        let pop = vec![
            KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 2.0, 3.0).unwrap(),
            KeplerElements::new(42_164.0, 0.0002, 0.01, 4.0, 5.0, 6.0).unwrap(),
        ];
        let path = std::env::temp_dir().join("kessler_test_pop.json");
        save_population(&path, &pop).unwrap();
        let back = load_population(&path).unwrap();
        assert_eq!(back, pop);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn population_csv_has_one_row_per_satellite() {
        let pop = vec![KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 2.0, 3.0).unwrap()];
        let mut buf = Vec::new();
        write_population_csv(&mut buf, &pop).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().nth(1).unwrap().starts_with("7000.000000,"));
    }

    #[test]
    fn phase_summaries_aggregate_and_round_trip() {
        use std::time::Duration;
        let runs: Vec<PhaseTimings> = (1..=5u64)
            .map(|i| PhaseTimings {
                insertion: Duration::from_millis(i),
                pair_extraction: Duration::from_millis(2 * i),
                filters: Duration::ZERO,
                refinement: Duration::from_millis(i),
                total: Duration::from_millis(4 * i),
            })
            .collect();
        let s = phase_summaries(&runs);
        assert_eq!(s.screens, 5);
        assert!(s.total.p50 >= s.total.min && s.total.p99 <= s.total.max + 1e-9);
        let path = std::env::temp_dir().join("kessler_test_phases.json");
        save_phase_summaries(&path, &s).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back: PhaseSummaries = serde_json::from_str(&text).unwrap();
        assert_eq!(back.screens, 5);
        assert!((back.total.p99 - s.total.p99).abs() < 1e-9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn full_report_saves_as_json() {
        let pop = vec![
            KeplerElements::new(7_000.0, 0.0, 0.4, 0.0, 0.0, 0.0).unwrap(),
            KeplerElements::new(7_000.0, 0.0, 1.2, 0.0, 0.0, 0.0).unwrap(),
        ];
        let report = GridScreener::new(ScreeningConfig::grid_defaults(2.0, 120.0)).screen(&pop);
        let path = std::env::temp_dir().join("kessler_test_report.json");
        save_report(&path, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"variant\": \"grid\""));
        std::fs::remove_file(&path).ok();
    }
}
