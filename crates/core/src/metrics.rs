//! Rolling metrics primitives: a dependency-free log-bucketed histogram
//! and per-phase series built on it.
//!
//! The §V-C.1 evaluation reports per-phase time *breakdowns*; a long-
//! running service additionally needs per-phase time *distributions* —
//! screening cost varies with catalog churn, and a mean hides the tail.
//! [`Histogram`] is an HdrHistogram-style sketch: power-of-two ranges
//! split into linear sub-buckets, so relative error is bounded (≤ 1/32
//! per bucket) while memory stays a few KiB regardless of count.
//! [`PhaseSeries`] aggregates repeated [`PhaseTimings`] into one
//! histogram per screening phase.

use crate::timing::PhaseTimings;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Linear sub-buckets per power-of-two range (as a bit count): 2⁵ = 32
/// sub-buckets, bounding the relative quantile error at ~3 %.
const SUB_BUCKET_BITS: u32 = 5;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// Bucket index of a value. Region 0 covers `[0, 32)` with width-1
/// buckets; region `k ≥ 1` covers `[32·2^(k−1), 32·2^k)` with 32 linear
/// sub-buckets of width `2^(k−1)`.
fn index_of(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let region = (msb - SUB_BUCKET_BITS + 1) as u64;
    let sub = (value >> (region - 1)) - SUB_BUCKETS;
    (region * SUB_BUCKETS + sub) as usize
}

/// Largest value mapping to bucket `index` (inclusive).
fn upper_bound_of(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let region = index >> SUB_BUCKET_BITS;
    let sub = index & (SUB_BUCKETS - 1);
    (SUB_BUCKETS + sub + 1) * (1u64 << (region - 1)) - 1
}

/// A log-bucketed histogram of non-negative integer samples.
///
/// Values are unit-agnostic `u64`s — the service records phase times in
/// microseconds, snapshot sizes in bytes, queue depths in jobs. Exact
/// `count`, `sum`, `min` and `max` are tracked alongside the buckets, so
/// quantiles are always clamped to the observed range.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket counts, grown on demand (index space is ≤ 1920 for u64).
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let index = index_of(value);
        if index >= self.counts.len() {
            self.counts.resize(index + 1, 0);
        }
        self.counts[index] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value as u128;
    }

    /// Record a duration in **microseconds** (saturating).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Fold another histogram in: equivalent to having recorded the union
    /// of both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`), approximated as the
    /// upper bound of the bucket holding the target rank and clamped to
    /// the exact observed `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return upper_bound_of(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Serializable digest, with every value axis multiplied by `scale`
    /// (e.g. `1e-3` to report microsecond samples as milliseconds).
    pub fn summary(&self, scale: f64) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min() as f64 * scale,
            max: self.max() as f64 * scale,
            mean: self.mean() * scale,
            p50: self.p50() as f64 * scale,
            p90: self.p90() as f64 * scale,
            p99: self.p99() as f64 * scale,
        }
    }
}

/// Point-in-time digest of a [`Histogram`]: count plus scaled quantiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

/// One [`Histogram`] per screening phase, fed from [`PhaseTimings`].
/// Samples are microseconds; summaries report milliseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseSeries {
    pub insertion: Histogram,
    pub pair_extraction: Histogram,
    pub filters: Histogram,
    pub refinement: Histogram,
    pub total: Histogram,
}

impl PhaseSeries {
    pub fn new() -> PhaseSeries {
        PhaseSeries::default()
    }

    /// Record one screen's phase breakdown.
    pub fn record(&mut self, timings: &PhaseTimings) {
        self.insertion.record_duration(timings.insertion);
        self.pair_extraction
            .record_duration(timings.pair_extraction);
        self.filters.record_duration(timings.filters);
        self.refinement.record_duration(timings.refinement);
        self.total.record_duration(timings.total);
    }

    /// Screens recorded so far.
    pub fn count(&self) -> u64 {
        self.total.count()
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    pub fn merge(&mut self, other: &PhaseSeries) {
        self.insertion.merge(&other.insertion);
        self.pair_extraction.merge(&other.pair_extraction);
        self.filters.merge(&other.filters);
        self.refinement.merge(&other.refinement);
        self.total.merge(&other.total);
    }

    /// Per-phase digests in **milliseconds**.
    pub fn summaries(&self) -> PhaseSummaries {
        const US_TO_MS: f64 = 1e-3;
        PhaseSummaries {
            screens: self.count(),
            insertion: self.insertion.summary(US_TO_MS),
            pair_extraction: self.pair_extraction.summary(US_TO_MS),
            filters: self.filters.summary(US_TO_MS),
            refinement: self.refinement.summary(US_TO_MS),
            total: self.total.summary(US_TO_MS),
        }
    }
}

/// Per-phase quantile digests (milliseconds) across repeated screens —
/// what `results_*.json` trajectories and the service METRICS verb carry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummaries {
    /// Screens aggregated into these digests.
    pub screens: u64,
    pub insertion: HistogramSummary,
    pub pair_extraction: HistogramSummary,
    pub filters: HistogramSummary,
    pub refinement: HistogramSummary,
    pub total: HistogramSummary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_indexing_is_monotonic_and_bounded() {
        let mut last = 0usize;
        for v in 0..4096u64 {
            let i = index_of(v);
            assert!(i >= last, "index regressed at {v}");
            assert!(v <= upper_bound_of(i), "{v} above its bucket bound");
            last = i;
        }
        // Every bucket's upper bound maps back into the same bucket.
        for i in 0..index_of(u64::MAX) {
            assert_eq!(index_of(upper_bound_of(i)), i, "bucket {i}");
        }
        assert!(index_of(u64::MAX) < 1920);
    }

    #[test]
    fn exact_below_32_and_within_3pct_above() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.p50(), 1);

        let mut h = Histogram::new();
        h.record(1_000_000);
        let q = h.p50();
        assert!(
            (q as f64 - 1e6).abs() / 1e6 <= 1.0 / 32.0,
            "p50 {q} more than 3% off"
        );
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.summary(1.0), HistogramSummary::default());
    }

    #[test]
    fn durations_record_as_microseconds() {
        let mut h = Histogram::new();
        h.record_duration(Duration::from_millis(3));
        assert_eq!(h.min(), 3_000);
        let s = h.summary(1e-3);
        assert_eq!(s.count, 1);
        assert!((s.min - 3.0).abs() < 1e-9, "ms scaling: {s:?}");
    }

    #[test]
    fn phase_series_counts_and_reports_ms() {
        let mut series = PhaseSeries::new();
        for ms in [10u64, 20, 30] {
            series.record(&PhaseTimings {
                insertion: Duration::from_millis(ms),
                pair_extraction: Duration::from_millis(2 * ms),
                filters: Duration::ZERO,
                refinement: Duration::from_millis(ms / 2),
                total: Duration::from_millis(4 * ms),
            });
        }
        assert_eq!(series.count(), 3);
        let s = series.summaries();
        assert_eq!(s.screens, 3);
        assert!(s.insertion.min >= 10.0 && s.insertion.max <= 31.0);
        assert!(s.total.p99 >= s.total.p50);
        assert_eq!(s.filters.max, 0.0);
    }

    fn recorded(values: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    proptest! {
        /// Count conservation: the histogram never loses or invents
        /// samples, and bucket totals match the exact counter.
        #[test]
        fn prop_count_conservation(values in proptest::collection::vec(any::<u64>(), 0..200)) {
            let h = recorded(&values);
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.counts.iter().sum::<u64>(), values.len() as u64);
        }

        /// Quantiles are bounded by the observed extremes for every q.
        #[test]
        fn prop_quantile_bounded_by_min_max(
            values in proptest::collection::vec(any::<u64>(), 1..200),
            q in 0.0f64..=1.0,
        ) {
            let h = recorded(&values);
            let lo = *values.iter().min().unwrap();
            let hi = *values.iter().max().unwrap();
            let quant = h.quantile(q);
            prop_assert!(quant >= lo && quant <= hi, "{lo} ≤ {quant} ≤ {hi} violated");
            prop_assert_eq!(h.quantile(0.0), lo);
            prop_assert_eq!(h.quantile(1.0), hi);
        }

        /// Merging is exactly equivalent to recording the union stream.
        #[test]
        fn prop_merge_equals_union(
            a in proptest::collection::vec(any::<u64>(), 0..100),
            b in proptest::collection::vec(any::<u64>(), 0..100),
        ) {
            let mut merged = recorded(&a);
            merged.merge(&recorded(&b));
            let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
            // Bucket-level equality implies identical quantiles for all q.
            let mut expected = recorded(&union);
            // Normalise trailing-zero bucket tails before comparing.
            while merged.counts.last() == Some(&0) { merged.counts.pop(); }
            while expected.counts.last() == Some(&0) { expected.counts.pop(); }
            prop_assert_eq!(merged, expected);
        }
    }
}
