//! Screening configuration.

use kessler_grid::grid::NeighborScan;
use kessler_orbits::constants::LEO_SPEED;
use serde::{Deserialize, Serialize};

/// Which screening variant a configuration targets (affects defaults and
/// report labelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    Grid,
    Hybrid,
    Legacy,
    Sieve,
}

impl Variant {
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Grid => "grid",
            Variant::Hybrid => "hybrid",
            Variant::Legacy => "legacy",
            Variant::Sieve => "sieve",
        }
    }
}

impl std::str::FromStr for Variant {
    type Err = String;

    /// Parse the lowercase labels CLI flags use.
    fn from_str(s: &str) -> Result<Variant, String> {
        match s {
            "grid" => Ok(Variant::Grid),
            "hybrid" => Ok(Variant::Hybrid),
            "legacy" => Ok(Variant::Legacy),
            "sieve" => Ok(Variant::Sieve),
            other => Err(format!(
                "unknown variant `{other}` (expected grid, hybrid, legacy, or sieve)"
            )),
        }
    }
}

/// Full configuration of a screening run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScreeningConfig {
    /// Screening threshold `d` in km. The paper's evaluation uses 2 km.
    pub threshold_km: f64,
    /// Seconds between samples `s_ps`. Grid default 1 s (small cells,
    /// dense sampling); hybrid default 9 s (the value the paper's
    /// auto-adjustment starts from).
    pub seconds_per_sample: f64,
    /// Screening span `t` in seconds past the common element epoch.
    pub span_seconds: f64,
    /// Neighbourhood scan strategy (half = each cell pair once).
    #[serde(skip)]
    pub neighbor_scan: NeighborScan,
    /// Worker threads; `None` uses the global rayon pool.
    pub threads: Option<usize>,
    /// Memory budget for the planner, bytes. CPU runs use host memory;
    /// gpusim runs use the device budget.
    pub memory_budget_bytes: usize,
    /// Two refined TCAs of the same pair closer than this are the same
    /// physical conjunction (dedup across overlapping step intervals), s.
    pub tca_dedup_tolerance_s: f64,
    /// Optional cap on the pair-set capacity (bytes guard for huge runs);
    /// `None` sizes purely from the Extra-P model.
    pub max_pair_capacity: Option<usize>,
    /// Sampling steps processed concurrently, each with its own grid — the
    /// paper's parallelisation factor `p` (§V-B). `None`/`Some(1)` reuses a
    /// single grid (the memory-lean default: within-step rayon parallelism
    /// already saturates the cores); `Some(k)` allocates `min(k, p)` grids
    /// and fills them in parallel, trading memory for step-level
    /// parallelism exactly as the paper's GPU path does.
    pub parallel_steps: Option<usize>,
}

impl ScreeningConfig {
    /// Paper defaults for the grid-based variant.
    pub fn grid_defaults(threshold_km: f64, span_seconds: f64) -> ScreeningConfig {
        ScreeningConfig {
            threshold_km,
            seconds_per_sample: 1.0,
            span_seconds,
            neighbor_scan: NeighborScan::Half,
            threads: None,
            memory_budget_bytes: 8 * 1024 * 1024 * 1024,
            tca_dedup_tolerance_s: 0.05,
            max_pair_capacity: None,
            parallel_steps: None,
        }
    }

    /// Paper defaults for the hybrid variant (`s_ps = 9 s` before the
    /// planner's automatic reduction).
    pub fn hybrid_defaults(threshold_km: f64, span_seconds: f64) -> ScreeningConfig {
        ScreeningConfig {
            seconds_per_sample: 9.0,
            ..ScreeningConfig::grid_defaults(threshold_km, span_seconds)
        }
    }

    /// Cell size `g_c = d + 7.8 · s_ps` (Eq. 1).
    #[inline]
    pub fn cell_size_km(&self) -> f64 {
        self.threshold_km + LEO_SPEED * self.seconds_per_sample
    }

    /// Total number of sampling steps `o = t / s_ps` (§V-B), at least 1.
    #[inline]
    pub fn total_steps(&self) -> u32 {
        ((self.span_seconds / self.seconds_per_sample).ceil() as u32).max(1)
    }

    /// Sample time of step `k`.
    #[inline]
    pub fn step_time(&self, step: u32) -> f64 {
        step as f64 * self.seconds_per_sample
    }

    /// Validate the physical parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.threshold_km <= 0.0 || self.threshold_km.is_nan() {
            return Err("threshold must be positive".into());
        }
        if self.seconds_per_sample <= 0.0 || self.seconds_per_sample.is_nan() {
            return Err("seconds per sample must be positive".into());
        }
        if self.span_seconds <= 0.0 || self.span_seconds.is_nan() {
            return Err("span must be positive".into());
        }
        if self.total_steps() >= kessler_grid::pairset::MAX_STEP {
            return Err(format!(
                "span/step ratio produces {} steps, exceeding the {}-step pair-key limit",
                self.total_steps(),
                kessler_grid::pairset::MAX_STEP
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_size_follows_equation_one() {
        // d = 2 km, s_ps = 1 s → 9.8 km; s_ps = 9 s → 72.2 km.
        let grid = ScreeningConfig::grid_defaults(2.0, 3600.0);
        assert!((grid.cell_size_km() - 9.8).abs() < 1e-12);
        let hybrid = ScreeningConfig::hybrid_defaults(2.0, 3600.0);
        assert!((hybrid.cell_size_km() - 72.2).abs() < 1e-12);
    }

    #[test]
    fn step_accounting() {
        let c = ScreeningConfig::grid_defaults(2.0, 100.0);
        assert_eq!(c.total_steps(), 100);
        assert_eq!(c.step_time(0), 0.0);
        assert_eq!(c.step_time(10), 10.0);
        let h = ScreeningConfig::hybrid_defaults(2.0, 100.0);
        assert_eq!(h.total_steps(), 12); // ceil(100/9)
    }

    #[test]
    fn tiny_span_still_has_one_step() {
        let c = ScreeningConfig::grid_defaults(2.0, 0.5);
        assert_eq!(c.total_steps(), 1);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let ok = ScreeningConfig::grid_defaults(2.0, 3600.0);
        assert!(ok.validate().is_ok());
        let mut bad = ok;
        bad.threshold_km = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.seconds_per_sample = -1.0;
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.seconds_per_sample = 1e-4;
        bad.span_seconds = 1e6;
        assert!(
            bad.validate().is_err(),
            "step-count overflow must be caught"
        );
    }

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::Grid.label(), "grid");
        assert_eq!(Variant::Hybrid.label(), "hybrid");
        assert_eq!(Variant::Legacy.label(), "legacy");
    }

    #[test]
    fn variant_parses_its_own_labels() {
        for v in [
            Variant::Grid,
            Variant::Hybrid,
            Variant::Legacy,
            Variant::Sieve,
        ] {
            assert_eq!(v.label().parse::<Variant>(), Ok(v));
        }
        assert!("cube".parse::<Variant>().is_err());
        assert!("Grid".parse::<Variant>().is_err(), "labels are lowercase");
    }
}
