//! Memory / parallelism planner (§V-B "Parameterization").
//!
//! Fixed-size hash maps need a prior size estimate, and the number of
//! sampling steps that can be processed in parallel is bounded by memory.
//! This module reproduces the paper's accounting:
//!
//! ```text
//!   p   = (m − a_s − a_k − a_ch) / (a_gh + a_l)      grids in parallel
//!   o   = t / s_ps                                    total samples
//!   r_c = ⌈o / p⌉                                     computation rounds
//! ```
//!
//! and the Extra-P models for the conjunction hash map:
//!
//! ```text
//!   grid:   c' = 2.32·10⁻⁹ · n² · s^(4/3) · t · d^(7/4)     (Eq. 3)
//!   hybrid: c' = 2.14·10⁻⁹ · n² · s^(5/3) · t · d           (Eq. 4)
//!   c = max(c', 10 000) · 2 · 2
//! ```
//!
//! For the hybrid variant, `s_ps` is automatically reduced until the
//! parallelisation factor reaches ≈ 512 (one CUDA block of the paper's
//! conjunction-detection kernel) or memory admits no further improvement.

use crate::config::{ScreeningConfig, Variant};
use serde::{Deserialize, Serialize};

/// Per-slot byte cost of the conjunction hash map (paper: 16 B).
pub const CONJUNCTION_SLOT_BYTES: usize = 16;
/// Grid hash-map slot: 8 B key + 4 B list head.
pub const GRID_SLOT_BYTES: usize = 12;
/// Linked-list arena entry: one u32 next pointer.
pub const LIST_ENTRY_BYTES: usize = 4;
/// Satellite record (six f64 elements).
pub const SATELLITE_BYTES: usize = 48;
/// Precomputed propagation constants per satellite.
pub const KEPLER_DATA_BYTES: usize = 88;
/// Floor of the conjunction-map element estimate.
pub const MIN_CONJUNCTION_ESTIMATE: f64 = 10_000.0;
/// Target parallelisation factor of the hybrid auto-adjustment.
pub const TARGET_PARALLEL_FACTOR: usize = 512;

/// The memory model, parameterised by variant.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    pub variant: Variant,
}

/// Planner output.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlannerReport {
    /// Variant the plan was produced for.
    pub variant: Variant,
    /// Population size.
    pub n: usize,
    /// Possibly-adjusted seconds per sample.
    pub seconds_per_sample: f64,
    /// Whether the hybrid auto-adjustment changed `s_ps`.
    pub sps_adjusted: bool,
    /// Cell size from Eq. 1 at the adjusted `s_ps`, km.
    pub cell_size_km: f64,
    /// Extra-P element estimate `c'`.
    pub estimated_conjunctions: f64,
    /// Conjunction-map slot count `c` after the paper's double-doubling.
    pub pair_capacity: usize,
    /// Fixed allocations in bytes.
    pub bytes_satellites: usize,
    pub bytes_kepler: usize,
    pub bytes_conjunction_map: usize,
    /// Per-grid allocation in bytes.
    pub bytes_per_grid: usize,
    /// Grids processable in parallel (`p`), ≥ 1.
    pub parallel_factor: usize,
    /// Total sampling steps (`o`).
    pub total_steps: u32,
    /// Computation rounds (`r_c`).
    pub rounds: u32,
}

impl MemoryModel {
    pub fn new(variant: Variant) -> MemoryModel {
        MemoryModel { variant }
    }

    /// Extra-P conjunction estimate `c'` for `n` satellites at the given
    /// parameters (Eq. 3 / Eq. 4).
    pub fn estimated_conjunctions(
        &self,
        n: usize,
        seconds_per_sample: f64,
        span_seconds: f64,
        threshold_km: f64,
    ) -> f64 {
        let n = n as f64;
        match self.variant {
            Variant::Grid => {
                2.32e-9
                    * n
                    * n
                    * seconds_per_sample.powf(4.0 / 3.0)
                    * span_seconds
                    * threshold_km.powf(7.0 / 4.0)
            }
            Variant::Hybrid | Variant::Legacy | Variant::Sieve => {
                2.14e-9 * n * n * seconds_per_sample.powf(5.0 / 3.0) * span_seconds * threshold_km
            }
        }
    }

    /// Conjunction-map slot count: `max(c', 10 000) · 2 · 2`.
    pub fn pair_capacity(&self, estimated: f64, cap: Option<usize>) -> usize {
        let c = (estimated.max(MIN_CONJUNCTION_ESTIMATE) * 4.0) as usize;
        match cap {
            Some(max) => c.min(max),
            None => c,
        }
    }

    /// Produce the full plan, applying the hybrid `s_ps` auto-reduction.
    pub fn plan(&self, n: usize, config: &ScreeningConfig) -> PlannerReport {
        let mut sps = config.seconds_per_sample;
        let mut report = self.plan_at(n, config, sps);

        if matches!(self.variant, Variant::Hybrid) {
            // "We automatically reduce the seconds per sample … until a
            // parallelization factor p ≈ 512 is obtained."
            while report.parallel_factor < TARGET_PARALLEL_FACTOR && sps > 1.0 {
                sps = (sps - 1.0).max(1.0);
                report = self.plan_at(n, config, sps);
                report.sps_adjusted = true;
            }
        }
        report
    }

    fn plan_at(&self, n: usize, config: &ScreeningConfig, sps: f64) -> PlannerReport {
        let estimated =
            self.estimated_conjunctions(n, sps, config.span_seconds, config.threshold_km);
        let pair_capacity = self.pair_capacity(estimated, config.max_pair_capacity);

        let bytes_satellites = n * SATELLITE_BYTES;
        let bytes_kepler = n * KEPLER_DATA_BYTES;
        let bytes_conjunction_map = pair_capacity * CONJUNCTION_SLOT_BYTES;
        // Grid hash set sized at twice the satellite count.
        let bytes_per_grid = 2 * n * GRID_SLOT_BYTES + n * LIST_ENTRY_BYTES;

        let fixed = bytes_satellites + bytes_kepler + bytes_conjunction_map;
        let free = config.memory_budget_bytes.saturating_sub(fixed);
        let parallel_factor = free.checked_div(bytes_per_grid).unwrap_or(1).max(1);

        let adjusted = ScreeningConfig {
            seconds_per_sample: sps,
            ..*config
        };
        let total_steps = adjusted.total_steps();
        let rounds = total_steps
            .div_ceil(parallel_factor.min(u32::MAX as usize) as u32)
            .max(1);

        PlannerReport {
            variant: self.variant,
            n,
            seconds_per_sample: sps,
            sps_adjusted: false,
            cell_size_km: adjusted.cell_size_km(),
            estimated_conjunctions: estimated,
            pair_capacity,
            bytes_satellites,
            bytes_kepler,
            bytes_conjunction_map,
            bytes_per_grid,
            parallel_factor,
            total_steps,
            rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_cfg() -> ScreeningConfig {
        ScreeningConfig::grid_defaults(2.0, 3_600.0)
    }

    #[test]
    fn equation_three_matches_hand_computation() {
        let m = MemoryModel::new(Variant::Grid);
        // n = 64 000, s = 1, t = 3600, d = 2.
        let c = m.estimated_conjunctions(64_000, 1.0, 3_600.0, 2.0);
        let expect = 2.32e-9 * 64_000.0f64.powi(2) * 3_600.0 * 2.0f64.powf(1.75);
        assert!((c - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn equation_four_matches_hand_computation() {
        let m = MemoryModel::new(Variant::Hybrid);
        let c = m.estimated_conjunctions(64_000, 9.0, 3_600.0, 2.0);
        let expect = 2.14e-9 * 64_000.0f64.powi(2) * 9.0f64.powf(5.0 / 3.0) * 3_600.0 * 2.0;
        assert!((c - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn capacity_floor_and_double_doubling() {
        let m = MemoryModel::new(Variant::Grid);
        // Tiny estimate → floor at 10 000, ×4.
        assert_eq!(m.pair_capacity(5.0, None), 40_000);
        // Above the floor: c'·4.
        assert_eq!(m.pair_capacity(100_000.0, None), 400_000);
        // Cap applies last.
        assert_eq!(m.pair_capacity(100_000.0, Some(123_456)), 123_456);
    }

    #[test]
    fn plan_accounts_fixed_and_per_grid_memory() {
        let m = MemoryModel::new(Variant::Grid);
        let p = m.plan(10_000, &grid_cfg());
        assert_eq!(p.bytes_satellites, 10_000 * SATELLITE_BYTES);
        assert_eq!(p.bytes_kepler, 10_000 * KEPLER_DATA_BYTES);
        assert_eq!(
            p.bytes_per_grid,
            2 * 10_000 * GRID_SLOT_BYTES + 10_000 * LIST_ENTRY_BYTES
        );
        assert!(p.parallel_factor >= 1);
        assert_eq!(p.total_steps, 3_600);
        assert_eq!(
            p.rounds,
            p.total_steps.div_ceil(p.parallel_factor as u32).max(1)
        );
    }

    #[test]
    fn small_budget_forces_many_rounds() {
        let m = MemoryModel::new(Variant::Grid);
        let mut cfg = grid_cfg();
        // Budget barely above the fixed allocations: p collapses to 1.
        let fixed = 10_000 * (SATELLITE_BYTES + KEPLER_DATA_BYTES) + 40_000 * 16;
        cfg.memory_budget_bytes = fixed + 3 * 10_000 * GRID_SLOT_BYTES;
        let p = m.plan(10_000, &cfg);
        assert!(p.parallel_factor <= 2);
        assert!(p.rounds >= p.total_steps / 2);
    }

    #[test]
    fn hybrid_auto_reduces_sps_under_memory_pressure() {
        let m = MemoryModel::new(Variant::Hybrid);
        let mut cfg = ScreeningConfig::hybrid_defaults(2.0, 3_600.0);
        // Large population + small budget → Eq. 4 map dominates and p < 512
        // until s_ps drops (the paper's 512 000-satellite situation).
        let n = 512_000;
        cfg.memory_budget_bytes = 6 * 1024 * 1024 * 1024;
        let p = m.plan(n, &cfg);
        assert!(p.sps_adjusted, "expected automatic s_ps reduction");
        assert!(p.seconds_per_sample < 9.0);
        // Reducing s shrinks the estimate (s^(5/3) factor).
        let est_at_9 = m.estimated_conjunctions(n, 9.0, 3_600.0, 2.0);
        assert!(p.estimated_conjunctions < est_at_9);
    }

    #[test]
    fn hybrid_with_ample_memory_keeps_sps() {
        let m = MemoryModel::new(Variant::Hybrid);
        let cfg = ScreeningConfig::hybrid_defaults(2.0, 3_600.0);
        let p = m.plan(2_000, &cfg);
        assert!(!p.sps_adjusted);
        assert_eq!(p.seconds_per_sample, 9.0);
        assert!(p.parallel_factor >= TARGET_PARALLEL_FACTOR);
    }

    #[test]
    fn grid_variant_never_adjusts_sps() {
        let m = MemoryModel::new(Variant::Grid);
        let mut cfg = grid_cfg();
        cfg.memory_budget_bytes = 64 * 1024 * 1024;
        let p = m.plan(100_000, &cfg);
        assert!(!p.sps_adjusted);
        assert_eq!(p.seconds_per_sample, 1.0);
    }

    #[test]
    fn estimates_scale_quadratically_in_population() {
        let m = MemoryModel::new(Variant::Grid);
        let c1 = m.estimated_conjunctions(1_000, 1.0, 3_600.0, 2.0);
        let c2 = m.estimated_conjunctions(2_000, 1.0, 3_600.0, 2.0);
        assert!((c2 / c1 - 4.0).abs() < 1e-9);
    }
}
