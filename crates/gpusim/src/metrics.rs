//! Device metrics: kernel launches, thread counts, transfer volumes and
//! per-kernel wall time.

use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Duration;

/// Mutable accumulator behind the device mutex.
#[derive(Debug, Default)]
pub(crate) struct MetricsInner {
    pub(crate) kernel_launches: u64,
    pub(crate) threads_executed: u64,
    pub(crate) bytes_h2d: u64,
    pub(crate) bytes_d2h: u64,
    pub(crate) kernel_time: BTreeMap<String, Duration>,
}

impl MetricsInner {
    pub(crate) fn snapshot(&self, allocated: usize) -> DeviceMetrics {
        DeviceMetrics {
            kernel_launches: self.kernel_launches,
            threads_executed: self.threads_executed,
            bytes_h2d: self.bytes_h2d,
            bytes_d2h: self.bytes_d2h,
            allocated_bytes: allocated as u64,
            kernel_time: self.kernel_time.clone(),
        }
    }
}

/// Immutable snapshot of a device's counters.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceMetrics {
    pub kernel_launches: u64,
    pub threads_executed: u64,
    pub bytes_h2d: u64,
    pub bytes_d2h: u64,
    pub allocated_bytes: u64,
    pub kernel_time: BTreeMap<String, Duration>,
}

impl DeviceMetrics {
    /// Total kernel wall time across all kernels.
    pub fn total_kernel_time(&self) -> Duration {
        self.kernel_time.values().sum()
    }

    /// Fraction of total kernel time spent in kernels whose name contains
    /// `tag` (used by the §V-C.1 breakdown).
    pub fn time_fraction(&self, tag: &str) -> f64 {
        let total = self.total_kernel_time().as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        let tagged: f64 = self
            .kernel_time
            .iter()
            .filter(|(name, _)| name.contains(tag))
            .map(|(_, d)| d.as_secs_f64())
            .sum();
        tagged / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_fraction_partitions() {
        let mut inner = MetricsInner::default();
        inner
            .kernel_time
            .insert("insert".into(), Duration::from_millis(30));
        inner
            .kernel_time
            .insert("detect".into(), Duration::from_millis(70));
        let snap = inner.snapshot(0);
        assert!((snap.time_fraction("insert") - 0.3).abs() < 1e-9);
        assert!((snap.time_fraction("detect") - 0.7).abs() < 1e-9);
        assert_eq!(snap.time_fraction("absent"), 0.0);
        assert_eq!(snap.total_kernel_time(), Duration::from_millis(100));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let snap = MetricsInner::default().snapshot(42);
        assert_eq!(snap.kernel_launches, 0);
        assert_eq!(snap.allocated_bytes, 42);
        assert_eq!(snap.time_fraction("x"), 0.0);
    }
}
