//! Simulated device with explicit memory management and transfers.

use crate::metrics::MetricsInner;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Errors from device operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// The allocation would exceed the device-memory budget.
    OutOfDeviceMemory { requested: usize, free: usize },
    /// Host and device slices disagree in length.
    LengthMismatch { host: usize, device: usize },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::OutOfDeviceMemory { requested, free } => write!(
                f,
                "out of device memory: requested {requested} B with {free} B free"
            ),
            DeviceError::LengthMismatch { host, device } => {
                write!(f, "transfer length mismatch: host {host}, device {device}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Inner device state shared by buffers.
pub(crate) struct DeviceInner {
    pub(crate) memory_budget: usize,
    pub(crate) allocated: AtomicUsize,
    pub(crate) metrics: Mutex<MetricsInner>,
}

/// A simulated GPU.
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

impl Device {
    /// A device with the paper's 24 GB of memory (RTX 3090).
    pub fn rtx3090_like() -> Device {
        Device::with_memory(24 * 1024 * 1024 * 1024)
    }

    /// A device with an explicit memory budget in bytes.
    pub fn with_memory(bytes: usize) -> Device {
        Device {
            inner: Arc::new(DeviceInner {
                memory_budget: bytes,
                allocated: AtomicUsize::new(0),
                metrics: Mutex::new(MetricsInner::default()),
            }),
        }
    }

    /// Total memory budget in bytes.
    pub fn memory_budget(&self) -> usize {
        self.inner.memory_budget
    }

    /// Currently allocated bytes.
    pub fn allocated(&self) -> usize {
        self.inner.allocated.load(Ordering::Acquire)
    }

    /// Free bytes.
    pub fn free_memory(&self) -> usize {
        self.memory_budget().saturating_sub(self.allocated())
    }

    /// Snapshot the accumulated metrics.
    pub fn metrics(&self) -> crate::metrics::DeviceMetrics {
        self.inner.metrics.lock().snapshot(self.allocated())
    }

    /// Reset the metrics counters (not the allocations).
    pub fn reset_metrics(&self) {
        *self.inner.metrics.lock() = MetricsInner::default();
    }

    pub(crate) fn try_reserve(&self, bytes: usize) -> Result<(), DeviceError> {
        let mut current = self.inner.allocated.load(Ordering::Acquire);
        loop {
            let next = current.saturating_add(bytes);
            if next > self.inner.memory_budget {
                return Err(DeviceError::OutOfDeviceMemory {
                    requested: bytes,
                    free: self.inner.memory_budget - current,
                });
            }
            match self.inner.allocated.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    pub(crate) fn release(&self, bytes: usize) {
        self.inner.allocated.fetch_sub(bytes, Ordering::AcqRel);
    }
}

/// A typed buffer living in simulated device memory.
///
/// Contents are host RAM, of course, but every byte is charged against the
/// owning device's budget, and data crosses the host/device boundary only
/// through the explicit, metered transfer methods — forcing callers into
/// the same structure a real CUDA port has.
pub struct DeviceBuffer<T> {
    device: Device,
    data: Vec<T>,
    bytes: usize,
}

impl<T: Copy + Default + Send + Sync> DeviceBuffer<T> {
    /// Allocate a zero-initialised (default-initialised) buffer of `len`.
    pub fn alloc(device: &Device, len: usize) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = len * std::mem::size_of::<T>();
        device.try_reserve(bytes)?;
        Ok(DeviceBuffer {
            device: device.clone(),
            data: vec![T::default(); len],
            bytes,
        })
    }
}

impl<T: Copy + Send + Sync> DeviceBuffer<T> {
    /// Allocate and fill from a host slice (metered as one H→D transfer).
    /// Unlike [`DeviceBuffer::alloc`] this needs no `Default`.
    pub fn from_host(device: &Device, host: &[T]) -> Result<DeviceBuffer<T>, DeviceError> {
        let bytes = std::mem::size_of_val(host);
        device.try_reserve(bytes)?;
        device.inner.metrics.lock().bytes_h2d += bytes as u64;
        Ok(DeviceBuffer {
            device: device.clone(),
            data: host.to_vec(),
            bytes,
        })
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn size_bytes(&self) -> usize {
        self.bytes
    }

    /// H→D transfer.
    pub fn copy_from_host(&mut self, host: &[T]) -> Result<(), DeviceError> {
        if host.len() != self.data.len() {
            return Err(DeviceError::LengthMismatch {
                host: host.len(),
                device: self.data.len(),
            });
        }
        self.data.copy_from_slice(host);
        self.device.inner.metrics.lock().bytes_h2d += self.bytes as u64;
        Ok(())
    }

    /// D→H transfer.
    pub fn copy_to_host(&self, host: &mut [T]) -> Result<(), DeviceError> {
        if host.len() != self.data.len() {
            return Err(DeviceError::LengthMismatch {
                host: host.len(),
                device: self.data.len(),
            });
        }
        host.copy_from_slice(&self.data);
        self.device.inner.metrics.lock().bytes_d2h += self.bytes as u64;
        Ok(())
    }

    /// D→H transfer into a fresh vector.
    pub fn to_host_vec(&self) -> Vec<T> {
        self.device.inner.metrics.lock().bytes_d2h += self.bytes as u64;
        self.data.clone()
    }

    /// Device-side view for kernels (no transfer metering — kernels read
    /// device memory directly, as on hardware).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable device-side view for kernels.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.device.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_charges_the_budget() {
        let dev = Device::with_memory(1024);
        let buf = DeviceBuffer::<u64>::alloc(&dev, 64).unwrap();
        assert_eq!(buf.size_bytes(), 512);
        assert_eq!(dev.allocated(), 512);
        assert_eq!(dev.free_memory(), 512);
        drop(buf);
        assert_eq!(dev.allocated(), 0);
    }

    #[test]
    fn over_allocation_fails_cleanly() {
        let dev = Device::with_memory(100);
        let err = match DeviceBuffer::<u64>::alloc(&dev, 100) {
            Ok(_) => panic!("allocation beyond the budget must fail"),
            Err(e) => e,
        };
        assert!(matches!(err, DeviceError::OutOfDeviceMemory { .. }));
        // Failed allocation must not leak budget.
        assert_eq!(dev.allocated(), 0);
    }

    #[test]
    fn transfers_are_metered() {
        let dev = Device::with_memory(1 << 20);
        let host: Vec<u32> = (0..256).collect();
        let buf = DeviceBuffer::from_host(&dev, &host).unwrap();
        let mut back = vec![0u32; 256];
        buf.copy_to_host(&mut back).unwrap();
        assert_eq!(back, host);
        let m = dev.metrics();
        assert_eq!(m.bytes_h2d, 1024);
        assert_eq!(m.bytes_d2h, 1024);
    }

    #[test]
    fn length_mismatch_is_rejected() {
        let dev = Device::with_memory(1 << 20);
        let mut buf = DeviceBuffer::<u8>::alloc(&dev, 10).unwrap();
        assert!(matches!(
            buf.copy_from_host(&[0u8; 5]),
            Err(DeviceError::LengthMismatch {
                host: 5,
                device: 10
            })
        ));
        let mut too_big = vec![0u8; 20];
        assert!(buf.copy_to_host(&mut too_big).is_err());
    }

    #[test]
    fn concurrent_allocations_respect_the_budget() {
        let dev = Device::with_memory(8 * 100);
        let successes: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    let dev = dev.clone();
                    scope.spawn(move || {
                        // Each tries to grab 100 u8s; at most 8 can succeed
                        // simultaneously. Hold until all threads attempted.
                        DeviceBuffer::<u8>::alloc(&dev, 100).is_ok() as usize
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // All allocations are dropped by now.
        assert_eq!(dev.allocated(), 0);
        assert!(successes >= 8, "at least the budget's worth must succeed");
    }

    #[test]
    fn rtx3090_preset_has_24_gib() {
        assert_eq!(
            Device::rtx3090_like().memory_budget(),
            24 * 1024 * 1024 * 1024
        );
    }
}
