//! Kernel launches: grid/block/thread indexing executed on a rayon pool.

use crate::device::Device;
use rayon::prelude::*;
use std::time::Instant;

/// Launch geometry, CUDA-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Total logical threads (the launch covers `ceil(n/block)·block`
    /// threads; indices ≥ `threads` are masked out, as CUDA kernels do
    /// with an early-return bounds check).
    pub threads: usize,
    /// Threads per block. The paper sizes its conjunction-detection kernel
    /// around 512-thread blocks (§V-B).
    pub block_size: usize,
}

impl LaunchConfig {
    /// One thread per element with the paper's 512-thread blocks.
    pub fn for_elements(n: usize) -> LaunchConfig {
        LaunchConfig {
            threads: n,
            block_size: 512,
        }
    }

    /// Number of blocks in the launch grid.
    pub fn blocks(&self) -> usize {
        self.threads.div_ceil(self.block_size.max(1))
    }
}

/// Identity of one logical thread inside a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadId {
    pub block_idx: usize,
    pub thread_idx: usize,
    /// `block_idx · block_size + thread_idx`.
    pub global: usize,
}

impl Device {
    /// Launch a kernel: `body` runs once per logical thread, blocks are
    /// scheduled in parallel (rayon), threads within a block run
    /// sequentially in index order — mirroring the "one thread per tuple,
    /// no intra-block dependencies" structure of the paper's kernels.
    ///
    /// The kernel name keys the per-kernel time accounting used by the
    /// relative-time-consumption experiment.
    pub fn launch<F>(&self, name: &str, config: LaunchConfig, body: F)
    where
        F: Fn(ThreadId) + Send + Sync,
    {
        let start = Instant::now();
        let block_size = config.block_size.max(1);
        (0..config.blocks()).into_par_iter().for_each(|block_idx| {
            let base = block_idx * block_size;
            let end = (base + block_size).min(config.threads);
            for global in base..end {
                body(ThreadId {
                    block_idx,
                    thread_idx: global - base,
                    global,
                });
            }
        });
        let elapsed = start.elapsed();
        let mut metrics = self.inner.metrics.lock();
        metrics.kernel_launches += 1;
        metrics.threads_executed += config.threads as u64;
        let entry = metrics.kernel_time.entry(name.to_string()).or_default();
        *entry += elapsed;
    }

    /// Launch a kernel where each logical thread produces one output value
    /// (`out[global] = body(tid)`), the CUDA "map" idiom. Results are
    /// returned in thread order.
    pub fn launch_map<T, F>(&self, name: &str, config: LaunchConfig, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ThreadId) -> T + Send + Sync,
    {
        let start = Instant::now();
        let block_size = config.block_size.max(1);
        let mut out: Vec<Option<T>> = (0..config.threads).map(|_| None).collect();
        out.par_chunks_mut(block_size)
            .enumerate()
            .for_each(|(block_idx, chunk)| {
                let base = block_idx * block_size;
                for (thread_idx, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(body(ThreadId {
                        block_idx,
                        thread_idx,
                        global: base + thread_idx,
                    }));
                }
            });
        let result: Vec<T> = out
            .into_iter()
            .map(|v| v.expect("every launched thread writes its slot"))
            .collect();

        let elapsed = start.elapsed();
        let mut metrics = self.inner.metrics.lock();
        metrics.kernel_launches += 1;
        metrics.threads_executed += config.threads as u64;
        let entry = metrics.kernel_time.entry(name.to_string()).or_default();
        *entry += elapsed;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn launch_config_geometry() {
        let c = LaunchConfig {
            threads: 1000,
            block_size: 512,
        };
        assert_eq!(c.blocks(), 2);
        assert_eq!(LaunchConfig::for_elements(512).blocks(), 1);
        assert_eq!(LaunchConfig::for_elements(513).blocks(), 2);
        assert_eq!(
            LaunchConfig {
                threads: 0,
                block_size: 512
            }
            .blocks(),
            0
        );
    }

    #[test]
    fn every_thread_runs_exactly_once() {
        let dev = Device::with_memory(1 << 20);
        let n = 10_000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        dev.launch("count", LaunchConfig::for_elements(n), |tid| {
            counters[tid.global].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "thread {i}");
        }
    }

    #[test]
    fn thread_ids_are_consistent() {
        let dev = Device::with_memory(1 << 20);
        let bad = AtomicUsize::new(0);
        let cfg = LaunchConfig {
            threads: 1_537,
            block_size: 256,
        };
        dev.launch("ids", cfg, |tid| {
            if tid.global != tid.block_idx * 256 + tid.thread_idx || tid.thread_idx >= 256 {
                bad.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(bad.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn kernel_metrics_accumulate() {
        let dev = Device::with_memory(1 << 20);
        dev.launch("a", LaunchConfig::for_elements(100), |_| {});
        dev.launch("a", LaunchConfig::for_elements(100), |_| {});
        dev.launch("b", LaunchConfig::for_elements(50), |_| {});
        let m = dev.metrics();
        assert_eq!(m.kernel_launches, 3);
        assert_eq!(m.threads_executed, 250);
        assert!(m.kernel_time.contains_key("a"));
        assert!(m.kernel_time.contains_key("b"));
    }

    #[test]
    fn kernel_can_reduce_via_atomics() {
        // The idiom every screener kernel uses: concurrent writes go
        // through atomics, never plain shared state.
        let dev = Device::with_memory(1 << 20);
        let sum = AtomicU64::new(0);
        let n = 4_096;
        dev.launch("reduce", LaunchConfig::for_elements(n), |tid| {
            sum.fetch_add(tid.global as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn launch_map_preserves_thread_order() {
        let dev = Device::with_memory(1 << 20);
        let out = dev.launch_map(
            "map",
            LaunchConfig {
                threads: 1_000,
                block_size: 64,
            },
            |tid| tid.global * 3,
        );
        assert_eq!(out.len(), 1_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
        assert_eq!(dev.metrics().kernel_launches, 1);
    }

    #[test]
    fn launch_map_with_zero_threads_returns_empty() {
        let dev = Device::with_memory(1 << 20);
        let out: Vec<u32> = dev.launch_map("empty", LaunchConfig::for_elements(0), |_| 7);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_thread_launch_is_a_noop() {
        let dev = Device::with_memory(1 << 20);
        dev.launch("noop", LaunchConfig::for_elements(0), |_| {
            panic!("no thread should run");
        });
        assert_eq!(dev.metrics().kernel_launches, 1);
        assert_eq!(dev.metrics().threads_executed, 0);
    }
}
