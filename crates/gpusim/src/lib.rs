//! GPU execution-model simulator.
//!
//! The paper's fastest variants run on an RTX 3090 with CUDA. No GPU is
//! available in this reproduction environment, so — per the substitution
//! policy in DESIGN.md §3 — this crate simulates the *programming model*
//! the paper's kernels rely on, faithfully enough that the screeners'
//! GPU paths exercise the same code structure:
//!
//! * **Explicit device memory** ([`device::Device`],
//!   [`device::DeviceBuffer`]): allocations are charged against a
//!   configurable device-memory budget (24 GB for the paper's card), and
//!   host↔device transfers are explicit calls with byte accounting —
//!   the paper reports ~3 % of GPU runtime spent in allocation + transfer,
//!   and the planner (§V-B) exists precisely because device memory bounds
//!   the number of grids processed in parallel.
//! * **Kernel launches** ([`kernel`]): a launch has a grid of blocks of
//!   threads (the paper tunes its conjunction-detection kernel around
//!   512-thread blocks); the body is a pure function of the global thread
//!   index, executed block-by-block on a rayon pool. Data-dependent
//!   branching inside a "warp" is legal (as in CUDA) but the model
//!   encourages the branch-free bulk structure the paper's contour Kepler
//!   solver was chosen for.
//! * **Metrics** ([`metrics`]): kernel launch counts, logical threads
//!   executed, transfer volumes and per-kernel wall time, consumed by the
//!   relative-time-consumption experiment (§V-C.1).
//!
//! What is deliberately *not* modelled: SIMT timing, memory coalescing,
//! bank conflicts, occupancy. Absolute GPU performance is out of scope on
//! CPU-only hardware; the experiments report the simulator's results as
//! "gpusim" series, never as GPU timings.

pub mod device;
pub mod kernel;
pub mod metrics;

pub use device::{Device, DeviceBuffer, DeviceError};
pub use kernel::LaunchConfig;
pub use metrics::DeviceMetrics;
