//! Packing of 3-D grid-cell coordinates into a single `u64` key.
//!
//! The paper's hash-map slots store "the key from which the slot was
//! calculated" (§IV-A1) — one word identifying the grid cell. We pack the
//! three signed cell coordinates into 21 bits each (two's complement with a
//! bias), leaving the top bit clear so a packed key can never equal the
//! `u64::MAX` empty-slot sentinel.
//!
//! 21 bits span cell indices in `[−2²⁰, 2²⁰)` = ±1 048 576 cells per axis.
//! With the paper's smallest cells (≈ 2 km for a 2 km threshold at
//! `s_ps → 0`), that covers ±2·10⁶ km — far beyond the 85 000 km
//! simulation cube.

use kessler_math::Vec3;

/// Bits per coordinate.
const BITS: u32 = 21;
/// Coordinate bias making stored values non-negative.
const BIAS: i64 = 1 << (BITS - 1);
/// Mask for one packed coordinate.
const MASK: u64 = (1 << BITS) - 1;

/// Inclusive coordinate bounds representable by a packed key.
pub const COORD_MIN: i64 = -BIAS;
pub const COORD_MAX: i64 = BIAS - 1;

/// A packed grid-cell key. The canonical "key" type of the atomic hash map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(pub u64);

/// Reserved sentinel: an all-ones word can never be produced by packing
/// because the top bit of a packed key is always zero (3·21 = 63 bits).
pub const EMPTY_KEY: u64 = u64::MAX;

impl CellKey {
    /// Pack signed cell coordinates.
    ///
    /// # Panics
    /// Panics (debug and release) if a coordinate is outside the
    /// representable range — that would mean the simulation volume was
    /// exceeded by ~2·10⁶ km and silent wraparound would corrupt
    /// neighbour lookups.
    #[inline]
    pub fn pack(x: i64, y: i64, z: i64) -> CellKey {
        assert!(
            (COORD_MIN..=COORD_MAX).contains(&x)
                && (COORD_MIN..=COORD_MAX).contains(&y)
                && (COORD_MIN..=COORD_MAX).contains(&z),
            "cell coordinate out of packable range: ({x}, {y}, {z})"
        );
        let xb = (x + BIAS) as u64;
        let yb = (y + BIAS) as u64;
        let zb = (z + BIAS) as u64;
        CellKey((xb << (2 * BITS)) | (yb << BITS) | zb)
    }

    /// Unpack into signed cell coordinates.
    #[inline]
    pub fn unpack(self) -> (i64, i64, i64) {
        let x = ((self.0 >> (2 * BITS)) & MASK) as i64 - BIAS;
        let y = ((self.0 >> BITS) & MASK) as i64 - BIAS;
        let z = (self.0 & MASK) as i64 - BIAS;
        (x, y, z)
    }

    /// The key of the cell offset by `(dx, dy, dz)`.
    ///
    /// Returns `None` if the neighbour would leave the representable range
    /// (only possible at the extreme edge of the coordinate space).
    #[inline]
    pub fn offset(self, dx: i64, dy: i64, dz: i64) -> Option<CellKey> {
        let (x, y, z) = self.unpack();
        let (nx, ny, nz) = (x + dx, y + dy, z + dz);
        if (COORD_MIN..=COORD_MAX).contains(&nx)
            && (COORD_MIN..=COORD_MAX).contains(&ny)
            && (COORD_MIN..=COORD_MAX).contains(&nz)
        {
            Some(CellKey::pack(nx, ny, nz))
        } else {
            None
        }
    }
}

/// Compute the cell coordinates containing `position` for a given cell size.
#[inline]
pub fn cell_coords(position: Vec3, cell_size: f64) -> (i64, i64, i64) {
    debug_assert!(cell_size > 0.0);
    (
        (position.x / cell_size).floor() as i64,
        (position.y / cell_size).floor() as i64,
        (position.z / cell_size).floor() as i64,
    )
}

/// Compute the packed cell key containing `position`.
#[inline]
pub fn cell_key_of(position: Vec3, cell_size: f64) -> CellKey {
    let (x, y, z) = cell_coords(position, cell_size);
    CellKey::pack(x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pack_unpack_round_trip_on_extremes() {
        for &c in &[
            (0, 0, 0),
            (COORD_MIN, COORD_MIN, COORD_MIN),
            (COORD_MAX, COORD_MAX, COORD_MAX),
            (-1, 1, 0),
            (12345, -54321, 777),
        ] {
            let key = CellKey::pack(c.0, c.1, c.2);
            assert_eq!(key.unpack(), c);
        }
    }

    #[test]
    fn packed_key_never_equals_empty_sentinel() {
        // Top bit is always clear.
        let max = CellKey::pack(COORD_MAX, COORD_MAX, COORD_MAX);
        assert!(max.0 < (1 << 63));
        assert_ne!(max.0, EMPTY_KEY);
    }

    #[test]
    #[should_panic(expected = "out of packable range")]
    fn out_of_range_coordinates_panic() {
        CellKey::pack(COORD_MAX + 1, 0, 0);
    }

    #[test]
    fn distinct_cells_have_distinct_keys() {
        let a = CellKey::pack(1, 2, 3);
        let b = CellKey::pack(3, 2, 1);
        let c = CellKey::pack(1, 2, 4);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn offset_moves_to_neighbor() {
        let k = CellKey::pack(10, -5, 3);
        let n = k.offset(-1, 1, 0).unwrap();
        assert_eq!(n.unpack(), (9, -4, 3));
    }

    #[test]
    fn offset_at_boundary_returns_none() {
        let k = CellKey::pack(COORD_MAX, 0, 0);
        assert!(k.offset(1, 0, 0).is_none());
        assert!(k.offset(-1, 0, 0).is_some());
        let k = CellKey::pack(COORD_MIN, 0, 0);
        assert!(k.offset(-1, 0, 0).is_none());
    }

    #[test]
    fn cell_coords_floor_semantics() {
        // Points just below a boundary belong to the lower cell.
        assert_eq!(cell_coords(Vec3::new(9.99, 0.0, 0.0), 10.0), (0, 0, 0));
        assert_eq!(cell_coords(Vec3::new(10.0, 0.0, 0.0), 10.0), (1, 0, 0));
        assert_eq!(cell_coords(Vec3::new(-0.01, 0.0, 0.0), 10.0), (-1, 0, 0));
        assert_eq!(cell_coords(Vec3::new(-10.0, 0.0, 0.0), 10.0), (-1, 0, 0));
    }

    #[test]
    fn nearby_points_share_or_neighbor_cells() {
        let cell = 10.0;
        let a = Vec3::new(14.9, 20.1, -3.0);
        let b = Vec3::new(15.1, 19.9, -3.0);
        let (ax, ay, az) = cell_coords(a, cell);
        let (bx, by, bz) = cell_coords(b, cell);
        assert!((ax - bx).abs() <= 1 && (ay - by).abs() <= 1 && (az - bz).abs() <= 1);
    }

    proptest! {
        #[test]
        fn pack_unpack_round_trip(
            x in COORD_MIN..=COORD_MAX,
            y in COORD_MIN..=COORD_MAX,
            z in COORD_MIN..=COORD_MAX,
        ) {
            prop_assert_eq!(CellKey::pack(x, y, z).unpack(), (x, y, z));
        }

        #[test]
        fn packing_is_injective(
            a in (COORD_MIN..=COORD_MAX, COORD_MIN..=COORD_MAX, COORD_MIN..=COORD_MAX),
            b in (COORD_MIN..=COORD_MAX, COORD_MIN..=COORD_MAX, COORD_MIN..=COORD_MAX),
        ) {
            prop_assume!(a != b);
            prop_assert_ne!(CellKey::pack(a.0, a.1, a.2), CellKey::pack(b.0, b.1, b.2));
        }

        /// Two points closer than one cell size can differ by at most one
        /// cell index per axis — the invariant the 26-neighbour scan of the
        /// conjunction detector relies on.
        #[test]
        fn close_points_are_in_adjacent_cells(
            px in -40_000.0..40_000.0f64, py in -40_000.0..40_000.0f64,
            pz in -40_000.0..40_000.0f64,
            dx in -1.0..1.0f64, dy in -1.0..1.0f64, dz in -1.0..1.0f64,
            cell in 1.0..100.0f64,
        ) {
            let a = Vec3::new(px, py, pz);
            let b = Vec3::new(px + dx * cell, py + dy * cell, pz + dz * cell);
            let (ax, ay, az) = cell_coords(a, cell);
            let (bx, by, bz) = cell_coords(b, cell);
            prop_assert!((ax - bx).abs() <= 1);
            prop_assert!((ay - by).abs() <= 1);
            prop_assert!((az - bz).abs() <= 1);
        }
    }
}
