//! The spatial grid (§III-A, §IV-A2/3): a fixed-size atomic hash map from
//! cell keys to per-cell singly-linked satellite lists.
//!
//! One grid represents the population at a single sampling step. Insertion
//! is fully parallel: a thread computes the satellite's cell key, claims or
//! finds the cell's hash-map slot with one CAS, and pushes the satellite
//! onto the cell's list with a CAS loop on the list head. The list arena is
//! one `AtomicU32` per satellite, allocated once ("each satellite produces
//! exactly one of these entries, so we can allocate them in advance and
//! just set the pointers to the next entry dynamically", Fig. 6).

use crate::atomic_map::{AtomicMap, MapFull, VALUE_EMPTY};
use crate::cellkey::{cell_key_of, CellKey};
use crate::neighbor::{FULL_NEIGHBORHOOD, HALF_NEIGHBORHOOD};
use crate::pairset::{CandidatePair, PairSet};
use kessler_math::Vec3;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Neighbourhood scan strategy for candidate-pair extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeighborScan {
    /// Visit each unordered cell pair once via 13 lexicographically
    /// positive offsets (default; half the lookups of the paper's full
    /// scan with identical results thanks to pair-set dedup).
    #[default]
    Half,
    /// The paper's literal 26-neighbour scan; every cross-cell pair is
    /// found twice and deduplicated by the pair set. Kept for the ablation
    /// benchmark.
    Full,
}

/// A spatial grid for one sampling step.
///
/// The grid owns no satellite positions — callers pass the position slice
/// to every operation, keeping the hot data in one flat array
/// (structure-of-arrays) that all sampling steps share.
pub struct SpatialGrid {
    map: AtomicMap,
    /// `next[i]` = next satellite in i's cell list, or `VALUE_EMPTY`.
    next: Box<[AtomicU32]>,
    cell_size: f64,
}

impl SpatialGrid {
    /// Create a grid for `capacity` satellites with the given cell size.
    ///
    /// The hash map gets `2 × capacity` slots — the paper's sizing rule
    /// ("we use twice the number of satellites as slots to mitigate the
    /// number of hash collisions and break up long clusters").
    pub fn new(capacity: usize, cell_size: f64) -> SpatialGrid {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "invalid cell size"
        );
        SpatialGrid {
            map: AtomicMap::with_capacity(2 * capacity.max(1)),
            next: (0..capacity).map(|_| AtomicU32::new(VALUE_EMPTY)).collect(),
            cell_size,
        }
    }

    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of satellites the arena can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.next.len()
    }

    /// Approximate resident size in bytes (`a_gh + a_l` of §V-B).
    pub fn memory_bytes(&self) -> usize {
        self.map.memory_bytes() + self.next.len() * std::mem::size_of::<AtomicU32>()
    }

    /// Reset for the next sampling step (parallel).
    pub fn reset(&self) {
        self.map.reset();
        self.next
            .par_iter()
            .for_each(|n| n.store(VALUE_EMPTY, Ordering::Relaxed));
    }

    /// Insert one satellite. Lock-free; safe to call from many threads.
    ///
    /// # Errors
    /// [`MapFull`] if the hash map has no free slot (cannot happen with
    /// the 2× sizing rule, because a population of n satellites occupies
    /// at most n cells).
    pub fn insert(&self, index: u32, position: Vec3) -> Result<(), MapFull> {
        debug_assert!((index as usize) < self.next.len());
        let key = cell_key_of(position, self.cell_size);
        let slot = self.map.insert_or_get(key.0)?.slot();
        // Push-front onto the cell list: next[i] = head; head = i (CAS loop).
        let head = self.map.value_atomic(slot);
        let mut current = head.load(Ordering::Acquire);
        loop {
            self.next[index as usize].store(current, Ordering::Release);
            match head.compare_exchange_weak(current, index, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// Insert every satellite of `positions` in parallel
    /// (`positions[i]` ↔ satellite id `i`).
    pub fn insert_all(&self, positions: &[Vec3]) -> Result<(), MapFull> {
        assert!(positions.len() <= self.capacity());
        positions
            .par_iter()
            .enumerate()
            .try_for_each(|(i, &p)| self.insert(i as u32, p))
    }

    /// Iterate the satellite indices stored in the cell at map slot `slot`.
    pub fn cell_members(&self, slot: usize) -> CellMembers<'_> {
        CellMembers {
            grid: self,
            cursor: self.map.value_at(slot),
        }
    }

    /// Slot of a cell key, if that cell is occupied.
    #[inline]
    pub fn lookup_cell(&self, key: CellKey) -> Option<usize> {
        self.map.lookup(key.0)
    }

    /// Cell key stored at a map slot.
    #[inline]
    pub fn cell_key_at(&self, slot: usize) -> Option<CellKey> {
        self.map.key_at(slot).map(CellKey)
    }

    /// All occupied map slots (parallel collect).
    pub fn occupied_slots(&self) -> Vec<usize> {
        self.map.occupied_slots()
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.map.occupied()
    }

    /// Extract candidate pairs into `pairs` (§IV-A3).
    ///
    /// Every pair of satellites sharing a cell, plus every pair with the
    /// two satellites in adjacent cells, is inserted as
    /// `(id_lo, id_hi, step)`. The occupied slots are scanned in parallel.
    pub fn collect_candidate_pairs(&self, step: u32, scan: NeighborScan, pairs: &PairSet) {
        let slots = self.occupied_slots();
        slots.par_iter().for_each(|&slot| {
            self.collect_pairs_for_slot(slot, step, scan, pairs);
        });
    }

    /// Candidate pairs contributed by one occupied cell. Public so kernel-
    /// style executors (the GPU simulator) can parallelise over slots
    /// themselves; [`SpatialGrid::collect_candidate_pairs`] is the rayon
    /// driver over all occupied slots.
    pub fn collect_pairs_for_slot(
        &self,
        slot: usize,
        step: u32,
        scan: NeighborScan,
        pairs: &PairSet,
    ) {
        let Some(key) = self.cell_key_at(slot) else {
            return;
        };

        // Pairs inside the cell itself: every unordered pair of members.
        let mut members = Vec::new();
        for id in self.cell_members(slot) {
            members.push(id);
        }
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                pairs.insert(CandidatePair::new(a, b, step));
            }
        }

        // Pairs against neighbouring cells.
        let offsets: &[(i64, i64, i64)] = match scan {
            NeighborScan::Half => &HALF_NEIGHBORHOOD,
            NeighborScan::Full => &FULL_NEIGHBORHOOD,
        };
        for &(dx, dy, dz) in offsets {
            let Some(nkey) = key.offset(dx, dy, dz) else {
                continue;
            };
            let Some(nslot) = self.lookup_cell(nkey) else {
                continue;
            };
            for a in self.cell_members(slot) {
                for b in self.cell_members(nslot) {
                    pairs.insert(CandidatePair::new(a, b, step));
                }
            }
        }
    }
}

/// Iterator over the satellites of one cell (walks the linked list).
pub struct CellMembers<'a> {
    grid: &'a SpatialGrid,
    cursor: u32,
}

impl Iterator for CellMembers<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.cursor == VALUE_EMPTY {
            return None;
        }
        let id = self.cursor;
        self.cursor = self.grid.next[id as usize].load(Ordering::Acquire);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn pairs_of(grid: &SpatialGrid, scan: NeighborScan) -> HashSet<(u32, u32)> {
        let set = PairSet::with_capacity(1 << 14);
        grid.collect_candidate_pairs(0, scan, &set);
        set.drain_to_vec()
            .into_iter()
            .map(|p| (p.id_lo, p.id_hi))
            .collect()
    }

    /// Brute-force reference: all pairs whose cells differ by ≤ 1 per axis.
    fn reference_pairs(positions: &[Vec3], cell: f64) -> HashSet<(u32, u32)> {
        let mut out = HashSet::new();
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                let (ax, ay, az) = crate::cellkey::cell_coords(positions[i], cell);
                let (bx, by, bz) = crate::cellkey::cell_coords(positions[j], cell);
                if (ax - bx).abs() <= 1 && (ay - by).abs() <= 1 && (az - bz).abs() <= 1 {
                    out.insert((i as u32, j as u32));
                }
            }
        }
        out
    }

    #[test]
    fn satellites_in_same_cell_pair_up() {
        let grid = SpatialGrid::new(4, 10.0);
        let positions = [
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(2.0, 2.0, 2.0),
            Vec3::new(500.0, 500.0, 500.0),
        ];
        grid.insert_all(&positions).unwrap();
        assert_eq!(grid.occupied_cells(), 2);
        let pairs = pairs_of(&grid, NeighborScan::Half);
        assert_eq!(pairs, HashSet::from([(0, 1)]));
    }

    #[test]
    fn satellites_in_adjacent_cells_pair_up() {
        let grid = SpatialGrid::new(2, 10.0);
        // Cells (0,0,0) and (1,0,0).
        let positions = [Vec3::new(9.0, 5.0, 5.0), Vec3::new(11.0, 5.0, 5.0)];
        grid.insert_all(&positions).unwrap();
        let pairs = pairs_of(&grid, NeighborScan::Half);
        assert_eq!(pairs, HashSet::from([(0, 1)]));
    }

    #[test]
    fn diagonal_neighbors_pair_up() {
        let grid = SpatialGrid::new(2, 10.0);
        // Cells (0,0,0) and (1,1,1) — corner adjacency.
        let positions = [Vec3::new(9.9, 9.9, 9.9), Vec3::new(10.1, 10.1, 10.1)];
        grid.insert_all(&positions).unwrap();
        let pairs = pairs_of(&grid, NeighborScan::Half);
        assert_eq!(pairs, HashSet::from([(0, 1)]));
    }

    #[test]
    fn distant_satellites_do_not_pair() {
        let grid = SpatialGrid::new(2, 10.0);
        // Cells (0,0,0) and (2,0,0) — not adjacent.
        let positions = [Vec3::new(5.0, 5.0, 5.0), Vec3::new(25.0, 5.0, 5.0)];
        grid.insert_all(&positions).unwrap();
        assert!(pairs_of(&grid, NeighborScan::Half).is_empty());
    }

    #[test]
    fn half_and_full_scans_find_identical_pairs() {
        let mut positions = Vec::new();
        // A clumpy deterministic cloud.
        for i in 0..64u32 {
            let f = i as f64;
            positions.push(Vec3::new(
                (f * 7.3) % 50.0,
                (f * 13.7) % 50.0,
                (f * 29.1) % 50.0,
            ));
        }
        let grid = SpatialGrid::new(positions.len(), 10.0);
        grid.insert_all(&positions).unwrap();
        let half = pairs_of(&grid, NeighborScan::Half);
        let full = pairs_of(&grid, NeighborScan::Full);
        assert_eq!(half, full);
        assert!(!half.is_empty());
    }

    #[test]
    fn candidate_pairs_match_brute_force_reference() {
        let mut positions = Vec::new();
        for i in 0..100u32 {
            let f = i as f64;
            positions.push(Vec3::new(
                (f * 17.3) % 80.0 - 40.0,
                (f * 31.7) % 80.0 - 40.0,
                (f * 47.9) % 80.0 - 40.0,
            ));
        }
        let grid = SpatialGrid::new(positions.len(), 12.0);
        grid.insert_all(&positions).unwrap();
        assert_eq!(
            pairs_of(&grid, NeighborScan::Half),
            reference_pairs(&positions, 12.0)
        );
    }

    #[test]
    fn cell_list_contains_every_inserted_member() {
        let grid = SpatialGrid::new(50, 100.0);
        // All 50 satellites into the same cell.
        let positions: Vec<Vec3> = (0..50)
            .map(|i| Vec3::new(i as f64, i as f64, 0.0))
            .collect();
        grid.insert_all(&positions).unwrap();
        assert_eq!(grid.occupied_cells(), 1);
        let slot = grid.occupied_slots()[0];
        let members: HashSet<u32> = grid.cell_members(slot).collect();
        assert_eq!(members, (0..50u32).collect());
    }

    #[test]
    fn reset_allows_reuse_for_next_step() {
        let grid = SpatialGrid::new(3, 10.0);
        grid.insert_all(&[Vec3::new(1.0, 1.0, 1.0), Vec3::new(2.0, 2.0, 2.0)])
            .unwrap();
        assert_eq!(grid.occupied_cells(), 1);
        grid.reset();
        assert_eq!(grid.occupied_cells(), 0);
        // Different step, different positions.
        grid.insert_all(&[
            Vec3::new(100.0, 0.0, 0.0),
            Vec3::new(-100.0, 0.0, 0.0),
            Vec3::new(0.0, 100.0, 0.0),
        ])
        .unwrap();
        assert_eq!(grid.occupied_cells(), 3);
        assert!(pairs_of(&grid, NeighborScan::Half).is_empty());
    }

    #[test]
    fn concurrent_insertion_loses_no_satellite() {
        let n = 2_000u32;
        let grid = SpatialGrid::new(n as usize, 5.0);
        // Highly contended: only ~8 distinct cells.
        let positions: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new((i % 2) as f64 * 5.0, (i % 4 / 2) as f64 * 5.0, 0.0))
            .collect();
        grid.insert_all(&positions).unwrap();
        // Every satellite must appear in exactly one cell list.
        let mut seen = HashSet::new();
        for slot in grid.occupied_slots() {
            for id in grid.cell_members(slot) {
                assert!(seen.insert(id), "satellite {id} appears twice");
            }
        }
        assert_eq!(seen.len(), n as usize);
    }

    #[test]
    fn negative_coordinates_are_handled() {
        let grid = SpatialGrid::new(2, 10.0);
        let positions = [Vec3::new(-9.0, -9.0, -9.0), Vec3::new(-11.0, -9.0, -9.0)];
        grid.insert_all(&positions).unwrap();
        // Cells (-1,-1,-1) and (-2,-1,-1): adjacent.
        assert_eq!(pairs_of(&grid, NeighborScan::Half), HashSet::from([(0, 1)]));
    }

    #[test]
    #[should_panic(expected = "invalid cell size")]
    fn zero_cell_size_is_rejected() {
        SpatialGrid::new(10, 0.0);
    }

    proptest! {
        /// The grid's candidate set must exactly equal the brute-force set
        /// of cell-adjacent pairs for random clouds — the core correctness
        /// property of the whole data structure.
        #[test]
        fn prop_matches_brute_force(
            raw in proptest::collection::vec(
                (-200.0..200.0f64, -200.0..200.0f64, -200.0..200.0f64), 2..60),
            cell in 5.0..50.0f64,
        ) {
            let positions: Vec<Vec3> =
                raw.iter().map(|&(x, y, z)| Vec3::new(x, y, z)).collect();
            let grid = SpatialGrid::new(positions.len(), cell);
            grid.insert_all(&positions).unwrap();
            prop_assert_eq!(
                pairs_of(&grid, NeighborScan::Half),
                reference_pairs(&positions, cell)
            );
        }

        /// Any two satellites within one cell size of each other MUST be a
        /// candidate pair (no false negatives — the safety property that
        /// justifies Eq. 1's cell sizing).
        #[test]
        fn prop_close_pairs_are_never_missed(
            x in -1000.0..1000.0f64, y in -1000.0..1000.0f64, z in -1000.0..1000.0f64,
            dx in -1.0..1.0f64, dy in -1.0..1.0f64, dz in -1.0..1.0f64,
            cell in 1.0..100.0f64,
        ) {
            let sep = Vec3::new(dx, dy, dz) * (cell / 3.0f64.sqrt() * 0.999);
            let a = Vec3::new(x, y, z);
            let b = a + sep;
            prop_assume!(a.dist(b) <= cell);
            let grid = SpatialGrid::new(2, cell);
            grid.insert_all(&[a, b]).unwrap();
            let pairs = pairs_of(&grid, NeighborScan::Half);
            prop_assert!(pairs.contains(&(0, 1)), "missed pair at distance {}", a.dist(b));
        }
    }
}
