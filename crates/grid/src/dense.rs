//! Dense 3-D array grid — the representation the paper rejects (§IV-A).
//!
//! "Simple data structures like a three-dimensional array where each item
//! corresponds to a grid cell are not practical … such memory-intensive
//! representations are unsuitable. Furthermore, if we used three-
//! dimensional arrays, we had to erase the content for every iteration."
//!
//! We implement it anyway, for two reasons: (1) it turns that argument
//! into a measured ablation (`benches/spatial_grid.rs` compares insert +
//! reset cost and the memory footprint against the hash grid), and
//! (2) for *small, dense* volumes — a debris cloud right after a breakup —
//! a dense grid is legitimately faster, and downstream users may want it.
//!
//! The dense grid covers an axis-aligned box with `dims` cells per axis;
//! construction fails loudly when the requested volume would exceed a
//! memory bound rather than attempting the paper's (85 000 km)³ cube.

use crate::atomic_map::VALUE_EMPTY;
use crate::pairset::{CandidatePair, PairSet};
use kessler_math::Vec3;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Construction errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseGridError {
    /// The cell array would exceed the allowed allocation.
    TooLarge { cells: u128, max_cells: u128 },
    /// A box side or the cell size is non-positive.
    BadGeometry,
}

impl std::fmt::Display for DenseGridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DenseGridError::TooLarge { cells, max_cells } => write!(
                f,
                "dense grid would need {cells} cells (limit {max_cells}); use the hash grid"
            ),
            DenseGridError::BadGeometry => write!(f, "invalid dense-grid geometry"),
        }
    }
}

impl std::error::Error for DenseGridError {}

/// A dense 3-D cell array over a bounded box, with the same per-cell
/// linked-list representation as [`crate::SpatialGrid`].
pub struct DenseGrid {
    origin: Vec3,
    cell_size: f64,
    dims: [usize; 3],
    /// Head satellite index per cell (`VALUE_EMPTY` = empty).
    heads: Box<[AtomicU32]>,
    /// Next pointers, one per satellite.
    next: Box<[AtomicU32]>,
}

impl std::fmt::Debug for DenseGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseGrid")
            .field("origin", &self.origin)
            .field("cell_size", &self.cell_size)
            .field("dims", &self.dims)
            .field("capacity", &self.next.len())
            .finish()
    }
}

/// Default allocation guard: 2²⁸ cells = 1 GiB of heads.
pub const DEFAULT_MAX_CELLS: u128 = 1 << 28;

impl DenseGrid {
    /// Create a dense grid covering `[origin, origin + extent]` with the
    /// given cell size, for up to `capacity` satellites.
    pub fn new(
        origin: Vec3,
        extent: Vec3,
        cell_size: f64,
        capacity: usize,
    ) -> Result<DenseGrid, DenseGridError> {
        if cell_size <= 0.0 || extent.x <= 0.0 || extent.y <= 0.0 || extent.z <= 0.0 {
            return Err(DenseGridError::BadGeometry);
        }
        let dims = [
            (extent.x / cell_size).ceil() as usize,
            (extent.y / cell_size).ceil() as usize,
            (extent.z / cell_size).ceil() as usize,
        ];
        let cells = dims[0] as u128 * dims[1] as u128 * dims[2] as u128;
        if cells > DEFAULT_MAX_CELLS {
            return Err(DenseGridError::TooLarge {
                cells,
                max_cells: DEFAULT_MAX_CELLS,
            });
        }
        Ok(DenseGrid {
            origin,
            cell_size,
            dims,
            heads: (0..cells as usize)
                .map(|_| AtomicU32::new(VALUE_EMPTY))
                .collect(),
            next: (0..capacity).map(|_| AtomicU32::new(VALUE_EMPTY)).collect(),
        })
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.heads.len()
    }

    /// Resident bytes — what the paper's memory argument is about.
    pub fn memory_bytes(&self) -> usize {
        (self.heads.len() + self.next.len()) * std::mem::size_of::<AtomicU32>()
    }

    #[inline]
    fn cell_index(&self, p: Vec3) -> Option<usize> {
        let fx = (p.x - self.origin.x) / self.cell_size;
        let fy = (p.y - self.origin.y) / self.cell_size;
        let fz = (p.z - self.origin.z) / self.cell_size;
        if fx < 0.0 || fy < 0.0 || fz < 0.0 {
            return None;
        }
        let (x, y, z) = (fx as usize, fy as usize, fz as usize);
        if x >= self.dims[0] || y >= self.dims[1] || z >= self.dims[2] {
            return None;
        }
        Some((x * self.dims[1] + y) * self.dims[2] + z)
    }

    /// Insert a satellite; returns `false` when the position lies outside
    /// the covered box (the caller decides whether that is an error).
    pub fn insert(&self, index: u32, position: Vec3) -> bool {
        let Some(cell) = self.cell_index(position) else {
            return false;
        };
        let head = &self.heads[cell];
        let mut current = head.load(Ordering::Acquire);
        loop {
            self.next[index as usize].store(current, Ordering::Release);
            match head.compare_exchange_weak(current, index, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Parallel insertion; returns the number of out-of-box satellites.
    pub fn insert_all(&self, positions: &[Vec3]) -> usize {
        assert!(positions.len() <= self.next.len());
        positions
            .par_iter()
            .enumerate()
            .filter(|&(i, &p)| !self.insert(i as u32, p))
            .count()
    }

    /// The paper's erase-per-iteration cost: every cell head must be
    /// cleared (O(cells), not O(occupied)).
    pub fn reset(&self) {
        self.heads
            .par_iter()
            .for_each(|h| h.store(VALUE_EMPTY, Ordering::Relaxed));
        self.next
            .par_iter()
            .for_each(|n| n.store(VALUE_EMPTY, Ordering::Relaxed));
    }

    /// Iterate a cell's members by raw cell index.
    fn members(&self, cell: usize) -> impl Iterator<Item = u32> + '_ {
        let mut cursor = self.heads[cell].load(Ordering::Acquire);
        std::iter::from_fn(move || {
            if cursor == VALUE_EMPTY {
                return None;
            }
            let id = cursor;
            cursor = self.next[id as usize].load(Ordering::Acquire);
            Some(id)
        })
    }

    /// Candidate-pair extraction over the 13-offset half neighbourhood,
    /// matching [`crate::SpatialGrid::collect_candidate_pairs`] semantics.
    pub fn collect_candidate_pairs(&self, step: u32, pairs: &PairSet) {
        let (dx, dy, dz) = (
            self.dims[0] as i64,
            self.dims[1] as i64,
            self.dims[2] as i64,
        );
        (0..self.heads.len()).into_par_iter().for_each(|cell| {
            if self.heads[cell].load(Ordering::Acquire) == VALUE_EMPTY {
                return;
            }
            let z = (cell % self.dims[2]) as i64;
            let y = ((cell / self.dims[2]) % self.dims[1]) as i64;
            let x = (cell / (self.dims[1] * self.dims[2])) as i64;

            let members: Vec<u32> = self.members(cell).collect();
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    pairs.insert(CandidatePair::new(a, b, step));
                }
            }
            for &(ox, oy, oz) in &crate::neighbor::HALF_NEIGHBORHOOD {
                let (nx, ny, nz) = (x + ox, y + oy, z + oz);
                if nx < 0 || ny < 0 || nz < 0 || nx >= dx || ny >= dy || nz >= dz {
                    continue;
                }
                let ncell = ((nx * dy + ny) * dz + nz) as usize;
                if self.heads[ncell].load(Ordering::Acquire) == VALUE_EMPTY {
                    continue;
                }
                for &a in &members {
                    for b in self.members(ncell) {
                        pairs.insert(CandidatePair::new(a, b, step));
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{NeighborScan, SpatialGrid};
    use std::collections::HashSet;

    fn box_grid(capacity: usize) -> DenseGrid {
        DenseGrid::new(
            Vec3::new(-100.0, -100.0, -100.0),
            Vec3::new(200.0, 200.0, 200.0),
            10.0,
            capacity,
        )
        .unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert_eq!(
            DenseGrid::new(Vec3::ZERO, Vec3::new(-1.0, 1.0, 1.0), 1.0, 4).unwrap_err(),
            DenseGridError::BadGeometry
        );
        assert_eq!(
            DenseGrid::new(Vec3::ZERO, Vec3::new(1.0, 1.0, 1.0), 0.0, 4).unwrap_err(),
            DenseGridError::BadGeometry
        );
    }

    #[test]
    fn the_papers_full_cube_is_rejected() {
        // (85 000 km)³ at 9.8 km cells ≈ 6.5e11 cells — the exact case the
        // paper's memory argument rules out.
        let err = DenseGrid::new(
            Vec3::new(-42_500.0, -42_500.0, -42_500.0),
            Vec3::new(85_000.0, 85_000.0, 85_000.0),
            9.8,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, DenseGridError::TooLarge { .. }));
    }

    #[test]
    fn insert_and_out_of_box_accounting() {
        let g = box_grid(3);
        let outside = g.insert_all(&[
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(50.0, 50.0, 50.0),
            Vec3::new(500.0, 0.0, 0.0), // outside
        ]);
        assert_eq!(outside, 1);
    }

    #[test]
    fn matches_hash_grid_candidates_inside_the_box() {
        let mut positions = Vec::new();
        for i in 0..80u32 {
            let f = i as f64;
            positions.push(Vec3::new(
                (f * 17.3) % 180.0 - 90.0,
                (f * 31.7) % 180.0 - 90.0,
                (f * 47.9) % 180.0 - 90.0,
            ));
        }
        let dense = box_grid(positions.len());
        assert_eq!(dense.insert_all(&positions), 0);
        let dense_pairs = PairSet::with_capacity(1 << 14);
        dense.collect_candidate_pairs(0, &dense_pairs);

        let hash = SpatialGrid::new(positions.len(), 10.0);
        hash.insert_all(&positions).unwrap();
        let hash_pairs = PairSet::with_capacity(1 << 14);
        hash.collect_candidate_pairs(0, NeighborScan::Half, &hash_pairs);

        let d: HashSet<_> = dense_pairs.drain_to_vec().into_iter().collect();
        let h: HashSet<_> = hash_pairs.drain_to_vec().into_iter().collect();
        // Dense-grid cells are aligned to the box origin (-100), hash-grid
        // cells to the global origin — both are *valid* griddings, so the
        // candidate sets may differ on borderline pairs. What must agree:
        // every truly-close pair (within one cell size) appears in both.
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                if positions[i].dist(positions[j]) <= 10.0 {
                    let pair = CandidatePair::new(i as u32, j as u32, 0);
                    assert!(d.contains(&pair), "dense missed close pair {pair:?}");
                    assert!(h.contains(&pair), "hash missed close pair {pair:?}");
                }
            }
        }
    }

    #[test]
    fn reset_clears_members() {
        let g = box_grid(2);
        g.insert_all(&[Vec3::new(1.0, 1.0, 1.0), Vec3::new(2.0, 2.0, 2.0)]);
        let pairs = PairSet::with_capacity(64);
        g.collect_candidate_pairs(0, &pairs);
        assert_eq!(pairs.len(), 1);
        g.reset();
        let pairs2 = PairSet::with_capacity(64);
        g.collect_candidate_pairs(1, &pairs2);
        assert!(pairs2.is_empty());
    }

    #[test]
    fn memory_footprint_is_cells_plus_capacity() {
        let g = box_grid(100);
        assert_eq!(g.cells(), 20 * 20 * 20);
        assert_eq!(g.memory_bytes(), (8000 + 100) * 4);
    }
}
