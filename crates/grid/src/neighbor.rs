//! Neighbourhood offsets for the 3-D grid.
//!
//! A conjunction candidate may span two adjacent cells, so the detector
//! inspects the 3³ − 1 = 26 cells around each occupied cell (§III). Scanning
//! all 26 from every cell visits each unordered cell pair twice; the
//! *half neighbourhood* — the 13 offsets that are lexicographically positive
//! — visits each pair exactly once and is the default. The full set is kept
//! for the ablation benchmark (DESIGN.md §5).

/// All 26 neighbour offsets.
pub const FULL_NEIGHBORHOOD: [(i64, i64, i64); 26] = build_full();

/// The 13 lexicographically-positive offsets: `(dx, dy, dz) > (0, 0, 0)` in
/// lexicographic order. For any two adjacent cells A ≠ B, exactly one of
/// the two offsets connecting them is in this set.
pub const HALF_NEIGHBORHOOD: [(i64, i64, i64); 13] = build_half();

const fn build_full() -> [(i64, i64, i64); 26] {
    let mut out = [(0i64, 0i64, 0i64); 26];
    let mut idx = 0;
    let mut dx = -1i64;
    while dx <= 1 {
        let mut dy = -1i64;
        while dy <= 1 {
            let mut dz = -1i64;
            while dz <= 1 {
                if !(dx == 0 && dy == 0 && dz == 0) {
                    out[idx] = (dx, dy, dz);
                    idx += 1;
                }
                dz += 1;
            }
            dy += 1;
        }
        dx += 1;
    }
    out
}

const fn build_half() -> [(i64, i64, i64); 13] {
    let mut out = [(0i64, 0i64, 0i64); 13];
    let mut idx = 0;
    let mut i = 0;
    let full = build_full();
    while i < 26 {
        let (dx, dy, dz) = full[i];
        // Lexicographically positive: dx > 0, or dx == 0 && dy > 0,
        // or dx == 0 && dy == 0 && dz > 0.
        if dx > 0 || (dx == 0 && (dy > 0 || (dy == 0 && dz > 0))) {
            out[idx] = (dx, dy, dz);
            idx += 1;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn full_neighborhood_has_26_distinct_nonzero_offsets() {
        let set: HashSet<_> = FULL_NEIGHBORHOOD.iter().collect();
        assert_eq!(set.len(), 26);
        assert!(!set.contains(&(0, 0, 0)));
        for &(dx, dy, dz) in &FULL_NEIGHBORHOOD {
            assert!(dx.abs() <= 1 && dy.abs() <= 1 && dz.abs() <= 1);
        }
    }

    #[test]
    fn half_neighborhood_is_an_exact_half() {
        assert_eq!(HALF_NEIGHBORHOOD.len(), 13);
        let half: HashSet<_> = HALF_NEIGHBORHOOD.iter().copied().collect();
        assert_eq!(half.len(), 13);
        // For every full offset, exactly one of (o, −o) is in the half set.
        for &(dx, dy, dz) in &FULL_NEIGHBORHOOD {
            let fwd = half.contains(&(dx, dy, dz));
            let bwd = half.contains(&(-dx, -dy, -dz));
            assert!(fwd ^ bwd, "offset ({dx},{dy},{dz}): fwd={fwd}, bwd={bwd}");
        }
    }

    #[test]
    fn half_neighborhood_offsets_are_lexicographically_positive() {
        for &(dx, dy, dz) in &HALF_NEIGHBORHOOD {
            assert!(
                dx > 0 || (dx == 0 && (dy > 0 || (dy == 0 && dz > 0))),
                "({dx},{dy},{dz}) is not lexicographically positive"
            );
        }
    }
}
