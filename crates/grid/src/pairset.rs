//! The "conjunction hash map" (§IV-A3): an atomic set of candidate pairs.
//!
//! Whenever the grid scan finds two satellites in the same or adjacent
//! cells, the pair is recorded "employing the satellites' ids and the
//! sampling step. This helps to prevent considering possible conjunctions
//! twice (from the point of view of both satellites), however, it allows
//! multiple conjunctions at different sampling steps."
//!
//! We pack `(id_lo, id_hi, step)` into one `u64` key — 21 + 21 + 22 bits —
//! and store keys in a fixed-size CAS/linear-probing table sized by the
//! paper's Extra-P model (see `kessler-core::planner`). Packing both ids
//! *sorted* makes `(a, b)` and `(b, a)` the same key, which is exactly the
//! dedup the paper wants.

use crate::murmur::fmix64;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

const ID_BITS: u32 = 21;
const STEP_BITS: u32 = 22;

/// Maximum representable satellite id (exclusive).
pub const MAX_ID: u32 = 1 << ID_BITS;
/// Maximum representable sampling step (exclusive).
pub const MAX_STEP: u32 = 1 << STEP_BITS;

const EMPTY: u64 = u64::MAX;

/// A deduplicated candidate pair: two satellite ids and the sampling step
/// at which the grid found them adjacent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CandidatePair {
    /// Smaller satellite id.
    pub id_lo: u32,
    /// Larger satellite id.
    pub id_hi: u32,
    /// Sampling step index within the current screening batch.
    pub step: u32,
}

impl CandidatePair {
    /// Normalise and pack. `a` and `b` must be distinct and in range.
    #[inline]
    pub fn new(a: u32, b: u32, step: u32) -> CandidatePair {
        debug_assert_ne!(a, b, "a satellite cannot pair with itself");
        debug_assert!(a < MAX_ID && b < MAX_ID, "satellite id exceeds 21 bits");
        debug_assert!(step < MAX_STEP, "sampling step exceeds 22 bits");
        let (id_lo, id_hi) = if a < b { (a, b) } else { (b, a) };
        CandidatePair { id_lo, id_hi, step }
    }

    /// Pack into the set's key format. Because `id_lo < id_hi` strictly,
    /// the all-ones word (our empty sentinel) is unreachable.
    #[inline]
    pub fn pack(self) -> u64 {
        ((self.id_lo as u64) << (ID_BITS + STEP_BITS))
            | ((self.id_hi as u64) << STEP_BITS)
            | self.step as u64
    }

    /// Unpack from the key format.
    #[inline]
    pub fn unpack(key: u64) -> CandidatePair {
        CandidatePair {
            id_lo: (key >> (ID_BITS + STEP_BITS)) as u32 & (MAX_ID - 1),
            id_hi: (key >> STEP_BITS) as u32 & (MAX_ID - 1),
            step: key as u32 & (MAX_STEP - 1),
        }
    }
}

/// Fixed-size concurrent set of candidate pairs.
pub struct PairSet {
    slots: Box<[AtomicU64]>,
    mask: usize,
    len: AtomicUsize,
    /// Set when an insertion failed because the table was full; the
    /// screener surfaces this as a sizing error instead of silently
    /// dropping conjunctions.
    overflowed: AtomicUsize,
}

impl PairSet {
    /// Create a set with at least `min_capacity` slots (power-of-two
    /// rounded). The paper doubles the model-estimated size twice; that
    /// policy lives in the planner — this type just takes a capacity.
    pub fn with_capacity(min_capacity: usize) -> PairSet {
        let cap = min_capacity.max(2).next_power_of_two();
        PairSet {
            slots: (0..cap).map(|_| AtomicU64::new(EMPTY)).collect(),
            mask: cap - 1,
            len: AtomicUsize::new(0),
            overflowed: AtomicUsize::new(0),
        }
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of distinct pairs currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of insertions dropped because the table was full.
    #[inline]
    pub fn overflow_count(&self) -> usize {
        self.overflowed.load(Ordering::Acquire)
    }

    /// Insert a pair; returns `true` if it was new. Lock-free.
    ///
    /// On table overflow the insertion is counted in
    /// [`PairSet::overflow_count`] and `false` is returned.
    pub fn insert(&self, pair: CandidatePair) -> bool {
        let key = pair.pack();
        let mut slot = (fmix64(key) as usize) & self.mask;
        for _ in 0..=self.mask {
            let current = self.slots[slot].load(Ordering::Acquire);
            if current == key {
                return false;
            }
            if current == EMPTY {
                match self.slots[slot].compare_exchange(
                    EMPTY,
                    key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        self.len.fetch_add(1, Ordering::AcqRel);
                        return true;
                    }
                    Err(actual) if actual == key => return false,
                    Err(_) => {}
                }
            }
            slot = (slot + 1) & self.mask;
        }
        self.overflowed.fetch_add(1, Ordering::AcqRel);
        false
    }

    /// Membership test.
    pub fn contains(&self, pair: CandidatePair) -> bool {
        let key = pair.pack();
        let mut slot = (fmix64(key) as usize) & self.mask;
        for _ in 0..=self.mask {
            let current = self.slots[slot].load(Ordering::Acquire);
            if current == key {
                return true;
            }
            if current == EMPTY {
                return false;
            }
            slot = (slot + 1) & self.mask;
        }
        false
    }

    /// Snapshot all pairs (unordered). Intended to run after the parallel
    /// detection phase has completed.
    pub fn drain_to_vec(&self) -> Vec<CandidatePair> {
        let mut out = Vec::with_capacity(self.len());
        for s in self.slots.iter() {
            let key = s.load(Ordering::Acquire);
            if key != EMPTY {
                out.push(CandidatePair::unpack(key));
            }
        }
        out
    }

    /// Reset to empty for the next batch (parallel refill).
    pub fn reset(&self) {
        use rayon::prelude::*;
        self.slots
            .par_iter()
            .for_each(|s| s.store(EMPTY, Ordering::Relaxed));
        self.len.store(0, Ordering::Release);
        self.overflowed.store(0, Ordering::Release);
        std::sync::atomic::fence(Ordering::Release);
    }

    /// Resident size in bytes (the paper's `g_ch = c · 16 B` accounting
    /// counts key + auxiliary word; ours is a packed 8 B key per slot).
    pub fn memory_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<AtomicU64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn pack_unpack_round_trip() {
        let p = CandidatePair::new(12, 99_999, 1234);
        assert_eq!(CandidatePair::unpack(p.pack()), p);
        let extreme = CandidatePair::new(MAX_ID - 2, MAX_ID - 1, MAX_STEP - 1);
        assert_eq!(CandidatePair::unpack(extreme.pack()), extreme);
    }

    #[test]
    fn pair_order_is_normalised() {
        assert_eq!(CandidatePair::new(5, 3, 0), CandidatePair::new(3, 5, 0));
        assert_eq!(
            CandidatePair::new(5, 3, 7).pack(),
            CandidatePair::new(3, 5, 7).pack()
        );
    }

    #[test]
    fn packed_key_never_hits_sentinel() {
        // The all-ones key would need id_lo == id_hi == MAX-1, which the
        // strict ordering forbids.
        let worst = CandidatePair::new(MAX_ID - 2, MAX_ID - 1, MAX_STEP - 1);
        assert_ne!(worst.pack(), u64::MAX);
    }

    #[test]
    fn insert_deduplicates_both_orientations() {
        let set = PairSet::with_capacity(64);
        assert!(set.insert(CandidatePair::new(1, 2, 0)));
        assert!(!set.insert(CandidatePair::new(2, 1, 0)));
        assert_eq!(set.len(), 1);
        // A different step is a different entry (the paper allows multiple
        // conjunctions of the same pair at different steps).
        assert!(set.insert(CandidatePair::new(1, 2, 1)));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn contains_and_drain_agree() {
        let set = PairSet::with_capacity(128);
        let pairs = [
            CandidatePair::new(1, 2, 0),
            CandidatePair::new(3, 4, 2),
            CandidatePair::new(1, 4, 9),
        ];
        for &p in &pairs {
            set.insert(p);
        }
        for &p in &pairs {
            assert!(set.contains(p));
        }
        assert!(!set.contains(CandidatePair::new(9, 10, 0)));
        let drained: HashSet<_> = set.drain_to_vec().into_iter().collect();
        assert_eq!(drained, pairs.iter().copied().collect());
    }

    #[test]
    fn overflow_is_counted_not_silent() {
        let set = PairSet::with_capacity(4);
        let mut inserted = 0;
        for i in 0..16u32 {
            if set.insert(CandidatePair::new(i, i + 100, 0)) {
                inserted += 1;
            }
        }
        assert_eq!(inserted, 4);
        assert_eq!(set.len(), 4);
        assert_eq!(set.overflow_count(), 12);
    }

    #[test]
    fn reset_clears_everything() {
        let set = PairSet::with_capacity(32);
        set.insert(CandidatePair::new(1, 2, 0));
        set.reset();
        assert_eq!(set.len(), 0);
        assert!(set.drain_to_vec().is_empty());
        assert_eq!(set.overflow_count(), 0);
    }

    #[test]
    fn concurrent_inserts_count_exactly_once_per_distinct_pair() {
        let set = PairSet::with_capacity(4096);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let set = &set;
                scope.spawn(move || {
                    // Every thread inserts the same 500 pairs, in both
                    // orientations.
                    for i in 0..500u32 {
                        set.insert(CandidatePair::new(i, i + 1, 3));
                        set.insert(CandidatePair::new(i + 1, i, 3));
                    }
                });
            }
        });
        assert_eq!(set.len(), 500);
        assert_eq!(set.drain_to_vec().len(), 500);
    }

    proptest! {
        #[test]
        fn matches_hashset_model(
            raw in proptest::collection::vec((0u32..500, 0u32..500, 0u32..16), 1..300)
        ) {
            let set = PairSet::with_capacity(1024);
            let mut model = HashSet::new();
            for (a, b, step) in raw {
                if a == b { continue; }
                let p = CandidatePair::new(a, b, step);
                let fresh = set.insert(p);
                prop_assert_eq!(fresh, model.insert(p));
            }
            prop_assert_eq!(set.len(), model.len());
            let drained: HashSet<_> = set.drain_to_vec().into_iter().collect();
            prop_assert_eq!(drained, model);
        }

        #[test]
        fn pack_is_injective(
            a in (0u32..MAX_ID - 1, 0u32..MAX_ID - 1, 0u32..MAX_STEP),
            b in (0u32..MAX_ID - 1, 0u32..MAX_ID - 1, 0u32..MAX_STEP),
        ) {
            prop_assume!(a.0 != a.1 && b.0 != b.1);
            let pa = CandidatePair::new(a.0, a.1, a.2);
            let pb = CandidatePair::new(b.0, b.1, b.2);
            if pa != pb {
                prop_assert_ne!(pa.pack(), pb.pack());
            }
        }
    }
}
