//! Fixed-size, non-blocking atomic hash map (§IV-A1/2 of the paper).
//!
//! Each slot is a pair of an `AtomicU64` key and an `AtomicU32` value.
//! Insertion claims a slot with a single compare-and-swap on the key word;
//! linear probing resolves hash collisions; `u64::MAX` marks an empty slot
//! ("as a memory location can never be truly empty, we use the maximum of a
//! 64-bit value as a unique value that indicates an empty slot"). There is
//! no deletion — the paper's grids are bulk-reset between sampling steps
//! instead, which [`AtomicMap::reset`] implements as a parallel refill.
//!
//! # Concurrency contract
//!
//! * `insert_or_get` is **lock-free**: a CAS failure means another thread
//!   made progress (claimed the slot), and probing continues.
//! * Readers (`lookup`, iteration) are wait-free; they observe a slot as
//!   occupied only after the key CAS has published it. The *value* word is
//!   updated by the caller after claiming; value readers must tolerate the
//!   initial sentinel (`VALUE_EMPTY`), which the grid's list-push protocol
//!   does by construction (a CAS loop on the value word).
//!
//! Capacity is rounded up to a power of two so the hash → slot reduction is
//! a mask rather than a modulo; with the paper's "twice the number of
//! satellites" sizing rule the load factor stays ≤ 0.5 and expected probe
//! chains are O(1).

use crate::cellkey::EMPTY_KEY;
use crate::murmur::fmix64;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Sentinel for "value not yet written" (also used as the empty list head).
pub const VALUE_EMPTY: u32 = u32::MAX;

/// Outcome of an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was not present; this call claimed the slot.
    Claimed(usize),
    /// The key was already present at the slot.
    Found(usize),
}

impl InsertOutcome {
    #[inline]
    pub fn slot(self) -> usize {
        match self {
            InsertOutcome::Claimed(s) | InsertOutcome::Found(s) => s,
        }
    }
}

/// Error raised when the fixed-size table has no free slot on the key's
/// probe path (the table is full).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapFull;

impl std::fmt::Display for MapFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "atomic hash map is full (fixed-size table exhausted)")
    }
}

impl std::error::Error for MapFull {}

/// The fixed-size CAS/linear-probing hash map.
pub struct AtomicMap {
    keys: Box<[AtomicU64]>,
    values: Box<[AtomicU32]>,
    mask: usize,
}

impl AtomicMap {
    /// Create a map with at least `min_capacity` slots (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(min_capacity: usize) -> AtomicMap {
        let cap = min_capacity.max(2).next_power_of_two();
        let keys: Box<[AtomicU64]> = (0..cap).map(|_| AtomicU64::new(EMPTY_KEY)).collect();
        let values: Box<[AtomicU32]> = (0..cap).map(|_| AtomicU32::new(VALUE_EMPTY)).collect();
        AtomicMap {
            keys,
            values,
            mask: cap - 1,
        }
    }

    /// Total slot count.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Home slot of a key.
    #[inline]
    fn home(&self, key: u64) -> usize {
        (fmix64(key) as usize) & self.mask
    }

    /// Insert `key` or find its existing slot.
    ///
    /// Lock-free; returns [`MapFull`] only when every slot on the probe
    /// path is occupied by other keys, i.e. the table has reached capacity.
    pub fn insert_or_get(&self, key: u64) -> Result<InsertOutcome, MapFull> {
        debug_assert_ne!(key, EMPTY_KEY, "the sentinel cannot be used as a key");
        let mut slot = self.home(key);
        for _ in 0..=self.mask {
            let current = self.keys[slot].load(Ordering::Acquire);
            if current == key {
                return Ok(InsertOutcome::Found(slot));
            }
            if current == EMPTY_KEY {
                match self.keys[slot].compare_exchange(
                    EMPTY_KEY,
                    key,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Ok(InsertOutcome::Claimed(slot)),
                    Err(actual) => {
                        // Lost the race. The winner may have inserted our
                        // key — re-check before probing on.
                        if actual == key {
                            return Ok(InsertOutcome::Found(slot));
                        }
                        // Another key claimed the slot: fall through to
                        // linear probing (Eq. 2: s_{i+1} = s_i + 1 mod M).
                    }
                }
            }
            slot = (slot + 1) & self.mask;
        }
        Err(MapFull)
    }

    /// Find the slot of `key` without inserting. Wait-free.
    pub fn lookup(&self, key: u64) -> Option<usize> {
        let mut slot = self.home(key);
        for _ in 0..=self.mask {
            let current = self.keys[slot].load(Ordering::Acquire);
            if current == key {
                return Some(slot);
            }
            if current == EMPTY_KEY {
                // Probe chains never skip an empty slot (no deletion), so
                // an empty slot terminates the search.
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
        None
    }

    /// Key stored at `slot`, or `None` for an empty slot.
    #[inline]
    pub fn key_at(&self, slot: usize) -> Option<u64> {
        let k = self.keys[slot].load(Ordering::Acquire);
        (k != EMPTY_KEY).then_some(k)
    }

    /// Load the value word at `slot`.
    #[inline]
    pub fn value_at(&self, slot: usize) -> u32 {
        self.values[slot].load(Ordering::Acquire)
    }

    /// Atomic access to the value word for CAS protocols (list push).
    #[inline]
    pub fn value_atomic(&self, slot: usize) -> &AtomicU32 {
        &self.values[slot]
    }

    /// Number of occupied slots (linear scan; diagnostics only).
    pub fn occupied(&self) -> usize {
        self.keys
            .iter()
            .filter(|k| k.load(Ordering::Relaxed) != EMPTY_KEY)
            .count()
    }

    /// Bulk-reset every slot to empty (parallel). This is the paper's
    /// "initialise the entire memory area with the sentinel" step, reused
    /// between sampling rounds instead of reallocating.
    pub fn reset(&self) {
        self.keys
            .par_iter()
            .zip(self.values.par_iter())
            .for_each(|(k, v)| {
                k.store(EMPTY_KEY, Ordering::Relaxed);
                v.store(VALUE_EMPTY, Ordering::Relaxed);
            });
        // Publish the cleared state to all subsequent readers.
        std::sync::atomic::fence(Ordering::Release);
    }

    /// Indices of all occupied slots (parallel collect).
    pub fn occupied_slots(&self) -> Vec<usize> {
        (0..self.capacity())
            .into_par_iter()
            .filter(|&s| self.keys[s].load(Ordering::Acquire) != EMPTY_KEY)
            .collect()
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.capacity() * (std::mem::size_of::<AtomicU64>() + std::mem::size_of::<AtomicU32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(AtomicMap::with_capacity(0).capacity(), 2);
        assert_eq!(AtomicMap::with_capacity(3).capacity(), 4);
        assert_eq!(AtomicMap::with_capacity(1000).capacity(), 1024);
        assert_eq!(AtomicMap::with_capacity(1024).capacity(), 1024);
    }

    #[test]
    fn insert_then_lookup() {
        let map = AtomicMap::with_capacity(16);
        let outcome = map.insert_or_get(42).unwrap();
        assert!(matches!(outcome, InsertOutcome::Claimed(_)));
        assert_eq!(map.lookup(42), Some(outcome.slot()));
        assert_eq!(map.lookup(43), None);
    }

    #[test]
    fn duplicate_insert_finds_existing_slot() {
        let map = AtomicMap::with_capacity(16);
        let first = map.insert_or_get(7).unwrap();
        let second = map.insert_or_get(7).unwrap();
        assert!(matches!(second, InsertOutcome::Found(_)));
        assert_eq!(first.slot(), second.slot());
        assert_eq!(map.occupied(), 1);
    }

    #[test]
    fn linear_probing_resolves_collisions() {
        // Fill a tiny map completely; all keys must be retrievable even
        // though most collide after masking.
        let map = AtomicMap::with_capacity(8);
        let keys: Vec<u64> = (0..8).map(|i| i * 1_000_003 + 1).collect();
        let mut slots = Vec::new();
        for &k in &keys {
            slots.push(map.insert_or_get(k).unwrap().slot());
        }
        // All distinct slots.
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        for (&k, &s) in keys.iter().zip(&slots) {
            assert_eq!(map.lookup(k), Some(s));
        }
    }

    #[test]
    fn full_map_reports_map_full() {
        let map = AtomicMap::with_capacity(4);
        for k in 1..=4u64 {
            map.insert_or_get(k).unwrap();
        }
        assert_eq!(map.insert_or_get(99).unwrap_err(), MapFull);
        // Existing keys still insertable (found).
        assert!(matches!(map.insert_or_get(2), Ok(InsertOutcome::Found(_))));
    }

    #[test]
    fn reset_empties_the_map() {
        let map = AtomicMap::with_capacity(32);
        for k in 1..20u64 {
            map.insert_or_get(k).unwrap();
        }
        assert_eq!(map.occupied(), 19);
        map.reset();
        assert_eq!(map.occupied(), 0);
        assert_eq!(map.lookup(5), None);
        // Reusable after reset.
        map.insert_or_get(5).unwrap();
        assert_eq!(map.occupied(), 1);
    }

    #[test]
    fn occupied_slots_match_occupancy() {
        let map = AtomicMap::with_capacity(64);
        for k in 1..=10u64 {
            map.insert_or_get(k * 17).unwrap();
        }
        let slots = map.occupied_slots();
        assert_eq!(slots.len(), 10);
        for s in slots {
            assert!(map.key_at(s).is_some());
        }
    }

    #[test]
    fn concurrent_insertion_of_distinct_keys_is_lossless() {
        // The core lock-freedom claim: N threads hammering the same table
        // with disjoint key ranges lose nothing and create no duplicates.
        let map = AtomicMap::with_capacity(4096);
        let claimed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let map = &map;
                let claimed = &claimed;
                scope.spawn(move || {
                    for i in 0..256u64 {
                        let key = t * 1_000 + i + 1;
                        if let InsertOutcome::Claimed(_) = map.insert_or_get(key).unwrap() {
                            claimed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(claimed.load(Ordering::Relaxed), 8 * 256);
        assert_eq!(map.occupied(), 8 * 256);
        for t in 0..8u64 {
            for i in 0..256u64 {
                assert!(map.lookup(t * 1_000 + i + 1).is_some());
            }
        }
    }

    #[test]
    fn concurrent_insertion_of_the_same_key_claims_exactly_once() {
        // All threads race on an identical key set; each key must be
        // claimed exactly once in total.
        let map = AtomicMap::with_capacity(1024);
        let claims = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let map = &map;
                let claims = &claims;
                scope.spawn(move || {
                    for key in 1..=100u64 {
                        if let InsertOutcome::Claimed(_) = map.insert_or_get(key).unwrap() {
                            claims.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(claims.load(Ordering::Relaxed), 100);
        assert_eq!(map.occupied(), 100);
    }

    #[test]
    fn value_word_supports_cas_protocols() {
        let map = AtomicMap::with_capacity(8);
        let slot = map.insert_or_get(11).unwrap().slot();
        assert_eq!(map.value_at(slot), VALUE_EMPTY);
        map.value_atomic(slot)
            .compare_exchange(VALUE_EMPTY, 5, Ordering::AcqRel, Ordering::Acquire)
            .unwrap();
        assert_eq!(map.value_at(slot), 5);
    }

    proptest! {
        /// Sequential model check: the atomic map must behave like a
        /// HashSet for any insertion sequence that fits.
        #[test]
        fn behaves_like_a_set(keys in proptest::collection::vec(0u64..1_000, 1..200)) {
            let map = AtomicMap::with_capacity(1024);
            let mut model = std::collections::HashSet::new();
            for &k in &keys {
                let outcome = map.insert_or_get(k + 1).unwrap();
                let fresh = model.insert(k + 1);
                prop_assert_eq!(matches!(outcome, InsertOutcome::Claimed(_)), fresh);
            }
            prop_assert_eq!(map.occupied(), model.len());
            for &k in &model {
                prop_assert!(map.lookup(k).is_some());
            }
        }
    }
}
