//! Lock-free spatial-grid substrate for the `kessler` workspace.
//!
//! This crate is the data-structure heart of the paper (§III-A, §IV-A):
//!
//! * [`murmur`] — MurmurHash3, the hash the paper uses to map grid-cell
//!   keys to hash-map slots.
//! * [`cellkey`] — packing of signed 3-D cell coordinates into a single
//!   `u64` key (with `u64::MAX` reserved as the empty-slot sentinel).
//! * [`atomic_map`] — a fixed-size, open-addressing hash map with CAS
//!   insertion and linear probing; every slot is an (`AtomicU64` key,
//!   `AtomicU32` value) pair and the whole structure is wait-free for
//!   readers and lock-free for writers.
//! * [`grid`] — the spatial grid itself: per-cell singly-linked lists of
//!   satellites threaded through a pre-allocated arena (one entry per
//!   satellite, exactly as in Fig. 6 of the paper), parallel insertion and
//!   parallel candidate-pair extraction over 26-cell neighbourhoods.
//! * [`pairset`] — the "conjunction hash map": an atomic set of packed
//!   `(id_lo, id_hi, step)` keys that deduplicates candidate pairs found
//!   from the perspective of both satellites.
//! * [`neighbor`] — the 26-cell neighbourhood offsets and the 13-offset
//!   half neighbourhood used to visit each unordered cell pair once.
//! * [`dense`] — the dense 3-D array grid the paper rejects for the full
//!   simulation cube (§IV-A), kept as a measured ablation and for small
//!   dense volumes.

pub mod atomic_map;
pub mod cellkey;
pub mod dense;
pub mod grid;
pub mod murmur;
pub mod neighbor;
pub mod pairset;

pub use atomic_map::AtomicMap;
pub use cellkey::CellKey;
pub use dense::DenseGrid;
pub use grid::SpatialGrid;
pub use pairset::{CandidatePair, PairSet};
