//! MurmurHash3 (Austin Appleby, public domain algorithm), implemented from
//! the reference `smhasher` description.
//!
//! The paper uses "the fast MurMur3 hash for calculating the position of a
//! grid cell" (§IV-A1). Grid-cell keys are single `u64`s, for which the
//! 64-bit finaliser `fmix64` — the avalanche core of MurmurHash3 — is the
//! exact-width fast path; the full x64/128-bit variant is provided for
//! arbitrary byte strings (used by tests and available to downstream users
//! hashing richer keys).

/// MurmurHash3's 64-bit finaliser (`fmix64`).
///
/// Full-avalanche mixing: every input bit affects every output bit with
/// probability ~1/2. This is the per-key hash used for grid-cell slots.
#[inline]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// Hash a cell key with an additional seed (used to derive independent
/// probe sequences in tests and ablations).
#[inline]
pub fn hash_u64(key: u64, seed: u64) -> u64 {
    fmix64(key ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// MurmurHash3 x64 128-bit for arbitrary byte strings.
///
/// Returns the two 64-bit halves `(h1, h2)`.
pub fn murmur3_x64_128(data: &[u8], seed: u32) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let nblocks = data.len() / 16;
    let mut h1 = seed as u64;
    let mut h2 = seed as u64;

    // Body: 16-byte blocks.
    for i in 0..nblocks {
        let b = &data[i * 16..i * 16 + 16];
        let mut k1 = u64::from_le_bytes(b[0..8].try_into().unwrap());
        let mut k2 = u64::from_le_bytes(b[8..16].try_into().unwrap());

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    // Tail: up to 15 remaining bytes.
    let tail = &data[nblocks * 16..];
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    for (i, &byte) in tail.iter().enumerate() {
        if i < 8 {
            k1 |= (byte as u64) << (8 * i);
        } else {
            k2 |= (byte as u64) << (8 * (i - 8));
        }
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    // Finalisation.
    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn fmix64_matches_reference_vectors() {
        // fmix64(0) = 0 is a fixed point of the canonical smhasher fmix64.
        assert_eq!(fmix64(0), 0);
        // fmix64 is a bijection; distinct inputs may never collide.
        assert_ne!(fmix64(1), fmix64(2));
        assert_ne!(fmix64(u64::MAX), fmix64(u64::MAX - 1));
    }

    #[test]
    fn murmur128_known_answer_empty() {
        // Reference: MurmurHash3_x64_128("", seed=0) = 0x00000000…00 (both
        // halves zero).
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn murmur128_known_answer_strings() {
        // Cross-checked against the published mmh3 reference digest for
        // "foo" (6145f501578671e2877dba2be487af7e, little-endian h1‖h2).
        let (h1, h2) = murmur3_x64_128(b"foo", 0);
        let mut digest = [0u8; 16];
        digest[..8].copy_from_slice(&h1.to_le_bytes());
        digest[8..].copy_from_slice(&h2.to_le_bytes());
        let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, "6145f501578671e2877dba2be487af7e");

        let (h1, h2) = murmur3_x64_128(b"The quick brown fox jumps over the lazy dog", 0);
        assert_eq!(h1, 0xe34b_bc7b_bc07_1b6c, "h1 = {h1:#x}");
        assert_eq!(h2, 0x7a43_3ca9_c49a_9347, "h2 = {h2:#x}");
    }

    #[test]
    fn murmur128_seed_changes_output() {
        let a = murmur3_x64_128(b"satellite", 0);
        let b = murmur3_x64_128(b"satellite", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn fmix64_avalanche_quality() {
        // Flipping one input bit should flip ~32 of the 64 output bits.
        let base = fmix64(0x0123_4567_89ab_cdef);
        let mut total_flips = 0u32;
        for bit in 0..64 {
            let flipped = fmix64(0x0123_4567_89ab_cdef ^ (1u64 << bit));
            total_flips += (base ^ flipped).count_ones();
        }
        let avg = total_flips as f64 / 64.0;
        assert!((avg - 32.0).abs() < 4.0, "avg flips = {avg}");
    }

    #[test]
    fn dense_cell_keys_spread_across_slots() {
        // The whole point of hashing cell keys: consecutive cells must not
        // map to consecutive slots. Simulate a 16×16×16 block of cells and
        // check slot occupancy in a 8192-slot table is well spread.
        let slots = 8192u64;
        let mut used = HashSet::new();
        for x in 0..16u64 {
            for y in 0..16u64 {
                for z in 0..16u64 {
                    let key = (x << 42) | (y << 21) | z;
                    used.insert(fmix64(key) % slots);
                }
            }
        }
        // 4096 keys into 8192 slots: expect ≥ ~3100 distinct slots
        // (birthday-problem expectation ≈ 8192·(1−e^(−0.5)) ≈ 3223).
        assert!(used.len() > 3000, "only {} distinct slots", used.len());
    }

    proptest! {
        #[test]
        fn fmix64_is_injective_on_samples(a in any::<u64>(), b in any::<u64>()) {
            // fmix64 is bijective; distinct inputs hash differently.
            prop_assume!(a != b);
            prop_assert_ne!(fmix64(a), fmix64(b));
        }

        #[test]
        fn murmur128_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..64),
                                      seed in any::<u32>()) {
            prop_assert_eq!(murmur3_x64_128(&data, seed), murmur3_x64_128(&data, seed));
        }

        #[test]
        fn murmur128_tail_bytes_matter(data in proptest::collection::vec(any::<u8>(), 1..40)) {
            // Changing the last byte must change the hash.
            let mut altered = data.clone();
            *altered.last_mut().unwrap() = altered.last().unwrap().wrapping_add(1);
            prop_assert_ne!(murmur3_x64_128(&data, 7), murmur3_x64_128(&altered, 7));
        }
    }
}
