//! Walker-delta constellation generator.
//!
//! The paper's introduction motivates the screening problem with
//! mega-constellations (Starlink, OneWeb); the examples use this generator
//! to build realistic shells: `total` satellites in `planes` orbital
//! planes at a common altitude and inclination, with the Walker phasing
//! parameter distributing in-plane offsets between planes.

use kessler_orbits::constants::R_EARTH;
use kessler_orbits::KeplerElements;
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// A Walker-delta shell `i : total / planes / phasing`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WalkerShell {
    /// Shell altitude above the mean Earth radius, km.
    pub altitude_km: f64,
    /// Inclination, radians.
    pub inclination: f64,
    /// Total satellite count.
    pub total: usize,
    /// Number of equally-spaced orbital planes (must divide `total`).
    pub planes: usize,
    /// Walker phasing parameter `F` in `0..planes`.
    pub phasing: usize,
}

impl WalkerShell {
    /// Starlink-like shell: 550 km, 53°.
    pub fn starlink_like(total: usize, planes: usize) -> WalkerShell {
        WalkerShell {
            altitude_km: 550.0,
            inclination: 53f64.to_radians(),
            total,
            planes,
            phasing: 1,
        }
    }

    /// Generate the element set.
    ///
    /// # Panics
    /// Panics if `planes` is zero or does not divide `total`.
    pub fn generate(&self) -> Vec<KeplerElements> {
        assert!(self.planes > 0, "a shell needs at least one plane");
        assert!(
            self.total.is_multiple_of(self.planes),
            "planes ({}) must divide total ({})",
            self.planes,
            self.total
        );
        let per_plane = self.total / self.planes;
        let a = R_EARTH + self.altitude_km;
        let mut out = Vec::with_capacity(self.total);
        for plane in 0..self.planes {
            let raan = TAU * plane as f64 / self.planes as f64;
            // Walker phasing: plane p's satellites are offset in anomaly by
            // p·F·2π/total.
            let phase_offset = TAU * (plane * self.phasing) as f64 / self.total as f64;
            for slot in 0..per_plane {
                let mean_anomaly = TAU * slot as f64 / per_plane as f64 + phase_offset;
                out.push(
                    KeplerElements::new(a, 0.0001, self.inclination, raan, 0.0, mean_anomaly)
                        .expect("walker elements are valid"),
                );
            }
        }
        out
    }
}

/// The fixed shell ladder behind [`synthetic_constellation`]:
/// `(altitude km, inclination deg, weight)`. The altitudes span the LEO
/// regimes mega-constellations actually occupy — VLEO imaging orbits up
/// through the 1100–1400 km broadband shells and sparse upper-LEO relay
/// layers — and the inclinations mix mid-latitude, sun-synchronous and
/// near-polar planes so the population spreads across both the altitude
/// bands and the |z| shells of a regime-sharded catalog.
const SYNTHETIC_SHELLS: &[(f64, f64, usize)] = &[
    (350.0, 40.0, 6),
    (450.0, 97.2, 8),
    (550.0, 53.0, 24),
    (620.0, 97.8, 10),
    (780.0, 86.4, 12),
    (900.0, 45.0, 8),
    (1_100.0, 53.2, 14),
    (1_200.0, 87.9, 10),
    (1_400.0, 30.0, 6),
    (1_800.0, 63.4, 4),
    (2_200.0, 52.0, 3),
];

/// Deterministic synthetic mega-constellation: exactly `n` satellites
/// spread over the [`SYNTHETIC_SHELLS`] ladder in proportion to each
/// shell's weight, Walker-style within a shell (equally-spaced planes,
/// phased in-plane slots), with a small seeded jitter on altitude,
/// eccentricity and the angles so no two satellites are exactly
/// coincident and apsis ranges genuinely straddle band edges.
///
/// This is the population the `exp_scale` experiment ingests at the
/// million-satellite mark; unlike [`WalkerShell::generate`] it accepts
/// any `n` (plane counts are derived, never required to divide `n`).
pub fn synthetic_constellation(n: usize, seed: u64) -> Vec<KeplerElements> {
    let total_weight: usize = SYNTHETIC_SHELLS.iter().map(|(_, _, w)| w).sum();
    // Largest-remainder apportionment: exact integer counts summing to n.
    let mut counts: Vec<usize> = SYNTHETIC_SHELLS
        .iter()
        .map(|(_, _, w)| n * w / total_weight)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    let shells = counts.len();
    let mut k = 0;
    while assigned < n {
        counts[k % shells] += 1;
        assigned += 1;
        k += 1;
    }

    // splitmix64: cheap, seedable, and good enough for jitter.
    let mut rng_state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next_unit = move || {
        rng_state = rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };

    let mut out = Vec::with_capacity(n);
    for (shell, count) in SYNTHETIC_SHELLS.iter().zip(&counts) {
        let &(altitude_km, incl_deg, _) = shell;
        let count = *count;
        if count == 0 {
            continue;
        }
        let planes = (count as f64).sqrt().ceil() as usize;
        let slots = count.div_ceil(planes);
        for j in 0..count {
            let plane = j % planes;
            let slot = j / planes;
            let raan = TAU * plane as f64 / planes as f64 + (next_unit() - 0.5) * 2e-3;
            let mean_anomaly = TAU * (slot as f64 + plane as f64 / planes as f64) / slots as f64
                + (next_unit() - 0.5) * 2e-3;
            let a = R_EARTH + altitude_km + (next_unit() - 0.5) * 4.0;
            let e = 1e-4 + next_unit() * 3e-3;
            out.push(
                KeplerElements::new(
                    a,
                    e,
                    incl_deg.to_radians(),
                    raan,
                    next_unit() * TAU,
                    mean_anomaly,
                )
                .expect("synthetic shell elements are valid"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_total_satellites() {
        let shell = WalkerShell::starlink_like(60, 6);
        assert_eq!(shell.generate().len(), 60);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_plane_count() {
        WalkerShell::starlink_like(61, 6).generate();
    }

    #[test]
    fn planes_are_equally_spaced_in_raan() {
        let shell = WalkerShell::starlink_like(40, 8);
        let els = shell.generate();
        let mut raans: Vec<f64> = els.iter().map(|e| e.raan).collect();
        raans.sort_by(f64::total_cmp);
        raans.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        assert_eq!(raans.len(), 8);
        for (k, r) in raans.iter().enumerate() {
            assert!((r - TAU * k as f64 / 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn in_plane_satellites_are_equally_phased() {
        let shell = WalkerShell::starlink_like(20, 2);
        let els = shell.generate();
        let plane0: Vec<_> = els.iter().filter(|e| e.raan < 1e-9).collect();
        assert_eq!(plane0.len(), 10);
        let mut anomalies: Vec<f64> = plane0.iter().map(|e| e.mean_anomaly).collect();
        anomalies.sort_by(f64::total_cmp);
        for w in anomalies.windows(2) {
            assert!((w[1] - w[0] - TAU / 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn all_satellites_share_the_shell_geometry() {
        let shell = WalkerShell::starlink_like(30, 3);
        for el in shell.generate() {
            assert!((el.semi_major_axis - (R_EARTH + 550.0)).abs() < 1e-9);
            assert!((el.inclination - 53f64.to_radians()).abs() < 1e-12);
        }
    }

    #[test]
    fn synthetic_constellation_is_exact_on_count_for_awkward_sizes() {
        for n in [0, 1, 7, 97, 1_000, 12_345] {
            assert_eq!(synthetic_constellation(n, 42).len(), n, "n = {n}");
        }
    }

    #[test]
    fn synthetic_constellation_elements_are_valid_orbits() {
        for el in synthetic_constellation(5_000, 7) {
            // KeplerElements::new already enforced finiteness, e ∈ [0, 1)
            // and i ∈ [0, π]; on top of that every perigee must clear the
            // atmosphere and stay inside the shell ladder's span.
            let perigee = el.semi_major_axis * (1.0 - el.eccentricity);
            let apogee = el.semi_major_axis * (1.0 + el.eccentricity);
            assert!(perigee > R_EARTH + 250.0, "perigee too low: {perigee}");
            assert!(apogee < R_EARTH + 2_300.0, "apogee too high: {apogee}");
            assert!(el.eccentricity < 0.01, "shells are near-circular");
        }
    }

    #[test]
    fn synthetic_constellation_covers_every_shell() {
        let els = synthetic_constellation(2_000, 11);
        for &(altitude_km, incl_deg, _) in SYNTHETIC_SHELLS {
            let hit = els.iter().any(|el| {
                (el.semi_major_axis - (R_EARTH + altitude_km)).abs() < 10.0
                    && (el.inclination - incl_deg.to_radians()).abs() < 1e-9
            });
            assert!(hit, "shell at {altitude_km} km / {incl_deg}° unpopulated");
        }
        // Plane spread inside the dominant shell: many distinct RAAN
        // clusters, not a single string-of-pearls plane.
        let dominant: Vec<f64> = els
            .iter()
            .filter(|el| (el.semi_major_axis - (R_EARTH + 550.0)).abs() < 10.0)
            .map(|el| el.raan)
            .collect();
        assert!(dominant.len() > 100);
        let mut raans = dominant.clone();
        raans.sort_by(f64::total_cmp);
        raans.dedup_by(|a, b| (*a - *b).abs() < 0.05);
        assert!(raans.len() >= 8, "only {} RAAN planes", raans.len());
    }

    #[test]
    fn synthetic_constellation_is_deterministic_per_seed() {
        let a = synthetic_constellation(500, 1);
        let b = synthetic_constellation(500, 1);
        let c = synthetic_constellation(500, 2);
        assert_eq!(a, b, "same seed must reproduce the same catalog");
        assert_ne!(a, c, "different seeds must jitter differently");
    }
}
