//! Walker-delta constellation generator.
//!
//! The paper's introduction motivates the screening problem with
//! mega-constellations (Starlink, OneWeb); the examples use this generator
//! to build realistic shells: `total` satellites in `planes` orbital
//! planes at a common altitude and inclination, with the Walker phasing
//! parameter distributing in-plane offsets between planes.

use kessler_orbits::constants::R_EARTH;
use kessler_orbits::KeplerElements;
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// A Walker-delta shell `i : total / planes / phasing`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WalkerShell {
    /// Shell altitude above the mean Earth radius, km.
    pub altitude_km: f64,
    /// Inclination, radians.
    pub inclination: f64,
    /// Total satellite count.
    pub total: usize,
    /// Number of equally-spaced orbital planes (must divide `total`).
    pub planes: usize,
    /// Walker phasing parameter `F` in `0..planes`.
    pub phasing: usize,
}

impl WalkerShell {
    /// Starlink-like shell: 550 km, 53°.
    pub fn starlink_like(total: usize, planes: usize) -> WalkerShell {
        WalkerShell {
            altitude_km: 550.0,
            inclination: 53f64.to_radians(),
            total,
            planes,
            phasing: 1,
        }
    }

    /// Generate the element set.
    ///
    /// # Panics
    /// Panics if `planes` is zero or does not divide `total`.
    pub fn generate(&self) -> Vec<KeplerElements> {
        assert!(self.planes > 0, "a shell needs at least one plane");
        assert!(
            self.total.is_multiple_of(self.planes),
            "planes ({}) must divide total ({})",
            self.planes,
            self.total
        );
        let per_plane = self.total / self.planes;
        let a = R_EARTH + self.altitude_km;
        let mut out = Vec::with_capacity(self.total);
        for plane in 0..self.planes {
            let raan = TAU * plane as f64 / self.planes as f64;
            // Walker phasing: plane p's satellites are offset in anomaly by
            // p·F·2π/total.
            let phase_offset = TAU * (plane * self.phasing) as f64 / self.total as f64;
            for slot in 0..per_plane {
                let mean_anomaly = TAU * slot as f64 / per_plane as f64 + phase_offset;
                out.push(
                    KeplerElements::new(a, 0.0001, self.inclination, raan, 0.0, mean_anomaly)
                        .expect("walker elements are valid"),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_total_satellites() {
        let shell = WalkerShell::starlink_like(60, 6);
        assert_eq!(shell.generate().len(), 60);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible_plane_count() {
        WalkerShell::starlink_like(61, 6).generate();
    }

    #[test]
    fn planes_are_equally_spaced_in_raan() {
        let shell = WalkerShell::starlink_like(40, 8);
        let els = shell.generate();
        let mut raans: Vec<f64> = els.iter().map(|e| e.raan).collect();
        raans.sort_by(f64::total_cmp);
        raans.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        assert_eq!(raans.len(), 8);
        for (k, r) in raans.iter().enumerate() {
            assert!((r - TAU * k as f64 / 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn in_plane_satellites_are_equally_phased() {
        let shell = WalkerShell::starlink_like(20, 2);
        let els = shell.generate();
        let plane0: Vec<_> = els.iter().filter(|e| e.raan < 1e-9).collect();
        assert_eq!(plane0.len(), 10);
        let mut anomalies: Vec<f64> = plane0.iter().map(|e| e.mean_anomaly).collect();
        anomalies.sort_by(f64::total_cmp);
        for w in anomalies.windows(2) {
            assert!((w[1] - w[0] - TAU / 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn all_satellites_share_the_shell_geometry() {
        let shell = WalkerShell::starlink_like(30, 3);
        for el in shell.generate() {
            assert!((el.semi_major_axis - (R_EARTH + 550.0)).abs() < 1e-9);
            assert!((el.inclination - 53f64.to_radians()).abs() < 1e-12);
        }
    }
}
