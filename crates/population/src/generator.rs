//! KDE-backed synthetic population generator (Table II of the paper).
//!
//! | Kepler element            | Value range        |
//! |---------------------------|--------------------|
//! | Semi-major axis           | from distribution  |
//! | Eccentricity              | from distribution  |
//! | Inclination               | 0 – π              |
//! | RAAN                      | 0 – 2π             |
//! | Argument of perigee       | 0 – 2π             |
//! | (Mean anomaly)            | 0 – 2π             |
//! | True anomaly              | from mean anomaly  |
//!
//! (a, e) pairs come from a bivariate Gaussian KDE over the anchor catalog;
//! the other elements are uniform. Draws whose perigee would dip below a
//! configurable floor (decayed orbits) or whose eccentricity leaves [0, 1)
//! are rejected and resampled, which truncates the KDE tails to the
//! physical domain.

use crate::catalog;
use kessler_math::kde::{rand_like::UniformSource, Kde2d};
use kessler_orbits::constants::R_EARTH;
use kessler_orbits::KeplerElements;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};

/// Adapter: any `rand::Rng` is a `UniformSource` for the KDE sampler.
struct RngSource<'a, R: Rng>(&'a mut R);

impl<R: Rng> UniformSource for RngSource<'_, R> {
    fn next_uniform(&mut self) -> f64 {
        self.0.gen::<f64>()
    }
}

/// Configuration of the generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// RNG seed — identical seeds generate identical populations, which is
    /// how the accuracy experiment feeds the same population to all three
    /// screener variants.
    pub seed: u64,
    /// Lowest admissible perigee altitude above the surface, km.
    pub min_perigee_altitude_km: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            seed: 0x5EED_CAFE,
            min_perigee_altitude_km: 180.0,
        }
    }
}

/// The generator itself. Construction builds the KDE once; `generate` can
/// then be called for any population size.
pub struct PopulationGenerator {
    kde: Kde2d,
    config: PopulationConfig,
}

/// Kernel bandwidth in the semi-major-axis direction, km.
///
/// The catalog is strongly multimodal (LEO shells, MEO, GEO), so a global
/// Scott's-rule bandwidth would smear the modes into one blob; a fixed
/// per-cluster bandwidth preserves the Fig. 9 concentration structure.
const BANDWIDTH_SMA_KM: f64 = 40.0;
/// Kernel bandwidth in the eccentricity direction.
const BANDWIDTH_ECC: f64 = 0.0015;

impl PopulationGenerator {
    /// Build from the embedded anchor catalog.
    pub fn new(config: PopulationConfig) -> PopulationGenerator {
        let kde = Kde2d::with_bandwidth(catalog::anchors(), BANDWIDTH_SMA_KM, BANDWIDTH_ECC)
            .expect("embedded catalog is non-degenerate");
        PopulationGenerator { kde, config }
    }

    /// Build from caller-supplied anchors (e.g. parsed from a real TLE
    /// catalog via [`crate::tle`]).
    pub fn from_anchors(
        anchors: Vec<(f64, f64)>,
        config: PopulationConfig,
    ) -> Option<PopulationGenerator> {
        Some(PopulationGenerator {
            kde: Kde2d::from_anchors(anchors)?,
            config,
        })
    }

    /// Density of the underlying KDE (used by the Fig. 9 experiment).
    pub fn density(&self, semi_major_axis: f64, eccentricity: f64) -> f64 {
        self.kde.density(semi_major_axis, eccentricity)
    }

    /// Generate `n` satellites.
    pub fn generate(&self, n: usize) -> Vec<KeplerElements> {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut out = Vec::with_capacity(n);
        let min_perigee = R_EARTH + self.config.min_perigee_altitude_km;
        while out.len() < n {
            let (a, e) = self.kde.sample(&mut RngSource(&mut rng));
            // Reject unphysical KDE tail samples.
            if !(0.0..1.0).contains(&e) || a <= min_perigee {
                continue;
            }
            if a * (1.0 - e) < min_perigee {
                continue;
            }
            let inclination = rng.gen_range(0.0..PI);
            let raan = rng.gen_range(0.0..TAU);
            let arg_perigee = rng.gen_range(0.0..TAU);
            let mean_anomaly = rng.gen_range(0.0..TAU);
            let el = KeplerElements::new(a, e, inclination, raan, arg_perigee, mean_anomaly)
                .expect("generated elements are valid by construction");
            out.push(el);
        }
        out
    }

    /// Generate `n` satellites plus the raw (a, e) draws (for Fig. 9).
    pub fn generate_with_samples(&self, n: usize) -> (Vec<KeplerElements>, Vec<(f64, f64)>) {
        let els = self.generate(n);
        let samples = els
            .iter()
            .map(|e| (e.semi_major_axis, e.eccentricity))
            .collect();
        (els, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64) -> Vec<KeplerElements> {
        PopulationGenerator::new(PopulationConfig {
            seed,
            ..Default::default()
        })
        .generate(n)
    }

    #[test]
    fn generates_requested_count() {
        assert_eq!(gen(0, 1).len(), 0);
        assert_eq!(gen(100, 1).len(), 100);
        assert_eq!(gen(2_000, 1).len(), 2_000);
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = gen(50, 42);
        let b = gen(50, 42);
        assert_eq!(a, b);
        let c = gen(50, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn table_two_ranges_hold() {
        for el in gen(2_000, 7) {
            assert!(el.semi_major_axis > R_EARTH);
            assert!((0.0..1.0).contains(&el.eccentricity));
            assert!((0.0..PI).contains(&el.inclination));
            assert!((0.0..TAU).contains(&el.raan));
            assert!((0.0..TAU).contains(&el.arg_perigee));
            assert!((0.0..TAU).contains(&el.mean_anomaly));
        }
    }

    #[test]
    fn perigee_floor_is_enforced() {
        let config = PopulationConfig {
            seed: 3,
            min_perigee_altitude_km: 300.0,
        };
        for el in PopulationGenerator::new(config).generate(1_000) {
            assert!(
                el.perigee_radius() >= R_EARTH + 300.0 - 1e-9,
                "perigee altitude {}",
                el.perigee_radius() - R_EARTH
            );
        }
    }

    #[test]
    fn distribution_concentrates_at_the_leo_hotspot() {
        // Fig. 9's headline feature: strong concentration at a ≈ 7000 km,
        // e ≈ 0.0025.
        let pop = gen(5_000, 11);
        let hotspot = pop
            .iter()
            .filter(|el| (6_600.0..7_800.0).contains(&el.semi_major_axis) && el.eccentricity < 0.05)
            .count();
        assert!(
            hotspot as f64 > 0.7 * pop.len() as f64,
            "hotspot fraction {}",
            hotspot as f64 / pop.len() as f64
        );
        // And a visible GEO population.
        let geo = pop
            .iter()
            .filter(|el| (41_000.0..43_500.0).contains(&el.semi_major_axis))
            .count();
        assert!(geo > 50, "geo count {geo}");
    }

    #[test]
    fn angular_elements_look_uniform() {
        // Coarse χ²-style check: each of 8 bins of RAAN should hold roughly
        // n/8 of the population.
        let pop = gen(8_000, 13);
        let mut bins = [0usize; 8];
        for el in &pop {
            bins[((el.raan / TAU) * 8.0) as usize % 8] += 1;
        }
        for (i, &b) in bins.iter().enumerate() {
            assert!((800..1_200).contains(&b), "raan bin {i} holds {b} of 8000");
        }
    }

    #[test]
    fn kde_density_is_queryable() {
        let g = PopulationGenerator::new(PopulationConfig::default());
        let hot = g.density(7_000.0, 0.0025);
        let cold = g.density(20_000.0, 0.3);
        assert!(hot > cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn custom_anchor_generator_works() {
        let anchors = vec![(7_000.0, 0.001), (7_100.0, 0.002), (7_050.0, 0.003)];
        let g = PopulationGenerator::from_anchors(anchors, PopulationConfig::default()).unwrap();
        let pop = g.generate(100);
        assert_eq!(pop.len(), 100);
        for el in pop {
            assert!((6_000.0..8_500.0).contains(&el.semi_major_axis));
        }
    }
}
