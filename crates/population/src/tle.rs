//! Minimal two-line-element (TLE) parser.
//!
//! The paper's population model is derived from the Celestrak active-
//! satellite TLE catalog \[46\]. This parser lets users feed a real catalog
//! into the screeners or into [`crate::PopulationGenerator::from_anchors`].
//! Only the mean elements needed for two-body screening are extracted; the
//! SGP4-specific terms (drag, derivatives) are parsed but unused.

use kessler_orbits::constants::MU_EARTH;
use kessler_orbits::KeplerElements;
use serde::{Deserialize, Serialize};

/// A parsed TLE record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TleRecord {
    /// Optional satellite name (line 0 of a 3LE).
    pub name: Option<String>,
    /// NORAD catalog number.
    pub catalog_number: u32,
    /// Epoch year (four digits).
    pub epoch_year: u16,
    /// Epoch day of year with fraction.
    pub epoch_day: f64,
    /// Derived classical elements.
    pub elements: KeplerElements,
    /// Mean motion, revolutions per day (as given on line 2).
    pub mean_motion_rev_per_day: f64,
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TleError {
    /// A line was shorter than the 69-character TLE format.
    LineTooShort { line: usize },
    /// A line did not start with the expected line number.
    BadLineNumber { line: usize },
    /// The mod-10 checksum failed.
    ChecksumMismatch { line: usize },
    /// A numeric field failed to parse.
    BadField { line: usize, field: &'static str },
    /// The derived elements were unphysical.
    BadElements,
}

impl std::fmt::Display for TleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TleError::LineTooShort { line } => write!(f, "TLE line {line} is too short"),
            TleError::BadLineNumber { line } => write!(f, "TLE line {line} has a bad line number"),
            TleError::ChecksumMismatch { line } => write!(f, "TLE line {line} checksum mismatch"),
            TleError::BadField { line, field } => {
                write!(f, "TLE line {line}: cannot parse field `{field}`")
            }
            TleError::BadElements => write!(f, "TLE produced unphysical orbital elements"),
        }
    }
}

impl std::error::Error for TleError {}

/// Mod-10 TLE checksum: digits count as themselves, `-` as 1, all else 0.
pub fn checksum(line: &str) -> u32 {
    line.chars()
        .take(68)
        .map(|c| match c {
            '0'..='9' => c as u32 - '0' as u32,
            '-' => 1,
            _ => 0,
        })
        .sum::<u32>()
        % 10
}

fn field(line: &str, range: std::ops::Range<usize>) -> &str {
    line.get(range).unwrap_or("").trim()
}

fn parse_f64(
    line: &str,
    range: std::ops::Range<usize>,
    lineno: usize,
    name: &'static str,
) -> Result<f64, TleError> {
    field(line, range)
        .parse::<f64>()
        .map_err(|_| TleError::BadField {
            line: lineno,
            field: name,
        })
}

/// Parse one TLE from its two lines (optionally preceded by a name line).
pub fn parse_tle(name: Option<&str>, line1: &str, line2: &str) -> Result<TleRecord, TleError> {
    for (idx, line, expect) in [(1usize, line1, '1'), (2, line2, '2')] {
        if line.len() < 69 {
            return Err(TleError::LineTooShort { line: idx });
        }
        if !line.starts_with(expect) {
            return Err(TleError::BadLineNumber { line: idx });
        }
        let given: u32 = line
            .chars()
            .nth(68)
            .and_then(|c| c.to_digit(10))
            .ok_or(TleError::ChecksumMismatch { line: idx })?;
        if checksum(line) != given {
            return Err(TleError::ChecksumMismatch { line: idx });
        }
    }

    let catalog_number = field(line1, 2..7)
        .parse::<u32>()
        .map_err(|_| TleError::BadField {
            line: 1,
            field: "catalog number",
        })?;
    let epoch_yy = field(line1, 18..20)
        .parse::<u16>()
        .map_err(|_| TleError::BadField {
            line: 1,
            field: "epoch year",
        })?;
    // TLE convention: 57–99 → 1957–1999, 00–56 → 2000–2056.
    let epoch_year = if epoch_yy >= 57 {
        1900 + epoch_yy
    } else {
        2000 + epoch_yy
    };
    let epoch_day = parse_f64(line1, 20..32, 1, "epoch day")?;

    let inclination_deg = parse_f64(line2, 8..16, 2, "inclination")?;
    let raan_deg = parse_f64(line2, 17..25, 2, "raan")?;
    let ecc_str = field(line2, 26..33);
    let eccentricity = format!("0.{ecc_str}")
        .parse::<f64>()
        .map_err(|_| TleError::BadField {
            line: 2,
            field: "eccentricity",
        })?;
    let argp_deg = parse_f64(line2, 34..42, 2, "argument of perigee")?;
    let mean_anomaly_deg = parse_f64(line2, 43..51, 2, "mean anomaly")?;
    let mean_motion_rev_per_day = parse_f64(line2, 52..63, 2, "mean motion")?;

    // Semi-major axis from mean motion: n = √(μ/a³).
    let n_rad_per_sec = mean_motion_rev_per_day * std::f64::consts::TAU / 86_400.0;
    if n_rad_per_sec <= 0.0 {
        return Err(TleError::BadField {
            line: 2,
            field: "mean motion",
        });
    }
    let semi_major_axis = (MU_EARTH / (n_rad_per_sec * n_rad_per_sec)).cbrt();

    let elements = KeplerElements::new(
        semi_major_axis,
        eccentricity,
        inclination_deg.to_radians(),
        raan_deg.to_radians(),
        argp_deg.to_radians(),
        mean_anomaly_deg.to_radians(),
    )
    .map_err(|_| TleError::BadElements)?;

    Ok(TleRecord {
        name: name.map(|n| n.trim().to_string()).filter(|n| !n.is_empty()),
        catalog_number,
        epoch_year,
        epoch_day,
        elements,
        mean_motion_rev_per_day,
    })
}

/// Convert a TLE record's SGP4 mean elements into **osculating** Kepler
/// elements at the TLE epoch, by running our from-scratch SGP4 for zero
/// minutes and inverting the Cartesian state.
///
/// This is the correct way to feed real TLEs into the two-body screeners:
/// SGP4 mean elements differ from osculating elements by the J2 periodics
/// (up to ~10 km in position if interpreted naively). Deep-space objects
/// (period ≥ 225 min) fall back to interpreting the mean elements
/// directly — the screening spans of interest are short relative to GEO
/// periodics.
pub fn osculating_elements(record: &TleRecord) -> KeplerElements {
    let mean = kessler_orbits::sgp4::MeanElements {
        mean_motion_rev_per_day: record.mean_motion_rev_per_day,
        eccentricity: record.elements.eccentricity,
        inclination: record.elements.inclination,
        raan: record.elements.raan,
        arg_perigee: record.elements.arg_perigee,
        mean_anomaly: record.elements.mean_anomaly,
        bstar: 0.0,
    };
    match kessler_orbits::sgp4::Sgp4::new(&mean).and_then(|prop| prop.propagate(0.0)) {
        Ok(state) => crate::fragmentation::elements_from_state(&state).unwrap_or(record.elements),
        Err(_) => record.elements,
    }
}

/// Parse a whole catalog in 2LE or 3LE format, skipping blank lines.
/// Returns records plus per-record errors (a bad record does not abort the
/// rest of the catalog).
pub fn parse_catalog(text: &str) -> (Vec<TleRecord>, Vec<(usize, TleError)>) {
    let lines: Vec<&str> = text
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.trim().is_empty())
        .collect();
    let mut records = Vec::new();
    let mut errors = Vec::new();
    let mut i = 0usize;
    while i < lines.len() {
        let (name, l1_idx) = if !lines[i].starts_with('1') && i + 2 < lines.len() + 1 {
            // Name line (3LE).
            if i + 1 < lines.len() && lines[i + 1].starts_with('1') {
                (Some(lines[i]), i + 1)
            } else {
                errors.push((i, TleError::BadLineNumber { line: 1 }));
                i += 1;
                continue;
            }
        } else {
            (None, i)
        };
        if l1_idx + 1 >= lines.len() {
            errors.push((l1_idx, TleError::LineTooShort { line: 2 }));
            break;
        }
        match parse_tle(name, lines[l1_idx], lines[l1_idx + 1]) {
            Ok(rec) => records.push(rec),
            Err(e) => errors.push((l1_idx, e)),
        }
        i = l1_idx + 2;
    }
    (records, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The canonical ISS TLE example (from the NORAD format spec).
    const ISS_L1: &str = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
    const ISS_L2: &str = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

    #[test]
    fn checksum_of_reference_lines() {
        assert_eq!(checksum(ISS_L1), 7);
        assert_eq!(checksum(ISS_L2), 7);
    }

    #[test]
    fn parses_the_iss_tle() {
        let rec = parse_tle(Some("ISS (ZARYA)"), ISS_L1, ISS_L2).unwrap();
        assert_eq!(rec.catalog_number, 25544);
        assert_eq!(rec.epoch_year, 2008);
        assert!((rec.epoch_day - 264.51782528).abs() < 1e-8);
        assert_eq!(rec.name.as_deref(), Some("ISS (ZARYA)"));
        let el = rec.elements;
        assert!((el.inclination.to_degrees() - 51.6416).abs() < 1e-4);
        assert!((el.raan.to_degrees() - 247.4627).abs() < 1e-4);
        assert!((el.eccentricity - 0.0006703).abs() < 1e-9);
        assert!((el.arg_perigee.to_degrees() - 130.5360).abs() < 1e-4);
        assert!((el.mean_anomaly.to_degrees() - 325.0288).abs() < 1e-4);
        // 15.72 rev/day → a ≈ 6723 km (ISS altitude ~350 km in 2008).
        assert!(
            (el.semi_major_axis - 6_723.0).abs() < 10.0,
            "a = {}",
            el.semi_major_axis
        );
    }

    #[test]
    fn rejects_corrupted_checksum() {
        let mut bad = ISS_L1.to_string();
        bad.replace_range(10..11, "9");
        assert_eq!(
            parse_tle(None, &bad, ISS_L2).unwrap_err(),
            TleError::ChecksumMismatch { line: 1 }
        );
    }

    #[test]
    fn rejects_short_lines() {
        assert_eq!(
            parse_tle(None, "1 25544U", ISS_L2).unwrap_err(),
            TleError::LineTooShort { line: 1 }
        );
    }

    #[test]
    fn rejects_swapped_lines() {
        assert_eq!(
            parse_tle(None, ISS_L2, ISS_L1).unwrap_err(),
            TleError::BadLineNumber { line: 1 }
        );
    }

    #[test]
    fn parses_a_3le_catalog() {
        let text = format!("ISS (ZARYA)\n{ISS_L1}\n{ISS_L2}\n");
        let (recs, errs) = parse_catalog(&text);
        assert_eq!(recs.len(), 1);
        assert!(errs.is_empty());
        assert_eq!(recs[0].name.as_deref(), Some("ISS (ZARYA)"));
    }

    #[test]
    fn parses_a_2le_catalog_with_multiple_records() {
        let text = format!("{ISS_L1}\n{ISS_L2}\n{ISS_L1}\n{ISS_L2}\n");
        let (recs, errs) = parse_catalog(&text);
        assert_eq!(recs.len(), 2);
        assert!(errs.is_empty());
    }

    #[test]
    fn catalog_survives_a_bad_record() {
        let mut bad_l1 = ISS_L1.to_string();
        bad_l1.replace_range(10..11, "9"); // checksum break
        let text = format!("{bad_l1}\n{ISS_L2}\n{ISS_L1}\n{ISS_L2}\n");
        let (recs, errs) = parse_catalog(&text);
        assert_eq!(recs.len(), 1);
        assert_eq!(errs.len(), 1);
    }

    #[test]
    fn osculating_conversion_shifts_the_iss_elements() {
        let rec = parse_tle(None, ISS_L1, ISS_L2).unwrap();
        let osc = osculating_elements(&rec);
        // The J2 short-period difference between mean and osculating
        // semi-major axis is kilometres-scale for the ISS.
        let da = (osc.semi_major_axis - rec.elements.semi_major_axis).abs();
        assert!(da > 0.5 && da < 30.0, "Δa = {da} km");
        // The osculating state reproduces the SGP4 epoch position.
        use kessler_orbits::propagator::PropagationConstants;
        use kessler_orbits::ContourSolver;
        let mean = kessler_orbits::sgp4::MeanElements {
            mean_motion_rev_per_day: rec.mean_motion_rev_per_day,
            eccentricity: rec.elements.eccentricity,
            inclination: rec.elements.inclination,
            raan: rec.elements.raan,
            arg_perigee: rec.elements.arg_perigee,
            mean_anomaly: rec.elements.mean_anomaly,
            bstar: 0.0,
        };
        let sgp4_state = kessler_orbits::sgp4::Sgp4::new(&mean)
            .unwrap()
            .propagate(0.0)
            .unwrap();
        let two_body =
            PropagationConstants::from_elements(&osc).propagate(0.0, &ContourSolver::default());
        assert!(
            two_body.position.dist(sgp4_state.position) < 1e-6,
            "osculating elements must reproduce the SGP4 epoch state"
        );
    }

    #[test]
    fn deep_space_records_fall_back_to_mean_elements() {
        // Fabricate a GEO-period record: conversion must not panic and
        // must return the original elements.
        let rec = parse_tle(None, ISS_L1, ISS_L2).unwrap();
        let mut geo = rec.clone();
        geo.mean_motion_rev_per_day = 1.0027;
        geo.elements = KeplerElements::new(42_164.0, 0.0002, 0.01, 1.0, 2.0, 3.0).unwrap();
        let osc = osculating_elements(&geo);
        assert_eq!(osc, geo.elements);
    }

    #[test]
    fn epoch_year_window() {
        // 98 → 1998 (per the 57-boundary convention); 08 → 2008.
        let rec = parse_tle(None, ISS_L1, ISS_L2).unwrap();
        assert_eq!(rec.epoch_year, 2008);
    }
}
