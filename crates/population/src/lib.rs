//! Synthetic satellite population generation (§V-A of the paper).
//!
//! The paper benchmarks on synthetically-generated populations whose
//! (semi-major axis, eccentricity) pairs are drawn from a bivariate kernel
//! density estimate of the real early-2021 satellite catalog, with all
//! remaining elements uniform (Table II). We reproduce that pipeline:
//!
//! * [`catalog`] — an embedded anchor catalog of (a, e) points modelled on
//!   the documented orbit regimes of the 2021 active-satellite population
//!   (substitution for the Celestrak snapshot; see DESIGN.md §3).
//! * [`generator`] — the KDE-backed population generator implementing
//!   Table II exactly (inclination uniform in [0, π], node/perigee/mean
//!   anomaly uniform in [0, 2π), true anomaly derived from mean anomaly).
//! * [`constellation`] — Walker-delta constellation generator
//!   (Starlink-style shells), used by the examples.
//! * [`fragmentation`] — debris-cloud generator for a breakup event (the
//!   scenario §III-B argues about).
//! * [`tle`] — a two-line-element parser so real catalogs can be used in
//!   place of the synthetic model.

pub mod catalog;
pub mod constellation;
pub mod fragmentation;
pub mod generator;
pub mod tle;

pub use constellation::{synthetic_constellation, WalkerShell};
pub use fragmentation::{Fragmentation, FragmentationShortfall};
pub use generator::{PopulationConfig, PopulationGenerator};
