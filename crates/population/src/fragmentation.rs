//! Fragmentation-event (breakup) cloud generator.
//!
//! §III-B of the paper discusses the catastrophic-fragmentation scenario:
//! debris starts at one point in space with spread velocities and rapidly
//! disperses along the parent orbit. This generator produces such a cloud —
//! the parent state perturbed by isotropic Δv kicks — which the
//! `fragmentation_event` example uses to demonstrate screening against a
//! debris field.

use kessler_math::kde::gaussian_pair;
use kessler_math::kde::rand_like::UniformSource;
use kessler_math::Vec3;
use kessler_orbits::constants::MU_EARTH;
use kessler_orbits::{CartesianState, KeplerElements};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

struct RngSource<'a, R: Rng>(&'a mut R);

impl<R: Rng> UniformSource for RngSource<'_, R> {
    fn next_uniform(&mut self) -> f64 {
        self.0.gen::<f64>()
    }
}

/// Breakup configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fragmentation {
    /// Number of debris fragments to generate.
    pub fragments: usize,
    /// Standard deviation of the isotropic velocity kick, km/s.
    /// NASA standard-breakup-model Δv magnitudes for catastrophic events
    /// cluster in the 0.01–0.3 km/s range for trackable sizes.
    pub delta_v_sigma: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fragmentation {
    fn default() -> Self {
        Fragmentation {
            fragments: 1_000,
            delta_v_sigma: 0.05,
            seed: 0xDEB1,
        }
    }
}

/// The generator exhausted its attempt budget before producing the
/// requested number of fragments — the parent state is so close to (or
/// below) the viability boundary that almost every kicked fragment is
/// rejected as unbound, degenerate, or re-entering.
///
/// Callers that previously received a silently short cloud (and therefore
/// quietly under-stressed whatever they were benchmarking) now must decide:
/// propagate the error, or use [`FragmentationShortfall::partial`]
/// explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentationShortfall {
    /// How many fragments were requested.
    pub requested: usize,
    /// How many viable fragments were generated before the budget ran out.
    pub generated: Vec<KeplerElements>,
    /// Total kick attempts spent (the budget: `requested × 1000`).
    pub attempts: usize,
}

impl FragmentationShortfall {
    /// Fraction of attempts that produced no viable fragment, in `[0, 1]`.
    pub fn rejection_rate(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        1.0 - self.generated.len() as f64 / self.attempts as f64
    }

    /// Accept the short cloud anyway (explicit opt-in to partial output).
    pub fn partial(self) -> Vec<KeplerElements> {
        self.generated
    }
}

impl std::fmt::Display for FragmentationShortfall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fragmentation shortfall: {} of {} fragments after {} attempts \
             (rejection rate {:.1}%)",
            self.generated.len(),
            self.requested,
            self.attempts,
            100.0 * self.rejection_rate()
        )
    }
}

impl std::error::Error for FragmentationShortfall {}

impl Fragmentation {
    /// Generate the debris cloud from a parent Cartesian state.
    ///
    /// Fragments whose kicked state is no longer a bound ellipse with
    /// perigee above the surface are re-kicked, up to a budget of
    /// `fragments × 1000` attempts. If the budget is exhausted before the
    /// cloud is complete the whole generation fails with a typed
    /// [`FragmentationShortfall`] carrying the partial cloud and the
    /// rejection rate — it is never silently short.
    pub fn generate_from_state(
        &self,
        parent: CartesianState,
    ) -> Result<Vec<KeplerElements>, FragmentationShortfall> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(self.fragments);
        let mut attempts = 0usize;
        let max_attempts = self.fragments * 1_000;
        while out.len() < self.fragments && attempts < max_attempts {
            attempts += 1;
            let (gx, gy) = gaussian_pair(&mut RngSource(&mut rng));
            let (gz, _) = gaussian_pair(&mut RngSource(&mut rng));
            let kick = Vec3::new(gx, gy, gz) * self.delta_v_sigma;
            let state = CartesianState::new(parent.position, parent.velocity + kick);
            if let Some(el) = elements_from_state(&state) {
                if el.perigee_radius() > kessler_orbits::constants::R_EARTH + 120.0 {
                    out.push(el);
                }
            }
        }
        if out.len() < self.fragments {
            let shortfall = FragmentationShortfall {
                requested: self.fragments,
                generated: out,
                attempts,
            };
            eprintln!("[population] {shortfall}");
            return Err(shortfall);
        }
        Ok(out)
    }
}

/// Convert a Cartesian state to classical elements (two-body inverse).
///
/// Returns `None` for unbound (e ≥ 1) or degenerate states.
pub fn elements_from_state(state: &CartesianState) -> Option<KeplerElements> {
    let r = state.position;
    let v = state.velocity;
    let r_norm = r.norm();
    if r_norm <= 0.0 {
        return None;
    }
    let h = r.cross(v);
    let h_norm = h.norm();
    if h_norm <= 1e-9 {
        return None;
    }

    // Eccentricity vector.
    let e_vec = v.cross(h) / MU_EARTH - r / r_norm;
    let ecc = e_vec.norm();
    if ecc >= 1.0 {
        return None;
    }

    // Semi-major axis from the energy.
    let energy = 0.5 * v.norm_sq() - MU_EARTH / r_norm;
    if energy >= 0.0 {
        return None;
    }
    let a = -MU_EARTH / (2.0 * energy);

    // Inclination.
    let inclination = (h.z / h_norm).clamp(-1.0, 1.0).acos();

    // Node vector.
    let n_vec = Vec3::Z.cross(h);
    let n_norm = n_vec.norm();

    let two_pi = std::f64::consts::TAU;
    let (raan, arg_perigee) = if n_norm > 1e-9 {
        let mut raan = (n_vec.x / n_norm).clamp(-1.0, 1.0).acos();
        if n_vec.y < 0.0 {
            raan = two_pi - raan;
        }
        let arg = if ecc > 1e-11 {
            let mut w = (n_vec.dot(e_vec) / (n_norm * ecc)).clamp(-1.0, 1.0).acos();
            if e_vec.z < 0.0 {
                w = two_pi - w;
            }
            w
        } else {
            0.0
        };
        (raan, arg)
    } else {
        // Equatorial orbit: node undefined; fold into argument of perigee.
        let arg = if ecc > 1e-11 {
            let mut w = (e_vec.x / ecc).clamp(-1.0, 1.0).acos();
            if e_vec.y < 0.0 {
                w = two_pi - w;
            }
            w
        } else {
            0.0
        };
        (0.0, arg)
    };

    // True anomaly.
    let true_anomaly = if ecc > 1e-11 {
        let mut f = (e_vec.dot(r) / (ecc * r_norm)).clamp(-1.0, 1.0).acos();
        if r.dot(v) < 0.0 {
            f = two_pi - f;
        }
        f
    } else if n_norm > 1e-9 {
        // Circular inclined: argument of latitude.
        let mut u = (n_vec.dot(r) / (n_norm * r_norm)).clamp(-1.0, 1.0).acos();
        if r.z < 0.0 {
            u = two_pi - u;
        }
        u
    } else {
        // Circular equatorial: true longitude.
        let mut l = (r.x / r_norm).clamp(-1.0, 1.0).acos();
        if r.y < 0.0 {
            l = two_pi - l;
        }
        l
    };

    let mean_anomaly = kessler_orbits::anomaly::true_to_mean(true_anomaly, ecc);
    KeplerElements::new(a, ecc, inclination, raan, arg_perigee, mean_anomaly).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kessler_orbits::propagator::PropagationConstants;
    use kessler_orbits::ContourSolver;
    use std::f64::consts::TAU;

    fn parent_state() -> CartesianState {
        // Circular 800 km orbit in a 60°-inclined plane.
        let el = KeplerElements::new(7_178.0, 0.0005, 1.05, 0.7, 1.3, 2.0).unwrap();
        PropagationConstants::from_elements(&el).propagate(0.0, &ContourSolver::default())
    }

    #[test]
    fn round_trip_elements_to_state_to_elements() {
        for (a, e, i, raan, argp, m0) in [
            (7_000.0, 0.001, 0.9, 1.0, 2.0, 3.0),
            (26_560.0, 0.01, 0.96, 4.0, 0.3, 0.5),
            (42_164.0, 0.0003, 0.01, 2.0, 1.0, 5.0),
            (26_600.0, 0.7, 1.1, 3.2, 4.9, 0.1),
        ] {
            let el = KeplerElements::new(a, e, i, raan, argp, m0).unwrap();
            let state =
                PropagationConstants::from_elements(&el).propagate(0.0, &ContourSolver::default());
            let back = elements_from_state(&state).unwrap();
            assert!(
                (back.semi_major_axis - a).abs() < 1e-5 * a,
                "a: {}",
                back.semi_major_axis
            );
            assert!(
                (back.eccentricity - e).abs() < 1e-7,
                "e: {}",
                back.eccentricity
            );
            assert!(
                (back.inclination - i).abs() < 1e-9,
                "i: {}",
                back.inclination
            );
            assert!(
                kessler_math::angles::separation(back.raan, raan) < 1e-8,
                "raan: {}",
                back.raan
            );
            assert!(
                kessler_math::angles::separation(back.arg_perigee, argp) < 1e-6,
                "argp: {}",
                back.arg_perigee
            );
            assert!(
                kessler_math::angles::separation(back.mean_anomaly, m0) < 1e-6,
                "m: {}",
                back.mean_anomaly
            );
        }
    }

    #[test]
    fn unbound_state_is_rejected() {
        let s = CartesianState::new(Vec3::new(7_000.0, 0.0, 0.0), Vec3::new(0.0, 12.0, 0.0));
        // v = 12 km/s at 7000 km exceeds escape velocity (~10.7 km/s).
        assert!(elements_from_state(&s).is_none());
    }

    #[test]
    fn degenerate_radial_trajectory_is_rejected() {
        let s = CartesianState::new(Vec3::new(7_000.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(elements_from_state(&s).is_none());
    }

    #[test]
    fn cloud_has_requested_size_and_similar_orbits() {
        let f = Fragmentation {
            fragments: 500,
            delta_v_sigma: 0.05,
            seed: 1,
        };
        let parent = parent_state();
        let cloud = f.generate_from_state(parent).unwrap();
        assert_eq!(cloud.len(), 500);
        // Small kicks → semi-major axes stay near the parent's.
        for el in &cloud {
            assert!(
                (el.semi_major_axis - 7_178.0).abs() < 600.0,
                "a = {}",
                el.semi_major_axis
            );
        }
    }

    #[test]
    fn cloud_positions_start_at_the_breakup_point() {
        let f = Fragmentation {
            fragments: 100,
            delta_v_sigma: 0.03,
            seed: 2,
        };
        let parent = parent_state();
        let cloud = f.generate_from_state(parent).unwrap();
        let solver = ContourSolver::default();
        for el in &cloud {
            let p = PropagationConstants::from_elements(el).position(0.0, &solver);
            assert!(
                p.dist(parent.position) < 1.0,
                "fragment starts {} km from the breakup point",
                p.dist(parent.position)
            );
        }
    }

    #[test]
    fn cloud_disperses_over_time() {
        let f = Fragmentation {
            fragments: 200,
            delta_v_sigma: 0.05,
            seed: 3,
        };
        let parent = parent_state();
        let cloud = f.generate_from_state(parent).unwrap();
        let solver = ContourSolver::default();
        let spread_at = |t: f64| -> f64 {
            let positions: Vec<Vec3> = cloud
                .iter()
                .map(|el| PropagationConstants::from_elements(el).position(t, &solver))
                .collect();
            let centroid =
                positions.iter().fold(Vec3::ZERO, |acc, &p| acc + p) / positions.len() as f64;
            positions.iter().map(|p| p.dist(centroid)).sum::<f64>() / positions.len() as f64
        };
        let early = spread_at(60.0);
        let late = spread_at(3_000.0);
        assert!(
            late > 5.0 * early,
            "cloud failed to disperse: early {early} km, late {late} km"
        );
    }

    #[test]
    fn cloud_is_deterministic_per_seed() {
        let parent = parent_state();
        let a = Fragmentation {
            fragments: 50,
            delta_v_sigma: 0.05,
            seed: 9,
        }
        .generate_from_state(parent)
        .unwrap();
        let b = Fragmentation {
            fragments: 50,
            delta_v_sigma: 0.05,
            seed: 9,
        }
        .generate_from_state(parent)
        .unwrap();
        assert_eq!(a, b);
        let _ = TAU;
    }

    #[test]
    fn exhausted_attempt_budget_is_a_typed_shortfall_not_a_short_cloud() {
        // A huge kick sigma makes nearly every fragment unbound or
        // re-entering, so the attempt budget runs out well before the
        // requested count. Previously this silently returned a short Vec;
        // now it must be a FragmentationShortfall carrying the partial
        // cloud and an honest rejection rate.
        let f = Fragmentation {
            fragments: 50,
            delta_v_sigma: 50.0, // ~5× escape velocity at LEO
            seed: 7,
        };
        let err = f
            .generate_from_state(parent_state())
            .expect_err("an unreachable fragment count must not succeed");
        assert_eq!(err.requested, 50);
        assert!(err.generated.len() < 50);
        assert_eq!(err.attempts, 50 * 1_000);
        assert!(
            err.rejection_rate() > 0.9,
            "rate = {}",
            err.rejection_rate()
        );
        // The partial cloud remains usable on explicit opt-in.
        let partial = err.clone().partial();
        assert_eq!(partial.len(), err.generated.len());
        // And the error formats with the numbers an operator needs.
        let msg = err.to_string();
        assert!(msg.contains("of 50 fragments"), "msg = {msg}");
    }
}
