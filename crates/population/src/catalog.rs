//! Embedded anchor catalog of (semi-major axis, eccentricity) pairs.
//!
//! The paper derives its KDE "from the database of real operational
//! satellites in early 2021" (Celestrak active.txt, ref. \[46\]). That
//! snapshot is not redistributable here, so we embed a synthetic anchor set
//! built from the *documented* composition of the 2021 active population
//! (ESA environment report \[2\], McDowell \[3\]):
//!
//! * ~55 % LEO broadband constellation shells (Starlink at ~6 920 km,
//!   OneWeb at ~7 580 km), near-circular — this is the strong concentration
//!   at a ≈ 7 000 km, e ≈ 0.0025 that dominates Fig. 9;
//! * ~25 % general LEO (Earth observation, CubeSats) between 6 700 and
//!   7 400 km with e up to ~0.02;
//! * ~7 % Sun-synchronous-like orbits around 7 080–7 280 km;
//! * ~6 % GEO at 42 164 km, e ≈ 0;
//! * ~4 % MEO navigation (GPS/GLONASS/Galileo, 25 500–29 600 km);
//! * ~3 % HEO/Molniya/GTO with large eccentricities (0.55–0.74).
//!
//! The KDE sees only the point cloud, so reproducing the regime mix
//! reproduces the paper's sampling distribution to the accuracy that
//! matters for screening workloads.

/// One anchor: (semi-major axis km, eccentricity).
pub type Anchor = (f64, f64);

/// Deterministically generated anchor set (size ~300).
pub fn anchors() -> Vec<Anchor> {
    let mut out = Vec::with_capacity(300);

    // A tiny deterministic LCG so the anchor set is reproducible without
    // pulling rand into the const path.
    let mut state = 0x853c_49e6_748f_ea9bu64;
    let mut next = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };

    // 55 %: broadband LEO shells.
    for _ in 0..110 {
        // Starlink-like: 540–570 km altitude.
        out.push((6_918.0 + 30.0 * next(), 0.0005 + 0.004 * next()));
    }
    for _ in 0..55 {
        // OneWeb-like: ~1 200 km altitude.
        out.push((7_578.0 + 8.0 * next(), 0.001 + 0.002 * next()));
    }
    // 25 %: general LEO.
    for _ in 0..75 {
        out.push((6_700.0 + 700.0 * next(), 0.0005 + 0.02 * next()));
    }
    // 7 %: SSO band.
    for _ in 0..21 {
        out.push((7_080.0 + 200.0 * next(), 0.001 + 0.003 * next()));
    }
    // 6 %: GEO.
    for _ in 0..18 {
        out.push((42_164.0 + 20.0 * (next() - 0.5), 0.0002 + 0.0008 * next()));
    }
    // 4 %: MEO navigation.
    for _ in 0..12 {
        out.push((25_500.0 + 4_100.0 * next(), 0.001 + 0.01 * next()));
    }
    // 3 %: HEO / Molniya-class (perigee kept above ~1 200 km).
    for _ in 0..9 {
        out.push((25_500.0 + 1_300.0 * next(), 0.55 + 0.15 * next()));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kessler_orbits::constants::R_EARTH;

    #[test]
    fn anchor_set_is_deterministic() {
        assert_eq!(anchors(), anchors());
    }

    #[test]
    fn anchor_set_has_documented_size_and_mix() {
        let a = anchors();
        assert_eq!(a.len(), 300);
        // Majority in the LEO concentration around 7000 km / e ≈ 0.0025
        // (the Fig. 9 hotspot).
        let leo_hotspot = a
            .iter()
            .filter(|&&(sma, e)| (6_700.0..7_700.0).contains(&sma) && e < 0.03)
            .count();
        assert!(
            leo_hotspot as f64 > 0.8 * a.len() as f64,
            "LEO fraction = {leo_hotspot}/300"
        );
        // Some GEO presence.
        assert!(a.iter().any(|&(sma, _)| sma > 42_000.0));
        // Some high-eccentricity presence.
        assert!(a.iter().any(|&(_, e)| e > 0.5));
    }

    #[test]
    fn all_anchors_are_physical() {
        for (sma, e) in anchors() {
            assert!(sma > R_EARTH, "a = {sma}");
            assert!((0.0..1.0).contains(&e), "e = {e}");
            // Perigee above dense atmosphere (≥ ~180 km) for active sats.
            assert!(
                sma * (1.0 - e) > R_EARTH + 150.0,
                "perigee too low: a={sma}, e={e}"
            );
        }
    }
}
