//! SoA batch propagation must agree with the scalar reference path.
//!
//! The structure-of-arrays [`BatchPropagator`] reconstructs positions and
//! velocities through lane-oriented kernels (`chunks_exact` blocks plus a
//! remainder tail) over a precomputed contour-node table, while
//! [`PropagationConstants::propagate`] walks one satellite at a time with a
//! per-call [`ContourSolver`]. The two paths share every arithmetic step in
//! the same order, so they are required to agree to 1e-12 (and in fact
//! bit-for-bit) across the full element domain: near-circular and highly
//! eccentric (e → 0.9), prograde and retrograde, near-equatorial and
//! near-polar — including populations whose length exercises the
//! remainder lane of the vectorized loops.

use kessler_orbits::propagator::PropagationConstants;
use kessler_orbits::{BatchPropagator, ContourSolver, KeplerElements};
use proptest::prelude::*;
use std::f64::consts::{PI, TAU};

/// Componentwise |batch − scalar| ≤ 1e-12 · (1 + |scalar|): absolute in the
/// sub-metre regime, relative at LEO/GEO magnitudes (thousands of km).
const TOL: f64 = 1e-12;

fn assert_close(batch: f64, scalar: f64, what: &str) {
    let bound = TOL * (1.0 + scalar.abs());
    assert!(
        (batch - scalar).abs() <= bound,
        "{what}: batch {batch} vs scalar {scalar} (|Δ| = {:e} > {bound:e})",
        (batch - scalar).abs()
    );
}

/// Compare every satellite of `population` at `dt` through both paths.
fn check_population(population: &[KeplerElements], dt: f64) {
    let solver = ContourSolver::default();
    let batch = BatchPropagator::new(population);
    let positions = batch.positions(dt);
    let states = batch.states(dt);
    assert_eq!(positions.len(), population.len());
    assert_eq!(states.len(), population.len());
    for (i, el) in population.iter().enumerate() {
        let scalar = PropagationConstants::from_elements(el).propagate(dt, &solver);
        for (axis, (b, s)) in [
            (positions[i].x, scalar.position.x),
            (positions[i].y, scalar.position.y),
            (positions[i].z, scalar.position.z),
        ]
        .iter()
        .enumerate()
        .map(|(axis, pair)| (axis, *pair))
        {
            assert_close(b, s, &format!("sat {i} position axis {axis}"));
        }
        for (axis, (b, s)) in [
            (states[i].velocity.x, scalar.velocity.x),
            (states[i].velocity.y, scalar.velocity.y),
            (states[i].velocity.z, scalar.velocity.z),
        ]
        .iter()
        .enumerate()
        .map(|(axis, pair)| (axis, *pair))
        {
            assert_close(b, s, &format!("sat {i} velocity axis {axis}"));
        }
        // The batch states' positions must also match the positions-only
        // entry point (they run different tile kernels).
        assert_eq!(
            states[i].position.x.to_bits(),
            positions[i].x.to_bits(),
            "sat {i}: states() and positions() disagree"
        );
    }
}

/// A deterministic population spread across the element domain, sized to
/// leave a remainder after the vector lanes (width 8) and tiles.
fn spread_population(n: usize, base: &KeplerElements) -> Vec<KeplerElements> {
    (0..n)
        .map(|i| {
            let f = i as f64;
            KeplerElements::new(
                base.semi_major_axis + 13.7 * f,
                (base.eccentricity + 0.013 * f) % 0.9,
                (base.inclination + 0.21 * f) % PI,
                base.raan + 0.5 * f,
                base.arg_perigee + 0.7 * f,
                base.mean_anomaly + 1.1 * f,
            )
            .expect("spread elements stay in the valid domain")
        })
        .collect()
}

#[test]
fn eccentric_orbits_match_scalar_propagation() {
    // e → 0.9: the Kepler solve works hardest here, so any divergence
    // between the node-table and per-call solver paths would surface.
    let base = KeplerElements::new(12_000.0, 0.9, 1.1, 0.3, 2.0, 4.5).unwrap();
    let population: Vec<KeplerElements> = (0..19)
        .map(|i| {
            KeplerElements::new(
                12_000.0 + 20.0 * i as f64,
                0.9 - 0.002 * i as f64,
                base.inclination,
                base.raan + 0.1 * i as f64,
                base.arg_perigee,
                0.33 * i as f64,
            )
            .unwrap()
        })
        .collect();
    for dt in [0.0, 17.0, 900.0, 7_200.0] {
        check_population(&population, dt);
    }
}

#[test]
fn retrograde_orbits_match_scalar_propagation() {
    // Inclination past π/2 up to nearly π: the orientation vectors flip
    // sign patterns relative to prograde orbits.
    let base = KeplerElements::new(7_200.0, 0.02, PI - 1e-3, 5.0, 1.0, 0.0).unwrap();
    let population = spread_population(21, &base);
    for dt in [0.0, 60.0, 3_600.0] {
        check_population(&population, dt);
    }
}

#[test]
fn near_equatorial_orbits_match_scalar_propagation() {
    // Inclination ≈ 0 (and the wrapped spread stays near-planar): RAAN
    // becomes nearly degenerate with the argument of perigee, a classic
    // source of frame-construction bugs.
    let base = KeplerElements::new(42_164.0, 0.0003, 1e-9, 0.0, 4.0, 2.2).unwrap();
    let population: Vec<KeplerElements> = (0..9)
        .map(|i| {
            KeplerElements::new(
                base.semi_major_axis - 3.0 * i as f64,
                base.eccentricity,
                1e-9 + 1e-7 * i as f64,
                0.9 * i as f64,
                base.arg_perigee,
                0.7 * i as f64,
            )
            .unwrap()
        })
        .collect();
    for dt in [0.0, 300.0, 43_200.0] {
        check_population(&population, dt);
    }
}

#[test]
fn remainder_lane_widths_match_scalar_propagation() {
    // The tile kernels process LANES = 8 satellites per block and finish
    // with `chunks_exact`'s remainder: cover empty, sub-lane, exact-lane,
    // lane-plus-one and multi-block-plus-tail populations.
    let base = KeplerElements::new(7_000.0, 0.01, 0.9, 0.1, 0.2, 0.3).unwrap();
    for n in [0usize, 1, 5, 7, 8, 9, 16, 17, 37] {
        let population = spread_population(n, &base);
        check_population(&population, 451.0);
    }
}

#[test]
fn batch_propagation_is_bit_identical_to_scalar() {
    // Stronger than the 1e-12 contract: the SoA kernels replicate the
    // scalar arithmetic order exactly, so the delta-screening layer's
    // exact-equality invariants (delta == cold full screen) stay sound.
    let base = KeplerElements::new(8_000.0, 0.4, 2.3, 1.0, 3.0, 5.0).unwrap();
    let population = spread_population(27, &base);
    let solver = ContourSolver::default();
    let batch = BatchPropagator::new(&population);
    let states = batch.states(1_234.5);
    for (i, el) in population.iter().enumerate() {
        let scalar = PropagationConstants::from_elements(el).propagate(1_234.5, &solver);
        assert_eq!(states[i].position.x.to_bits(), scalar.position.x.to_bits());
        assert_eq!(states[i].position.y.to_bits(), scalar.position.y.to_bits());
        assert_eq!(states[i].position.z.to_bits(), scalar.position.z.to_bits());
        assert_eq!(states[i].velocity.x.to_bits(), scalar.velocity.x.to_bits());
        assert_eq!(states[i].velocity.y.to_bits(), scalar.velocity.y.to_bits());
        assert_eq!(states[i].velocity.z.to_bits(), scalar.velocity.z.to_bits());
    }
}

proptest! {
    /// Fuzz the full element domain: any valid orbit, any time offset up
    /// to ~8 hours, at a population width that exercises both full lanes
    /// and the remainder tail.
    #[test]
    fn fuzz_batch_matches_scalar(
        a in 6_800.0..45_000.0f64,
        e in 0.0..0.9f64,
        incl in 0.0..PI,
        raan in 0.0..TAU,
        argp in 0.0..TAU,
        m0 in 0.0..TAU,
        dt in 0.0..28_800.0f64,
        n in 1usize..13,
    ) {
        let base = KeplerElements::new(a, e, incl, raan, argp, m0).unwrap();
        let population = spread_population(n, &base);
        let solver = ContourSolver::default();
        let batch = BatchPropagator::new(&population);
        let positions = batch.positions(dt);
        let states = batch.states(dt);
        for (i, el) in population.iter().enumerate() {
            let scalar = PropagationConstants::from_elements(el).propagate(dt, &solver);
            for (b, s) in [
                (positions[i].x, scalar.position.x),
                (positions[i].y, scalar.position.y),
                (positions[i].z, scalar.position.z),
                (states[i].velocity.x, scalar.velocity.x),
                (states[i].velocity.y, scalar.velocity.y),
                (states[i].velocity.z, scalar.velocity.z),
            ] {
                let bound = TOL * (1.0 + s.abs());
                prop_assert!(
                    (b - s).abs() <= bound,
                    "sat {i}: batch {b} vs scalar {s} at dt {dt}"
                );
            }
        }
    }
}
