//! Classical Kepler elements (Fig. 7/8 and Table II of the paper).

use crate::constants::MU_EARTH;
use kessler_math::angles::wrap_tau;
use serde::{Deserialize, Serialize};

/// The six classical orbital elements describing an elliptical Earth orbit
/// and the position of a satellite on it at a reference epoch.
///
/// Angles are radians; lengths are kilometres. The anomaly stored here is
/// the **mean anomaly at epoch** — the paper's population generator draws
/// the mean anomaly uniformly and derives the true anomaly from it
/// (Table II), and mean anomaly is the quantity that advances linearly in
/// time, which is what the propagator needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeplerElements {
    /// Semi-major axis `a` (km), strictly positive for elliptical orbits.
    pub semi_major_axis: f64,
    /// Eccentricity `e` in `[0, 1)`.
    pub eccentricity: f64,
    /// Inclination `i` in `[0, π]`.
    pub inclination: f64,
    /// Right ascension of the ascending node `Ω` in `[0, 2π)`.
    pub raan: f64,
    /// Argument of perigee `ω` in `[0, 2π)`.
    pub arg_perigee: f64,
    /// Mean anomaly `M₀` at epoch, `[0, 2π)`.
    pub mean_anomaly: f64,
}

/// Validation failures for a set of elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementsError {
    NonPositiveSemiMajorAxis,
    EccentricityOutOfRange,
    InclinationOutOfRange,
    NonFinite,
}

impl std::fmt::Display for ElementsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElementsError::NonPositiveSemiMajorAxis => {
                write!(f, "semi-major axis must be strictly positive")
            }
            ElementsError::EccentricityOutOfRange => {
                write!(f, "eccentricity must lie in [0, 1) for closed orbits")
            }
            ElementsError::InclinationOutOfRange => {
                write!(f, "inclination must lie in [0, π]")
            }
            ElementsError::NonFinite => write!(f, "element values must be finite"),
        }
    }
}

impl std::error::Error for ElementsError {}

impl KeplerElements {
    /// Construct a validated element set. Node, perigee and anomaly angles
    /// are wrapped into `[0, 2π)`.
    pub fn new(
        semi_major_axis: f64,
        eccentricity: f64,
        inclination: f64,
        raan: f64,
        arg_perigee: f64,
        mean_anomaly: f64,
    ) -> Result<KeplerElements, ElementsError> {
        let all = [
            semi_major_axis,
            eccentricity,
            inclination,
            raan,
            arg_perigee,
            mean_anomaly,
        ];
        if all.iter().any(|v| !v.is_finite()) {
            return Err(ElementsError::NonFinite);
        }
        if semi_major_axis <= 0.0 {
            return Err(ElementsError::NonPositiveSemiMajorAxis);
        }
        if !(0.0..1.0).contains(&eccentricity) {
            return Err(ElementsError::EccentricityOutOfRange);
        }
        if !(0.0..=std::f64::consts::PI).contains(&inclination) {
            return Err(ElementsError::InclinationOutOfRange);
        }
        Ok(KeplerElements {
            semi_major_axis,
            eccentricity,
            inclination,
            raan: wrap_tau(raan),
            arg_perigee: wrap_tau(arg_perigee),
            mean_anomaly: wrap_tau(mean_anomaly),
        })
    }

    /// Mean motion `n = √(μ/a³)` in rad/s.
    #[inline]
    pub fn mean_motion(&self) -> f64 {
        (MU_EARTH / self.semi_major_axis.powi(3)).sqrt()
    }

    /// Orbital period `T = 2π/n` in seconds.
    #[inline]
    pub fn period(&self) -> f64 {
        std::f64::consts::TAU / self.mean_motion()
    }

    /// Perigee radius `a(1−e)` in km (distance from Earth's centre).
    #[inline]
    pub fn perigee_radius(&self) -> f64 {
        self.semi_major_axis * (1.0 - self.eccentricity)
    }

    /// Apogee radius `a(1+e)` in km.
    #[inline]
    pub fn apogee_radius(&self) -> f64 {
        self.semi_major_axis * (1.0 + self.eccentricity)
    }

    /// Semi-latus rectum `p = a(1−e²)` in km.
    #[inline]
    pub fn semi_latus_rectum(&self) -> f64 {
        self.semi_major_axis * (1.0 - self.eccentricity * self.eccentricity)
    }

    /// Orbit radius at true anomaly `f`: `r = p / (1 + e·cos f)`.
    #[inline]
    pub fn radius_at_true_anomaly(&self, f: f64) -> f64 {
        self.semi_latus_rectum() / (1.0 + self.eccentricity * f.cos())
    }

    /// Mean anomaly at epoch + `dt` seconds, wrapped to `[0, 2π)`.
    #[inline]
    pub fn mean_anomaly_at(&self, dt: f64) -> f64 {
        wrap_tau(self.mean_anomaly + self.mean_motion() * dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{PI, TAU};

    fn leo() -> KeplerElements {
        KeplerElements::new(7_000.0, 0.001, 0.9, 1.0, 2.0, 3.0).unwrap()
    }

    #[test]
    fn valid_elements_are_accepted() {
        assert!(KeplerElements::new(6_800.0, 0.0, 0.0, 0.0, 0.0, 0.0).is_ok());
        assert!(KeplerElements::new(42_164.0, 0.99, PI, 6.0, 6.0, 6.0).is_ok());
    }

    #[test]
    fn invalid_elements_are_rejected() {
        assert_eq!(
            KeplerElements::new(0.0, 0.0, 0.0, 0.0, 0.0, 0.0).unwrap_err(),
            ElementsError::NonPositiveSemiMajorAxis
        );
        assert_eq!(
            KeplerElements::new(7e3, 1.0, 0.0, 0.0, 0.0, 0.0).unwrap_err(),
            ElementsError::EccentricityOutOfRange
        );
        assert_eq!(
            KeplerElements::new(7e3, -0.1, 0.0, 0.0, 0.0, 0.0).unwrap_err(),
            ElementsError::EccentricityOutOfRange
        );
        assert_eq!(
            KeplerElements::new(7e3, 0.1, 3.3, 0.0, 0.0, 0.0).unwrap_err(),
            ElementsError::InclinationOutOfRange
        );
        assert_eq!(
            KeplerElements::new(f64::NAN, 0.1, 0.3, 0.0, 0.0, 0.0).unwrap_err(),
            ElementsError::NonFinite
        );
    }

    #[test]
    fn angles_are_wrapped_on_construction() {
        let e = KeplerElements::new(7e3, 0.0, 0.0, TAU + 1.0, -1.0, 3.0 * TAU).unwrap();
        assert!((e.raan - 1.0).abs() < 1e-12);
        assert!((e.arg_perigee - (TAU - 1.0)).abs() < 1e-12);
        assert!(e.mean_anomaly.abs() < 1e-9);
    }

    #[test]
    fn leo_period_is_about_97_minutes() {
        // a = 7000 km → T ≈ 5828 s.
        let t = leo().period();
        assert!((t - 5_828.0).abs() < 10.0, "T = {t}");
    }

    #[test]
    fn apsides_bracket_semi_major_axis() {
        let e = leo();
        assert!(e.perigee_radius() < e.semi_major_axis);
        assert!(e.apogee_radius() > e.semi_major_axis);
        assert!((e.perigee_radius() + e.apogee_radius() - 2.0 * e.semi_major_axis).abs() < 1e-9);
    }

    #[test]
    fn radius_at_anomaly_hits_apsides() {
        let e = KeplerElements::new(10_000.0, 0.3, 0.0, 0.0, 0.0, 0.0).unwrap();
        assert!((e.radius_at_true_anomaly(0.0) - e.perigee_radius()).abs() < 1e-9);
        assert!((e.radius_at_true_anomaly(PI) - e.apogee_radius()).abs() < 1e-9);
    }

    #[test]
    fn mean_anomaly_advances_linearly() {
        let e = leo();
        let quarter = e.period() / 4.0;
        let m = e.mean_anomaly_at(quarter);
        assert!((m - wrap_tau(e.mean_anomaly + PI / 2.0)).abs() < 1e-9);
        // A full period returns to the epoch anomaly.
        let full = e.mean_anomaly_at(e.period());
        assert!((full - e.mean_anomaly).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn derived_quantities_are_consistent(
            a in 6_600.0..45_000.0f64,
            ecc in 0.0..0.95f64,
            inc in 0.0..PI,
        ) {
            let e = KeplerElements::new(a, ecc, inc, 0.0, 0.0, 0.0).unwrap();
            prop_assert!(e.period() > 0.0);
            prop_assert!(e.perigee_radius() <= e.apogee_radius());
            prop_assert!(e.semi_latus_rectum() <= a);
            // r(f) stays within [perigee, apogee] for all anomalies.
            for k in 0..16 {
                let f = k as f64 * TAU / 16.0;
                let r = e.radius_at_true_anomaly(f);
                prop_assert!(r >= e.perigee_radius() - 1e-6);
                prop_assert!(r <= e.apogee_radius() + 1e-6);
            }
        }
    }
}
