//! Conversions between mean, eccentric and true anomaly.
//!
//! Kepler's equation `M = E − e·sin E` links mean and eccentric anomaly;
//! solving it is the computationally expensive direction and is delegated to
//! the pluggable solvers in [`crate::kepler`]. The remaining conversions are
//! closed-form and live here.

use kessler_math::angles::wrap_tau;

/// Kepler's function `f(E) = E − e·sin E − M` and derivatives, the common
/// ground all solvers iterate on.
#[inline]
pub fn kepler_residual(ecc_anomaly: f64, e: f64, mean_anomaly: f64) -> f64 {
    ecc_anomaly - e * ecc_anomaly.sin() - mean_anomaly
}

/// Eccentric → mean anomaly (the easy direction of Kepler's equation).
#[inline]
pub fn ecc_to_mean(ecc_anomaly: f64, e: f64) -> f64 {
    wrap_tau(ecc_anomaly - e * ecc_anomaly.sin())
}

/// Eccentric → true anomaly.
///
/// Uses the half-angle form `tan(f/2) = √((1+e)/(1−e)) · tan(E/2)` expressed
/// through `atan2` so all quadrants resolve correctly.
#[inline]
pub fn ecc_to_true(ecc_anomaly: f64, e: f64) -> f64 {
    let beta = ((1.0 + e) / (1.0 - e)).sqrt();
    let half = ecc_anomaly * 0.5;
    wrap_tau(2.0 * (beta * half.sin()).atan2(half.cos()))
}

/// True → eccentric anomaly (inverse of [`ecc_to_true`]).
#[inline]
pub fn true_to_ecc(true_anomaly: f64, e: f64) -> f64 {
    let beta = ((1.0 - e) / (1.0 + e)).sqrt();
    let half = true_anomaly * 0.5;
    wrap_tau(2.0 * (beta * half.sin()).atan2(half.cos()))
}

/// True → mean anomaly (composition; closed form, no iteration).
#[inline]
pub fn true_to_mean(true_anomaly: f64, e: f64) -> f64 {
    ecc_to_mean(true_to_ecc(true_anomaly, e), e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{PI, TAU};

    #[test]
    fn circular_orbit_anomalies_coincide() {
        for a in [0.0, 0.5, PI, 4.0, TAU - 0.01] {
            assert!((ecc_to_true(a, 0.0) - a).abs() < 1e-12);
            assert!((ecc_to_mean(a, 0.0) - a).abs() < 1e-12);
            assert!((true_to_ecc(a, 0.0) - a).abs() < 1e-12);
        }
    }

    #[test]
    fn apsides_are_fixed_points() {
        for e in [0.0, 0.1, 0.5, 0.9] {
            assert!(ecc_to_true(0.0, e).abs() < 1e-12, "perigee, e = {e}");
            assert!((ecc_to_true(PI, e) - PI).abs() < 1e-12, "apogee, e = {e}");
            assert!(true_to_mean(0.0, e).abs() < 1e-12);
            assert!((true_to_mean(PI, e) - PI).abs() < 1e-12);
        }
    }

    #[test]
    fn true_anomaly_leads_eccentric_before_apogee() {
        // For 0 < E < π the satellite is past perigee; true anomaly runs
        // ahead of eccentric anomaly on an eccentric orbit.
        let e = 0.4;
        for ecc_anom in [0.3, 1.0, 2.0, 3.0] {
            assert!(ecc_to_true(ecc_anom, e) > ecc_anom);
        }
    }

    #[test]
    fn known_textbook_value() {
        // Vallado example: e = 0.4, E = 0.5 rad →
        // f = 2·atan(√(1.4/0.6)·tan(0.25)).
        let f = ecc_to_true(0.5, 0.4);
        let expect = 2.0 * ((1.4f64 / 0.6).sqrt() * 0.25f64.tan()).atan();
        assert!((f - expect).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn ecc_true_round_trip(ecc_anom in 0.0..TAU, e in 0.0..0.99f64) {
            let f = ecc_to_true(ecc_anom, e);
            let back = true_to_ecc(f, e);
            prop_assert!(
                kessler_math::angles::separation(back, ecc_anom) < 1e-9,
                "E = {}, back = {}", ecc_anom, back
            );
        }

        #[test]
        fn mean_anomaly_is_monotone_in_ecc_anomaly(e in 0.0..0.99f64) {
            // M(E) = E − e sin E is strictly increasing (dM/dE = 1 − e cos E > 0),
            // which is what guarantees Kepler's equation has a unique root.
            let mut prev = ecc_to_mean(0.0, e);
            for k in 1..=64 {
                let ecc_anom = k as f64 * (TAU - 1e-9) / 64.0;
                let m = ecc_to_mean(ecc_anom, e);
                // ecc_to_mean wraps; unwrap by comparing raw values instead.
                let raw = ecc_anom - e * ecc_anom.sin();
                let raw_prev = (k - 1) as f64 * (TAU - 1e-9) / 64.0;
                let raw_prev = raw_prev - e * raw_prev.sin();
                prop_assert!(raw > raw_prev);
                let _ = (m, prev);
                prev = m;
            }
        }

        #[test]
        fn residual_vanishes_on_consistent_pair(ecc_anom in 0.0..TAU, e in 0.0..0.99f64) {
            let m = ecc_anom - e * ecc_anom.sin();
            prop_assert!(kepler_residual(ecc_anom, e, m).abs() < 1e-12);
        }
    }
}
