//! SGP4 — the near-Earth analytical propagator behind every TLE.
//!
//! The paper's population model is *derived from* a TLE catalog (§V-A) but
//! propagates with pure two-body Kepler dynamics, which is exact for its
//! synthetic elements. Real TLE elements, however, are **SGP4 mean
//! elements**: interpreting them with any other propagator biases the
//! trajectory by kilometres within hours. For the `tle_screening` use case
//! this module implements SGP4 from scratch — the near-Earth variant of
//! the classical Spacetrack Report #3 algorithm (Hoots & Roehrich 1980)
//! with the Brouwer mean-motion recovery, atmospheric-drag secular terms,
//! long- and short-period periodics, in the TEME frame and WGS-72
//! constants the operational system standardised on.
//!
//! Deep-space orbits (period ≥ 225 min: GEO, Molniya) need the SDP4
//! extension and are rejected with [`Sgp4Error::DeepSpace`].
//!
//! Validation: the test suite cross-checks positions and velocities
//! against the field-tested `sgp4` crate (test-only oracle, DESIGN.md §6).

use crate::state::CartesianState;
use kessler_math::Vec3;

// WGS-72 constants (the SGP4 standard set).
/// Earth radius, km.
pub const XKMPER: f64 = 6378.135;
/// √(μ) in (earth radii)^1.5 / min.
pub const XKE: f64 = 7.436_691_613_317_342e-2;
const J2: f64 = 1.082_616e-3;
const J3: f64 = -2.538_81e-6;
const J4: f64 = -1.655_97e-6;
const CK2: f64 = 0.5 * J2;
const CK4: f64 = -0.375 * J4;
/// (120 − 78) km in earth radii, to the 4th power.
const QOMS2T: f64 = 1.880_279_159_015_271e-9;
/// 1 + 78 km in earth radii.
const S0: f64 = 1.012_229_28;

/// SGP4 initialisation / propagation errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sgp4Error {
    /// Orbital period ≥ 225 minutes: needs the SDP4 deep-space extension.
    DeepSpace { period_min: f64 },
    /// Eccentricity outside SGP4's valid range.
    BadEccentricity { e: f64 },
    /// Non-positive mean motion.
    BadMeanMotion,
    /// The drag model collapsed the orbit (decay) at the requested time.
    Decayed { tsince_min: f64 },
}

impl std::fmt::Display for Sgp4Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sgp4Error::DeepSpace { period_min } => write!(
                f,
                "period {period_min:.1} min ≥ 225 min requires SDP4 (deep space)"
            ),
            Sgp4Error::BadEccentricity { e } => write!(f, "eccentricity {e} out of range"),
            Sgp4Error::BadMeanMotion => write!(f, "mean motion must be positive"),
            Sgp4Error::Decayed { tsince_min } => {
                write!(f, "satellite decayed before t = {tsince_min} min")
            }
        }
    }
}

impl std::error::Error for Sgp4Error {}

/// TLE mean elements as SGP4 consumes them.
#[derive(Debug, Clone, Copy)]
pub struct MeanElements {
    /// Mean motion, revolutions per day (Kozai convention, as on line 2).
    pub mean_motion_rev_per_day: f64,
    /// Eccentricity.
    pub eccentricity: f64,
    /// Inclination, rad.
    pub inclination: f64,
    /// RAAN, rad.
    pub raan: f64,
    /// Argument of perigee, rad.
    pub arg_perigee: f64,
    /// Mean anomaly, rad.
    pub mean_anomaly: f64,
    /// B* drag term, (earth radii)⁻¹.
    pub bstar: f64,
}

impl From<&crate::elements::KeplerElements> for MeanElements {
    fn from(el: &crate::elements::KeplerElements) -> MeanElements {
        MeanElements {
            mean_motion_rev_per_day: 86_400.0 / el.period(),
            eccentricity: el.eccentricity,
            inclination: el.inclination,
            raan: el.raan,
            arg_perigee: el.arg_perigee,
            mean_anomaly: el.mean_anomaly,
            bstar: 0.0,
        }
    }
}

/// Initialised SGP4 propagator for one satellite.
#[derive(Debug, Clone)]
pub struct Sgp4 {
    // Epoch elements.
    e0: f64,
    i0: f64,
    raan0: f64,
    argp0: f64,
    m0: f64,
    bstar: f64,
    // Recovered Brouwer elements.
    xnodp: f64,
    aodp: f64,
    // Trig caches.
    cosio: f64,
    sinio: f64,
    x3thm1: f64,
    x1mth2: f64,
    x7thm1: f64,
    // Drag model.
    isimp: bool,
    eta: f64,
    c1: f64,
    c4: f64,
    c5: f64,
    d2: f64,
    d3: f64,
    d4: f64,
    t2cof: f64,
    t3cof: f64,
    t4cof: f64,
    t5cof: f64,
    // Secular rates.
    xmdot: f64,
    omgdot: f64,
    xnodot: f64,
    xnodcf: f64,
    omgcof: f64,
    xmcof: f64,
    // Long-period coefficients.
    xlcof: f64,
    aycof: f64,
    delmo: f64,
    sinmo: f64,
}

impl Sgp4 {
    /// Initialise from TLE mean elements.
    pub fn new(el: &MeanElements) -> Result<Sgp4, Sgp4Error> {
        if el.mean_motion_rev_per_day <= 0.0 {
            return Err(Sgp4Error::BadMeanMotion);
        }
        let e0 = el.eccentricity;
        if !(0.0..1.0).contains(&e0) {
            return Err(Sgp4Error::BadEccentricity { e: e0 });
        }
        let period_min = 1_440.0 / el.mean_motion_rev_per_day;
        if period_min >= 225.0 {
            return Err(Sgp4Error::DeepSpace { period_min });
        }

        // Kozai mean motion in rad/min.
        let xno = el.mean_motion_rev_per_day * std::f64::consts::TAU / 1_440.0;
        let i0 = el.inclination;
        let cosio = i0.cos();
        let sinio = i0.sin();
        let theta2 = cosio * cosio;
        let x3thm1 = 3.0 * theta2 - 1.0;
        let betao2 = 1.0 - e0 * e0;
        let betao = betao2.sqrt();

        // Brouwer mean-motion recovery (un-Kozai).
        let a1 = (XKE / xno).powf(2.0 / 3.0);
        let del1 = 1.5 * CK2 * x3thm1 / (a1 * a1 * betao * betao2);
        let ao = a1 * (1.0 - del1 * (1.0 / 3.0 + del1 * (1.0 + 134.0 / 81.0 * del1)));
        let delo = 1.5 * CK2 * x3thm1 / (ao * ao * betao * betao2);
        let xnodp = xno / (1.0 + delo);
        // Vallado's revision recomputes the semi-major axis from the
        // un-Kozai'd mean motion (the classic STR#3 `ao/(1−δ₀)` differs in
        // the second order; operational SGP4 — and our oracle — use this).
        let aodp = (XKE / xnodp).powf(2.0 / 3.0);

        // Perigee-dependent atmosphere boundary.
        let perigee_km = (aodp * (1.0 - e0) - 1.0) * XKMPER;
        let (s4, qoms24) = if perigee_km < 156.0 {
            let s4 = if perigee_km < 98.0 {
                20.0
            } else {
                perigee_km - 78.0
            };
            let qoms24 = ((120.0 - s4) / XKMPER).powi(4);
            (s4 / XKMPER + 1.0, qoms24)
        } else {
            (S0, QOMS2T)
        };

        let pinvsq = 1.0 / (aodp * aodp * betao2 * betao2);
        let tsi = 1.0 / (aodp - s4);
        let eta = aodp * e0 * tsi;
        let etasq = eta * eta;
        let eeta = e0 * eta;
        let psisq = (1.0 - etasq).abs();
        let coef = qoms24 * tsi.powi(4);
        let coef1 = coef / psisq.powf(3.5);
        let c2 = coef1
            * xnodp
            * (aodp * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq))
                + 0.75 * CK2 * tsi / psisq * x3thm1 * (8.0 + 3.0 * etasq * (8.0 + etasq)));
        let c1 = el.bstar * c2;
        let a3ovk2 = -J3 / CK2;
        let c3 = if e0 > 1.0e-4 {
            coef * tsi * a3ovk2 * xnodp * sinio / e0
        } else {
            0.0
        };
        let x1mth2 = 1.0 - theta2;
        let c4 = 2.0
            * xnodp
            * coef1
            * aodp
            * betao2
            * (eta * (2.0 + 0.5 * etasq) + e0 * (0.5 + 2.0 * etasq)
                - 2.0 * CK2 * tsi / (aodp * psisq)
                    * (-3.0 * x3thm1 * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta))
                        + 0.75
                            * x1mth2
                            * (2.0 * etasq - eeta * (1.0 + etasq))
                            * (2.0 * el.arg_perigee).cos()));
        let c5 = 2.0 * coef1 * aodp * betao2 * (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

        let theta4 = theta2 * theta2;
        let temp1 = 3.0 * CK2 * pinvsq * xnodp;
        let temp2 = temp1 * CK2 * pinvsq;
        let temp3 = 1.25 * CK4 * pinvsq * pinvsq * xnodp;
        let xmdot = xnodp
            + 0.5 * temp1 * betao * x3thm1
            + 0.0625 * temp2 * betao * (13.0 - 78.0 * theta2 + 137.0 * theta4);
        let x1m5th = 1.0 - 5.0 * theta2;
        let omgdot = -0.5 * temp1 * x1m5th
            + 0.0625 * temp2 * (7.0 - 114.0 * theta2 + 395.0 * theta4)
            + temp3 * (3.0 - 36.0 * theta2 + 49.0 * theta4);
        let xhdot1 = -temp1 * cosio;
        let xnodot = xhdot1
            + (0.5 * temp2 * (4.0 - 19.0 * theta2) + 2.0 * temp3 * (3.0 - 7.0 * theta2)) * cosio;
        let omgcof = el.bstar * c3 * el.arg_perigee.cos();
        let xmcof = if e0 > 1.0e-4 {
            -2.0 / 3.0 * coef * el.bstar / eeta
        } else {
            0.0
        };
        let xnodcf = 3.5 * betao2 * xhdot1 * c1;
        let t2cof = 1.5 * c1;
        let xlcof = 0.125 * a3ovk2 * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio);
        let aycof = 0.25 * a3ovk2 * sinio;
        let delmo = (1.0 + eta * el.mean_anomaly.cos()).powi(3);
        let sinmo = el.mean_anomaly.sin();
        let x7thm1 = 7.0 * theta2 - 1.0;

        // Simple-drag flag for very low perigees (< 220 km).
        let isimp = aodp * (1.0 - e0) < 220.0 / XKMPER + 1.0;
        let (d2, d3, d4, t3cof, t4cof, t5cof) = if isimp {
            (0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        } else {
            let c1sq = c1 * c1;
            let d2 = 4.0 * aodp * tsi * c1sq;
            let temp = d2 * tsi * c1 / 3.0;
            let d3 = (17.0 * aodp + s4) * temp;
            let d4 = 0.5 * temp * aodp * tsi * (221.0 * aodp + 31.0 * s4) * c1;
            let t3cof = d2 + 2.0 * c1sq;
            let t4cof = 0.25 * (3.0 * d3 + c1 * (12.0 * d2 + 10.0 * c1sq));
            let t5cof =
                0.2 * (3.0 * d4 + 12.0 * c1 * d3 + 6.0 * d2 * d2 + 15.0 * c1sq * (2.0 * d2 + c1sq));
            (d2, d3, d4, t3cof, t4cof, t5cof)
        };

        Ok(Sgp4 {
            e0,
            i0,
            raan0: el.raan,
            argp0: el.arg_perigee,
            m0: el.mean_anomaly,
            bstar: el.bstar,
            xnodp,
            aodp,
            cosio,
            sinio,
            x3thm1,
            x1mth2,
            x7thm1,
            isimp,
            eta,
            c1,
            c4,
            c5,
            d2,
            d3,
            d4,
            t2cof,
            t3cof,
            t4cof,
            t5cof,
            xmdot,
            omgdot,
            xnodot,
            xnodcf,
            omgcof,
            xmcof,
            xlcof,
            aycof,
            delmo,
            sinmo,
        })
    }

    /// Semi-major axis recovered at epoch (km).
    pub fn semi_major_axis_km(&self) -> f64 {
        self.aodp * XKMPER
    }

    /// Propagate to `tsince` minutes past the TLE epoch. Returns position
    /// (km) and velocity (km/s) in the TEME frame.
    pub fn propagate(&self, tsince_min: f64) -> Result<CartesianState, Sgp4Error> {
        let t = tsince_min;

        // --- Secular gravity + drag. ---
        let xmdf = self.m0 + self.xmdot * t;
        let omgadf = self.argp0 + self.omgdot * t;
        let xnoddf = self.raan0 + self.xnodot * t;
        let mut omega = omgadf;
        let mut xmp = xmdf;
        let tsq = t * t;
        let xnode = xnoddf + self.xnodcf * tsq;
        let mut tempa = 1.0 - self.c1 * t;
        let mut tempe = self.bstar * self.c4 * t;
        let mut templ = self.t2cof * tsq;
        if !self.isimp {
            let delomg = self.omgcof * t;
            let delm = self.xmcof * ((1.0 + self.eta * xmdf.cos()).powi(3) - self.delmo);
            let temp = delomg + delm;
            xmp = xmdf + temp;
            omega = omgadf - temp;
            let tcube = tsq * t;
            let tfour = t * tcube;
            tempa -= self.d2 * tsq + self.d3 * tcube + self.d4 * tfour;
            tempe += self.bstar * self.c5 * (xmp.sin() - self.sinmo);
            templ += self.t3cof * tcube + self.t4cof * tfour + tfour * t * self.t5cof;
        }
        let a = self.aodp * tempa * tempa;
        if a < 1.0 {
            return Err(Sgp4Error::Decayed { tsince_min });
        }
        let e = self.e0 - tempe;
        if !(-0.001..1.0).contains(&e) {
            return Err(Sgp4Error::Decayed { tsince_min });
        }
        let e = e.max(1.0e-6);
        let xl = xmp + omega + xnode + self.xnodp * templ;
        let xn = XKE / a.powf(1.5);

        // --- Long-period periodics. ---
        let axn = e * omega.cos();
        let temp = 1.0 / (a * (1.0 - e * e));
        let xll = temp * self.xlcof * axn;
        let aynl = temp * self.aycof;
        let xlt = xl + xll;
        let ayn = e * omega.sin() + aynl;

        // --- Kepler's equation for (E + ω). ---
        let capu = (xlt - xnode).rem_euclid(std::f64::consts::TAU);
        let mut epw = capu;
        let (mut sinepw, mut cosepw) = (0.0, 0.0);
        let (mut ecose, mut esine) = (0.0, 0.0);
        for _ in 0..10 {
            sinepw = epw.sin();
            cosepw = epw.cos();
            ecose = axn * cosepw + ayn * sinepw;
            esine = axn * sinepw - ayn * cosepw;
            let f = capu - epw + esine;
            if f.abs() < 1.0e-12 {
                break;
            }
            let fdot = 1.0 - ecose;
            let mut delta = f / fdot;
            // Standard SGP4 safeguard: cap the first correction at 0.95.
            if delta.abs() > 0.95 {
                delta = 0.95 * delta.signum();
            }
            epw += delta;
        }

        // --- Short-period preliminary quantities. ---
        let elsq = axn * axn + ayn * ayn;
        let pl = a * (1.0 - elsq);
        if pl < 0.0 {
            return Err(Sgp4Error::Decayed { tsince_min });
        }
        let r = a * (1.0 - ecose);
        let invr = 1.0 / r;
        let rdot = XKE * a.sqrt() * esine * invr;
        let rfdot = XKE * pl.sqrt() * invr;
        let betal = (1.0 - elsq).sqrt();
        let temp3 = esine / (1.0 + betal);
        let cosu = a * invr * (cosepw - axn + ayn * temp3);
        let sinu = a * invr * (sinepw - ayn - axn * temp3);
        let u = sinu.atan2(cosu);
        let sin2u = 2.0 * sinu * cosu;
        let cos2u = 2.0 * cosu * cosu - 1.0;
        let temp = 1.0 / pl;
        let temp1 = CK2 * temp;
        let temp2 = temp1 * temp;

        // --- Short-period periodics. ---
        let rk = r * (1.0 - 1.5 * temp2 * betal * self.x3thm1) + 0.5 * temp1 * self.x1mth2 * cos2u;
        let uk = u - 0.25 * temp2 * self.x7thm1 * sin2u;
        let xnodek = xnode + 1.5 * temp2 * self.cosio * sin2u;
        let xinck = self.i0 + 1.5 * temp2 * self.cosio * self.sinio * cos2u;
        let rdotk = rdot - xn * temp1 * self.x1mth2 * sin2u;
        let rfdotk = rfdot + xn * temp1 * (self.x1mth2 * cos2u + 1.5 * self.x3thm1);

        // --- Orientation vectors and unit conversion. ---
        let (sin_uk, cos_uk) = uk.sin_cos();
        let (sin_nodek, cos_nodek) = xnodek.sin_cos();
        let (sin_inck, cos_inck) = xinck.sin_cos();
        let m = Vec3::new(-sin_nodek * cos_inck, cos_nodek * cos_inck, sin_inck);
        let n = Vec3::new(cos_nodek, sin_nodek, 0.0);
        let u_vec = m * sin_uk + n * cos_uk;
        let v_vec = m * cos_uk - n * sin_uk;

        Ok(CartesianState {
            position: u_vec * (rk * XKMPER),
            velocity: (u_vec * rdotk + v_vec * rfdotk) * (XKMPER / 60.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal test-local TLE field extraction (the full parser lives in
    /// `kessler-population`, which depends on this crate).
    fn parse_tle_for_tests(line1: &str, line2: &str) -> MeanElements {
        let f = |line: &str, a: usize, b: usize| -> f64 {
            line[a..b].trim().parse().expect("numeric TLE field")
        };
        // B*: mantissa ±XXXXX and signed exponent, columns 54–61 of line 1.
        let raw = line1[53..61].trim();
        let (mantissa, exponent) = raw.split_at(raw.len() - 2);
        let mantissa: f64 = format!("0.{}", mantissa.trim_start_matches(['+', '-']))
            .parse()
            .expect("bstar mantissa");
        let sign = if raw.starts_with('-') { -1.0 } else { 1.0 };
        let exp: i32 = exponent.parse().expect("bstar exponent");
        let bstar = sign * mantissa * 10f64.powi(exp);
        MeanElements {
            mean_motion_rev_per_day: f(line2, 52, 63),
            eccentricity: format!("0.{}", line2[26..33].trim()).parse().unwrap(),
            inclination: f(line2, 8, 16).to_radians(),
            raan: f(line2, 17, 25).to_radians(),
            arg_perigee: f(line2, 34, 42).to_radians(),
            mean_anomaly: f(line2, 43, 51).to_radians(),
            bstar,
        }
    }

    /// Oracle comparison: our SGP4 vs the field-tested `sgp4` crate.
    fn compare_with_oracle(name: &str, line1: &str, line2: &str, times_min: &[f64], tol_km: f64) {
        let oracle_elements =
            sgp4::Elements::from_tle(Some(name.to_string()), line1.as_bytes(), line2.as_bytes())
                .expect("oracle parses the TLE");
        // AFSPC-compatibility mode: the operational constant set our
        // implementation (and the official SGP4 verification baseline)
        // uses; the crate's default mode applies Vallado's "improved"
        // tweaks, which differ by tens of metres.
        let oracle = sgp4::Constants::from_elements_afspc_compatibility_mode(&oracle_elements)
            .expect("oracle initialises");

        let mean = parse_tle_for_tests(line1, line2);
        let ours = Sgp4::new(&mean).expect("our SGP4 initialises");

        for &t in times_min {
            let oracle_state = oracle
                .propagate(sgp4::MinutesSinceEpoch(t))
                .expect("oracle propagates");
            let our_state = ours.propagate(t).expect("our SGP4 propagates");
            let op = Vec3::new(
                oracle_state.position[0],
                oracle_state.position[1],
                oracle_state.position[2],
            );
            let ov = Vec3::new(
                oracle_state.velocity[0],
                oracle_state.velocity[1],
                oracle_state.velocity[2],
            );
            let dp = our_state.position.dist(op);
            let dv = our_state.velocity.dist(ov);
            assert!(
                dp < tol_km,
                "{name} @ t = {t} min: position off by {dp} km\nours:   {:?}\noracle: {op:?}",
                our_state.position
            );
            assert!(
                dv < tol_km / 60.0,
                "{name} @ t = {t} min: velocity off by {dv} km/s"
            );
        }
    }

    const ISS_L1: &str = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
    const ISS_L2: &str = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

    // A Starlink-class TLE (synthetic but format-valid; checksum computed).
    const SL_L1: &str = "1 44238U 19029D   21060.50000000  .00001000  00000-0  70000-4 0  9998";
    const SL_L2: &str = "2 44238  52.9970 150.0000 0001500  90.0000 270.0000 15.05600000100003";

    #[test]
    fn matches_the_oracle_on_the_iss() {
        compare_with_oracle(
            "ISS",
            ISS_L1,
            ISS_L2,
            &[0.0, 10.0, 90.0, 360.0, 1440.0, 4320.0],
            1e-6,
        );
    }

    #[test]
    fn matches_the_oracle_on_a_starlink_class_orbit() {
        compare_with_oracle(
            "STARLINK-CLASS",
            SL_L1,
            SL_L2,
            &[0.0, 45.0, 720.0, 2880.0],
            1e-6,
        );
    }

    #[test]
    fn matches_the_oracle_on_an_eccentric_low_perigee_orbit() {
        // e ≈ 0.19, perigee ~ 400 km: exercises the s4 atmosphere branch
        // boundary and the non-trivial drag terms.
        let l1 = "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753";
        let l2 = "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667";
        // Period ≈ 133 min < 225: near-Earth. (This is the classic
        // Vanguard-1 verification case from the SGP4 test suite.)
        compare_with_oracle("VANGUARD-1", l1, l2, &[0.0, 120.0, 360.0, 1440.0], 1e-6);
    }

    #[test]
    fn deep_space_orbits_are_rejected() {
        // A GEO-period element set (mean motion ~1 rev/day).
        let mean = MeanElements {
            mean_motion_rev_per_day: 1.0027,
            eccentricity: 0.0002,
            inclination: 0.01,
            raan: 1.0,
            arg_perigee: 2.0,
            mean_anomaly: 3.0,
            bstar: 0.0,
        };
        assert!(matches!(Sgp4::new(&mean), Err(Sgp4Error::DeepSpace { .. })));
    }

    #[test]
    fn invalid_elements_are_rejected() {
        let mut mean = MeanElements {
            mean_motion_rev_per_day: 15.0,
            eccentricity: 0.001,
            inclination: 0.9,
            raan: 0.0,
            arg_perigee: 0.0,
            mean_anomaly: 0.0,
            bstar: 0.0,
        };
        mean.eccentricity = 1.5;
        assert!(matches!(
            Sgp4::new(&mean),
            Err(Sgp4Error::BadEccentricity { .. })
        ));
        mean.eccentricity = 0.001;
        mean.mean_motion_rev_per_day = 0.0;
        assert!(matches!(Sgp4::new(&mean), Err(Sgp4Error::BadMeanMotion)));
    }

    #[test]
    fn zero_bstar_reduces_to_j2_like_motion() {
        // Without drag, the radius must stay bounded within the osculating
        // apsides over many revolutions.
        let mean = MeanElements {
            mean_motion_rev_per_day: 15.5,
            eccentricity: 0.001,
            inclination: 0.9,
            raan: 1.0,
            arg_perigee: 2.0,
            mean_anomaly: 3.0,
            bstar: 0.0,
        };
        let prop = Sgp4::new(&mean).unwrap();
        let a_km = prop.semi_major_axis_km();
        for k in 0..100 {
            let state = prop.propagate(k as f64 * 14.4).unwrap();
            let r = state.position.norm();
            assert!(
                (r - a_km).abs() < 0.01 * a_km,
                "r = {r} km vs a = {a_km} km at sample {k}"
            );
        }
    }
}
