//! Orbit-plane geometry used by the classical filter chain.
//!
//! The orbit-path and time filters (§II) reason about *pairs of orbital
//! planes*: their relative inclination, the mutual node line where they
//! intersect, and each orbit's radius when crossing that line. This module
//! provides those primitives on top of [`KeplerElements`].

use crate::elements::KeplerElements;
use crate::propagator::perifocal_to_eci;
use kessler_math::angles::wrap_tau;
use kessler_math::Vec3;

/// Unit normal of the orbital plane (direction of the angular momentum).
pub fn orbit_normal(el: &KeplerElements) -> Vec3 {
    // The normal is the Z axis of the perifocal frame expressed in ECI.
    perifocal_to_eci(el.raan, el.inclination, el.arg_perigee).col(2)
}

/// Angle between two orbital planes in `[0, π/2]`.
///
/// Planes (not oriented orbits) are identified with their normal up to
/// sign, so the relative inclination folds angles beyond 90°.
pub fn relative_inclination(a: &KeplerElements, b: &KeplerElements) -> f64 {
    let ang = orbit_normal(a).angle_to(orbit_normal(b));
    ang.min(std::f64::consts::PI - ang)
}

/// Mutual node line of two non-coplanar orbits: the unit vector along the
/// intersection of the two orbital planes. Returns `None` when the planes
/// are (numerically) coplanar and no unique node line exists.
pub fn mutual_node(a: &KeplerElements, b: &KeplerElements) -> Option<Vec3> {
    orbit_normal(a).cross(orbit_normal(b)).normalized()
}

/// True anomaly at which an orbit crosses the (plane-projected) direction
/// `dir`, in `[0, 2π)`.
///
/// `dir` need not lie exactly in the orbital plane; it is projected onto
/// it. The anomaly of the *opposite* crossing is the returned value + π.
pub fn true_anomaly_of_direction(el: &KeplerElements, dir: Vec3) -> f64 {
    let rot = perifocal_to_eci(el.raan, el.inclination, el.arg_perigee);
    // Into the perifocal frame (rotation transpose = inverse).
    let local = rot.transpose() * dir;
    wrap_tau(local.y.atan2(local.x))
}

/// Radii of an orbit at both crossings of the node direction `node`:
/// `(r_at_node, r_at_antinode)` in km.
pub fn radii_at_node(el: &KeplerElements, node: Vec3) -> (f64, f64) {
    let f = true_anomaly_of_direction(el, node);
    (
        el.radius_at_true_anomaly(f),
        el.radius_at_true_anomaly(f + std::f64::consts::PI),
    )
}

/// Position on the orbit (ECI, km) at a given true anomaly.
pub fn position_at_true_anomaly(el: &KeplerElements, f: f64) -> Vec3 {
    let r = el.radius_at_true_anomaly(f);
    let rot = perifocal_to_eci(el.raan, el.inclination, el.arg_perigee);
    let (s, c) = f.sin_cos();
    rot.col(0) * (r * c) + rot.col(1) * (r * s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    fn el(a: f64, e: f64, i: f64, raan: f64, argp: f64) -> KeplerElements {
        KeplerElements::new(a, e, i, raan, argp, 0.0).unwrap()
    }

    #[test]
    fn equatorial_orbit_normal_is_z() {
        let n = orbit_normal(&el(7e3, 0.0, 0.0, 0.0, 0.0));
        assert!(n.dist(Vec3::Z) < 1e-12);
    }

    #[test]
    fn polar_orbit_normal_is_horizontal() {
        let n = orbit_normal(&el(7e3, 0.0, FRAC_PI_2, 0.0, 0.0));
        assert!(n.z.abs() < 1e-12);
        // For Ω = 0 the ascending node is +X, so the normal is −Y… check it
        // is perpendicular to both +X and +Z.
        assert!(n.dot(Vec3::X).abs() < 1e-12);
    }

    #[test]
    fn relative_inclination_of_identical_planes_is_zero() {
        let a = el(7e3, 0.01, 0.7, 1.0, 2.0);
        let b = el(9e3, 0.2, 0.7, 1.0, 5.0); // same plane, different shape
        assert!(relative_inclination(&a, &b) < 1e-12);
    }

    #[test]
    fn relative_inclination_folds_retrograde_planes() {
        // i = 0 vs i = π is the same *plane* traversed the other way.
        let a = el(7e3, 0.0, 0.0, 0.0, 0.0);
        let b = el(7e3, 0.0, PI, 0.0, 0.0);
        assert!(relative_inclination(&a, &b) < 1e-12);
    }

    #[test]
    fn perpendicular_planes_have_right_angle() {
        let a = el(7e3, 0.0, 0.0, 0.0, 0.0);
        let b = el(7e3, 0.0, FRAC_PI_2, 0.0, 0.0);
        assert!((relative_inclination(&a, &b) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn mutual_node_of_coplanar_orbits_is_none() {
        let a = el(7e3, 0.0, 0.3, 1.0, 0.0);
        let b = el(8e3, 0.1, 0.3, 1.0, 2.0);
        assert!(mutual_node(&a, &b).is_none());
    }

    #[test]
    fn mutual_node_lies_in_both_planes() {
        let a = el(7e3, 0.05, 0.9, 0.3, 1.0);
        let b = el(7.5e3, 0.1, 1.4, 2.0, 0.5);
        let node = mutual_node(&a, &b).unwrap();
        assert!(node.dot(orbit_normal(&a)).abs() < 1e-12);
        assert!(node.dot(orbit_normal(&b)).abs() < 1e-12);
    }

    #[test]
    fn anomaly_of_perigee_direction_is_zero() {
        let o = el(9e3, 0.4, 0.8, 1.2, 2.1);
        let perigee_dir = position_at_true_anomaly(&o, 0.0).normalized().unwrap();
        let f = true_anomaly_of_direction(&o, perigee_dir);
        assert!(f.min(TAU - f) < 1e-9, "f = {f}");
    }

    #[test]
    fn position_at_true_anomaly_matches_propagated_state() {
        use crate::kepler::{ContourSolver, KeplerSolver};
        use crate::propagator::PropagationConstants;
        let o = KeplerElements::new(8_200.0, 0.25, 1.1, 0.4, 3.0, 2.0).unwrap();
        let pc = PropagationConstants::from_elements(&o);
        let solver = ContourSolver::default();
        let t = 1_234.0;
        // Propagate, then recompute from the resulting true anomaly.
        let m = o.mean_anomaly_at(t);
        let ecc_anom = solver.ecc_anomaly(m, o.eccentricity);
        let f = crate::anomaly::ecc_to_true(ecc_anom, o.eccentricity);
        let via_geometry = position_at_true_anomaly(&o, f);
        let via_propagation = pc.position(t, &solver);
        assert!(via_geometry.dist(via_propagation) < 1e-6);
    }

    #[test]
    fn radii_at_node_are_between_apsides() {
        let a = el(9e3, 0.3, 0.9, 0.3, 1.0);
        let b = el(9.5e3, 0.2, 1.4, 2.0, 0.5);
        let node = mutual_node(&a, &b).unwrap();
        let (r1, r2) = radii_at_node(&a, node);
        for r in [r1, r2] {
            assert!(r >= a.perigee_radius() - 1e-9);
            assert!(r <= a.apogee_radius() + 1e-9);
        }
    }

    proptest! {
        #[test]
        fn orbit_normal_is_unit_and_tilted_by_inclination(
            i in 0.0..PI, raan in 0.0..TAU, argp in 0.0..TAU
        ) {
            let o = el(7e3, 0.1, i, raan, argp);
            let n = orbit_normal(&o);
            prop_assert!((n.norm() - 1.0).abs() < 1e-12);
            // The angle between the normal and +Z is the inclination.
            prop_assert!((n.angle_to(Vec3::Z) - i).abs() < 1e-9);
        }

        #[test]
        fn relative_inclination_is_symmetric_and_bounded(
            i1 in 0.0..PI, i2 in 0.0..PI, r1 in 0.0..TAU, r2 in 0.0..TAU
        ) {
            let a = el(7e3, 0.0, i1, r1, 0.0);
            let b = el(8e3, 0.1, i2, r2, 1.0);
            let ab = relative_inclination(&a, &b);
            let ba = relative_inclination(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-12);
            prop_assert!((0.0..=FRAC_PI_2 + 1e-12).contains(&ab));
        }

        #[test]
        fn node_anomalies_are_antipodal(
            i1 in 0.1..3.0f64, r1 in 0.0..TAU, argp in 0.0..TAU
        ) {
            let a = el(7e3, 0.2, i1.min(PI - 1e-3), r1, argp);
            let b = el(8e3, 0.1, (i1 + 0.7).min(PI - 1e-3), wrap_tau(r1 + 1.0), 0.3);
            if let Some(node) = mutual_node(&a, &b) {
                let f_plus = true_anomaly_of_direction(&a, node);
                let f_minus = true_anomaly_of_direction(&a, -node);
                prop_assert!(
                    kessler_math::angles::separation(f_plus + PI, f_minus) < 1e-9
                );
            }
        }
    }
}
