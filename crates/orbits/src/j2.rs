//! Secular J2-perturbed propagation.
//!
//! The paper's evaluation uses pure two-body (Kepler) propagation; its
//! future-work section suggests "exchanging parts of the algorithm, like …
//! other propagators" (§VI). This module implements the first-order secular
//! J2 model — the dominant perturbation for the LEO populations the paper
//! screens — as a drop-in alternative: the node, the argument of perigee
//! and the mean anomaly drift linearly at the classical rates
//! (Vallado §9.4):
//!
//! ```text
//!   Ω̇  = −(3/2)·J₂·n·(R_E/p)²·cos i
//!   ω̇  =  (3/4)·J₂·n·(R_E/p)²·(5·cos²i − 1)
//!   ΔṀ =  (3/4)·J₂·n·(R_E/p)²·√(1−e²)·(3·cos²i − 1)
//! ```
//!
//! Because the orbital *plane* now rotates, the perifocal → ECI rotation
//! can no longer be precomputed once; [`J2Propagator`] therefore trades a
//! per-sample `sin_cos` triple for physical fidelity. The screeners keep
//! the paper's two-body model; this propagator is exercised by its own
//! tests, the solver benchmarks and the `j2_drift` example.

use crate::constants::{MU_EARTH, R_EARTH};
use crate::elements::KeplerElements;
use crate::kepler::KeplerSolver;
use crate::propagator::perifocal_to_eci;
use crate::state::CartesianState;
use kessler_math::angles::wrap_tau;

/// Earth's second zonal harmonic (WGS-84).
pub const J2: f64 = 1.082_626_68e-3;

/// Per-satellite J2 propagation record: epoch elements plus the secular
/// drift rates.
#[derive(Debug, Clone, Copy)]
pub struct J2Propagator {
    elements: KeplerElements,
    /// Mean motion including the secular mean-anomaly correction (rad/s).
    pub mean_motion_j2: f64,
    /// Nodal regression rate Ω̇ (rad/s).
    pub raan_rate: f64,
    /// Apsidal rotation rate ω̇ (rad/s).
    pub argp_rate: f64,
}

impl J2Propagator {
    /// Build from epoch elements.
    pub fn new(elements: KeplerElements) -> J2Propagator {
        let n = elements.mean_motion();
        let p = elements.semi_latus_rectum();
        let cos_i = elements.inclination.cos();
        let factor = 1.5 * J2 * n * (R_EARTH / p).powi(2);
        let raan_rate = -factor * cos_i;
        let argp_rate = 0.5 * factor * (5.0 * cos_i * cos_i - 1.0);
        let m_rate_correction = 0.5
            * factor
            * (1.0 - elements.eccentricity * elements.eccentricity).sqrt()
            * (3.0 * cos_i * cos_i - 1.0);
        J2Propagator {
            elements,
            mean_motion_j2: n + m_rate_correction,
            raan_rate,
            argp_rate,
        }
    }

    /// Epoch elements.
    pub fn elements(&self) -> &KeplerElements {
        &self.elements
    }

    /// Osculating-style elements at `dt` seconds past epoch (secular drift
    /// applied to Ω, ω, M; shape elements a/e/i are constant to first
    /// order).
    pub fn elements_at(&self, dt: f64) -> KeplerElements {
        let el = &self.elements;
        KeplerElements {
            semi_major_axis: el.semi_major_axis,
            eccentricity: el.eccentricity,
            inclination: el.inclination,
            raan: wrap_tau(el.raan + self.raan_rate * dt),
            arg_perigee: wrap_tau(el.arg_perigee + self.argp_rate * dt),
            mean_anomaly: wrap_tau(el.mean_anomaly + self.mean_motion_j2 * dt),
        }
    }

    /// Propagate to a Cartesian state at `dt` seconds past epoch.
    pub fn propagate<S: KeplerSolver + ?Sized>(&self, dt: f64, solver: &S) -> CartesianState {
        let el = self.elements_at(dt);
        let ecc_anom = solver.ecc_anomaly(el.mean_anomaly, el.eccentricity);
        let (s, c) = ecc_anom.sin_cos();
        let sqrt_1me2 = (1.0 - el.eccentricity * el.eccentricity).sqrt();
        let xp = el.semi_major_axis * (c - el.eccentricity);
        let yp = el.semi_major_axis * sqrt_1me2 * s;
        let r = el.semi_major_axis * (1.0 - el.eccentricity * c);
        let n = (MU_EARTH / el.semi_major_axis.powi(3)).sqrt();
        let k = n * el.semi_major_axis * el.semi_major_axis / r;
        let rot = perifocal_to_eci(el.raan, el.inclination, el.arg_perigee);
        CartesianState {
            position: rot.col(0) * xp + rot.col(1) * yp,
            velocity: rot.col(0) * (-k * s) + rot.col(1) * (k * sqrt_1me2 * c),
        }
    }

    /// The inclination at which Ω̇ matches the Sun's apparent mean motion
    /// (≈ 0.9856°/day eastward) for a given near-circular orbit — the
    /// Sun-synchronous condition. Returns `None` when no such inclination
    /// exists (orbit too high).
    pub fn sun_synchronous_inclination(semi_major_axis: f64, eccentricity: f64) -> Option<f64> {
        // Required Ω̇: 360° per tropical year.
        let target = 2.0 * std::f64::consts::PI / (365.242_2 * 86_400.0);
        let n = (MU_EARTH / semi_major_axis.powi(3)).sqrt();
        let p = semi_major_axis * (1.0 - eccentricity * eccentricity);
        let factor = -1.5 * J2 * n * (R_EARTH / p).powi(2);
        let cos_i = target / factor;
        if cos_i.abs() <= 1.0 {
            Some(cos_i.acos())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kepler::ContourSolver;

    fn el(a: f64, e: f64, i_deg: f64) -> KeplerElements {
        KeplerElements::new(a, e, i_deg.to_radians(), 1.0, 0.5, 0.2).unwrap()
    }

    #[test]
    fn polar_orbit_has_no_nodal_regression() {
        let j2 = J2Propagator::new(el(7_000.0, 0.001, 90.0));
        assert!(j2.raan_rate.abs() < 1e-15);
    }

    #[test]
    fn prograde_leo_regresses_westward_at_textbook_rate() {
        // ISS-like: a = 6 780 km, i = 51.6° → Ω̇ ≈ −5.0°/day (Vallado).
        let j2 = J2Propagator::new(el(6_780.0, 0.001, 51.6));
        let deg_per_day = j2.raan_rate.to_degrees() * 86_400.0;
        assert!(
            (-5.4..=-4.6).contains(&deg_per_day),
            "Ω̇ = {deg_per_day} °/day"
        );
    }

    #[test]
    fn sun_synchronous_inclination_matches_convention() {
        // 700 km circular SSO: i ≈ 98.2° (textbook value).
        let i = J2Propagator::sun_synchronous_inclination(R_EARTH + 700.0, 0.001).unwrap();
        assert!(
            (97.5..99.0).contains(&i.to_degrees()),
            "i = {} deg",
            i.to_degrees()
        );
        // No SSO solution far out (GEO).
        assert!(J2Propagator::sun_synchronous_inclination(42_164.0, 0.0).is_none());
    }

    #[test]
    fn sun_synchronous_orbit_regresses_at_solar_rate() {
        let a = R_EARTH + 700.0;
        let i = J2Propagator::sun_synchronous_inclination(a, 0.001).unwrap();
        let elements = KeplerElements::new(a, 0.001, i, 0.0, 0.0, 0.0).unwrap();
        let j2 = J2Propagator::new(elements);
        let deg_per_day = j2.raan_rate.to_degrees() * 86_400.0;
        assert!(
            (deg_per_day - 0.9856).abs() < 1e-3,
            "Ω̇ = {deg_per_day} °/day"
        );
    }

    #[test]
    fn critical_inclination_freezes_the_apsides() {
        // ω̇ ∝ (5 cos²i − 1) vanishes at i ≈ 63.43° (Molniya design).
        let i_crit = (1.0f64 / 5.0).sqrt().acos().to_degrees();
        let j2 = J2Propagator::new(el(26_600.0, 0.7, i_crit));
        assert!(j2.argp_rate.abs() < 1e-12, "ω̇ = {}", j2.argp_rate);
    }

    #[test]
    fn j2_reduces_to_two_body_at_short_times() {
        use crate::propagator::PropagationConstants;
        let elements = el(7_000.0, 0.01, 60.0);
        let solver = ContourSolver::default();
        let j2 = J2Propagator::new(elements);
        let kepler = PropagationConstants::from_elements(&elements);
        // At dt = 1 s the J2 angular drifts (~1.5e-6 rad/s at LEO) displace
        // the position by ~10 m at most.
        let d = j2
            .propagate(1.0, &solver)
            .position
            .dist(kepler.position(1.0, &solver));
        assert!(d < 0.02, "d = {d} km after 1 s");
        // After a day, the planes have visibly separated.
        let d_day = j2
            .propagate(86_400.0, &solver)
            .position
            .dist(kepler.position(86_400.0, &solver));
        assert!(d_day > 50.0, "d = {d_day} km after 1 day");
    }

    #[test]
    fn drifted_elements_remain_valid() {
        let j2 = J2Propagator::new(el(7_000.0, 0.01, 60.0));
        for dt in [0.0, 3_600.0, 86_400.0, 30.0 * 86_400.0] {
            let e = j2.elements_at(dt);
            assert!((0.0..std::f64::consts::TAU).contains(&e.raan));
            assert!((0.0..std::f64::consts::TAU).contains(&e.arg_perigee));
            assert!((0.0..std::f64::consts::TAU).contains(&e.mean_anomaly));
            assert_eq!(e.semi_major_axis, 7_000.0);
        }
    }

    #[test]
    fn energy_is_conserved_along_the_j2_trajectory() {
        // The secular model keeps a constant, so the two-body energy at the
        // propagated state must stay fixed.
        let j2 = J2Propagator::new(el(7_200.0, 0.05, 45.0));
        let solver = ContourSolver::default();
        let e0 = j2.propagate(0.0, &solver).specific_energy(MU_EARTH);
        for dt in [600.0, 7_200.0, 86_400.0] {
            let e = j2.propagate(dt, &solver).specific_energy(MU_EARTH);
            assert!((e - e0).abs() < 1e-9 * e0.abs());
        }
    }
}
