//! Astrodynamics substrate for the `kessler` conjunction-screening workspace.
//!
//! The paper's screeners need exactly one physical capability: given a
//! satellite's Kepler elements at epoch, compute its Cartesian position and
//! velocity at arbitrary later times, cheaply and for millions of
//! (satellite, time) tuples in parallel. This crate provides that, plus the
//! orbit-geometry primitives the classical filter chain is built from:
//!
//! * [`elements::KeplerElements`] — the six classical elements (Table II of
//!   the paper), validation, and derived quantities (period, apsides).
//! * [`anomaly`] — mean ↔ eccentric ↔ true anomaly conversions.
//! * [`kepler`] — three interchangeable Kepler-equation solvers: a guarded
//!   Newton iteration, Danby's quartic method, and the contour-integration
//!   solver ("Kepler's Goat Herd", Philcox et al. 2021) that the paper's
//!   GPU propagator uses.
//! * [`propagator`] — two-body propagation with per-satellite precomputed
//!   constants (the paper's "Kepler solver data" `a_k`), including batched
//!   parallel propagation via rayon.
//! * [`geometry`] — orbit normals, relative inclination, mutual nodes and
//!   per-anomaly radii, used by the apogee/perigee, coplanarity, orbit-path
//!   and time filters.

pub mod anomaly;
pub mod constants;
pub mod elements;
pub mod geometry;
pub mod j2;
pub mod kepler;
pub mod propagator;
pub mod sgp4;
pub mod state;

pub use elements::KeplerElements;
pub use j2::J2Propagator;
pub use kepler::{
    ContourNodes, ContourSolver, DanbySolver, KeplerSolver, MarkleySolver, NewtonSolver,
};
pub use propagator::{BatchPropagator, PropagationConstants, SoaColumns};
pub use state::CartesianState;
