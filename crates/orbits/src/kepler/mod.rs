//! Solvers for Kepler's equation `M = E − e·sin E`.
//!
//! The paper's propagation step is dominated by this transcendental solve —
//! one per (satellite, time) tuple, millions per screening run — so the
//! solver is pluggable:
//!
//! * [`NewtonSolver`] — guarded Newton–Raphson; the conventional baseline.
//! * [`DanbySolver`] — Danby's quartic-convergence iteration; usually the
//!   fastest CPU method.
//! * [`ContourSolver`] — the contour-integration method of Philcox, Goodman
//!   & Slepian 2021 ("Kepler's Goat Herd"), which the paper ports to the
//!   GPU (§IV-B). Non-iterative and branch-free in its core loop, which is
//!   exactly why it maps well onto wide data-parallel hardware; our GPU
//!   execution simulator runs this solver inside its kernels.
//!
//! All solvers implement [`KeplerSolver`] and are validated against each
//! other and against the closed-form inverse in the test suite.

mod contour;
mod danby;
mod markley;
mod newton;

pub use contour::{ContourNodes, ContourSolver};
pub use danby::DanbySolver;
pub use markley::MarkleySolver;
pub use newton::NewtonSolver;

use kessler_math::angles::wrap_tau;

/// A solver for Kepler's equation.
///
/// Implementations must accept any finite mean anomaly (it is wrapped into
/// `[0, 2π)`) and eccentricities in `[0, 1)`, and return the eccentric
/// anomaly in `[0, 2π)`.
pub trait KeplerSolver: Send + Sync {
    /// Solve `M = E − e·sin E` for `E`.
    fn ecc_anomaly(&self, mean_anomaly: f64, eccentricity: f64) -> f64;

    /// Human-readable solver name for benchmark labels.
    fn name(&self) -> &'static str;
}

/// Reduce a solve to the half-period `M ∈ [0, π]` using the symmetry
/// `E(2π − M) = 2π − E(M)`, and handle the trivial fixed points exactly.
///
/// Returns `Ok(ecc_anomaly)` if the anomaly was a fixed point, otherwise
/// `Err((m_reduced, mirrored))` for the solver core, where `mirrored`
/// indicates the result must be reflected back via `2π − E`.
#[inline]
pub(crate) fn reduce_to_half_period(mean_anomaly: f64, e: f64) -> Result<f64, (f64, bool)> {
    let m = wrap_tau(mean_anomaly);
    if e == 0.0 {
        return Ok(m);
    }
    if m == 0.0 {
        return Ok(0.0);
    }
    if (m - std::f64::consts::PI).abs() < f64::EPSILON {
        return Ok(std::f64::consts::PI);
    }
    if m > std::f64::consts::PI {
        Err((std::f64::consts::TAU - m, true))
    } else {
        Err((m, false))
    }
}

/// Undo the reflection of [`reduce_to_half_period`].
#[inline]
pub(crate) fn unreduce(ecc_anomaly: f64, mirrored: bool) -> f64 {
    if mirrored {
        std::f64::consts::TAU - ecc_anomaly
    } else {
        ecc_anomaly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::ecc_to_mean;
    use proptest::prelude::*;
    use std::f64::consts::{PI, TAU};

    fn solvers() -> Vec<Box<dyn KeplerSolver>> {
        vec![
            Box::new(NewtonSolver::default()),
            Box::new(DanbySolver::default()),
            Box::new(ContourSolver::default()),
            Box::new(MarkleySolver),
        ]
    }

    #[test]
    fn all_solvers_handle_fixed_points() {
        for s in solvers() {
            for e in [0.0, 0.2, 0.7, 0.95] {
                assert!(
                    s.ecc_anomaly(0.0, e).abs() < 1e-12,
                    "{} M=0 e={e}",
                    s.name()
                );
                assert!(
                    (s.ecc_anomaly(PI, e) - PI).abs() < 1e-12,
                    "{} M=π e={e}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn all_solvers_are_exact_for_circular_orbits() {
        for s in solvers() {
            for m in [0.1, 1.0, 3.0, 5.0] {
                assert!(
                    (s.ecc_anomaly(m, 0.0) - m).abs() < 1e-14,
                    "{} failed for circular orbit",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn all_solvers_invert_keplers_equation_on_a_grid() {
        for s in solvers() {
            for i in 1..40 {
                let ecc_anom = i as f64 * TAU / 40.0;
                for e in [0.001, 0.01, 0.1, 0.3, 0.6, 0.9, 0.97] {
                    let m = ecc_to_mean(ecc_anom, e);
                    let back = s.ecc_anomaly(m, e);
                    assert!(
                        kessler_math::angles::separation(back, ecc_anom) < 1e-9,
                        "{}: E = {ecc_anom}, e = {e}, back = {back}",
                        s.name()
                    );
                }
            }
        }
    }

    #[test]
    fn solvers_agree_with_each_other() {
        let all = solvers();
        for i in 0..200 {
            let m = i as f64 * TAU / 200.0;
            let e = 0.005 + 0.95 * ((i * 7) % 200) as f64 / 200.0;
            let reference = all[0].ecc_anomaly(m, e);
            for s in &all[1..] {
                let got = s.ecc_anomaly(m, e);
                assert!(
                    kessler_math::angles::separation(got, reference) < 1e-9,
                    "{} disagrees with {} at M={m}, e={e}: {got} vs {reference}",
                    s.name(),
                    all[0].name()
                );
            }
        }
    }

    #[test]
    fn solvers_wrap_out_of_range_mean_anomaly() {
        for s in solvers() {
            let a = s.ecc_anomaly(1.0, 0.3);
            let b = s.ecc_anomaly(1.0 + TAU, 0.3);
            let c = s.ecc_anomaly(1.0 - TAU, 0.3);
            assert!((a - b).abs() < 1e-9, "{}", s.name());
            assert!((a - c).abs() < 1e-9, "{}", s.name());
        }
    }

    proptest! {
        /// Fundamental inversion property, fuzzed across the full domain for
        /// every solver: solving M(E) must return E.
        #[test]
        fn fuzz_inversion(ecc_anom in 0.0..TAU, e in 0.0..0.98f64) {
            let m = ecc_to_mean(ecc_anom, e);
            for s in solvers() {
                let back = s.ecc_anomaly(m, e);
                prop_assert!(
                    kessler_math::angles::separation(back, ecc_anom) < 1e-8,
                    "{}: E = {}, e = {}, back = {}", s.name(), ecc_anom, e, back
                );
            }
        }

        /// The residual of the returned anomaly must be at solver tolerance.
        #[test]
        fn fuzz_residual(m in 0.0..TAU, e in 0.0..0.98f64) {
            for s in solvers() {
                let ecc_anom = s.ecc_anomaly(m, e);
                let resid = crate::anomaly::kepler_residual(ecc_anom, e, m).abs();
                // Residual may be up to 2π off because of wrapping;
                // normalise first.
                let resid = resid.min((resid - TAU).abs());
                prop_assert!(resid < 1e-8, "{}: M={}, e={}, resid={}", s.name(), m, e, resid);
            }
        }
    }
}
