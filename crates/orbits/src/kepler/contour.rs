//! Contour-integration solver for Kepler's equation
//! ("Kepler's Goat Herd", Philcox, Goodman & Slepian 2021).
//!
//! The paper's propagator is "a modified version of the high-performance
//! Contour Kepler solver" (§IV-B). The method exploits that the unique root
//! `E*` of Kepler's function `f(E) = E − e·sin E − M` inside a closed
//! contour `C` can be written as a ratio of contour integrals:
//!
//! ```text
//!   E* − c = ∮_C (E − c)/f(E) dE  /  ∮_C 1/f(E) dE
//! ```
//!
//! (both integrals pick up the simple pole of `1/f` at `E*` with residue
//! `1/f'(E*)`, which cancels in the ratio). Parameterising `C` as the
//! circle `E(θ) = c + r·e^{iθ}` around the centre of the bracketing
//! interval and discretising with the N-point trapezoid rule — which
//! converges *geometrically* for periodic integrands — gives
//!
//! ```text
//!   E* ≈ c + r · Σ_j e^{2iθ_j}/f(E(θ_j))  /  Σ_j e^{iθ_j}/f(E(θ_j))
//! ```
//!
//! The sum is a fixed-length, branch-free loop: no convergence test, no
//! data-dependent iteration count. That property is why the paper selected
//! it for GPU execution — every CUDA thread runs the identical instruction
//! sequence. Our [`crate::propagator::BatchPropagator`] and the GPU
//! execution simulator use it the same way.

use super::{reduce_to_half_period, unreduce, KeplerSolver};
use kessler_math::Complex;

/// Contour solver with a configurable number of sample points.
#[derive(Debug, Clone, Copy)]
pub struct ContourSolver {
    /// Trapezoid points on the contour. Philcox et al. report double
    /// precision with N = 10 for e ≤ 0.5 and N = 16 covering high
    /// eccentricities; we default to 16.
    pub points: u32,
    /// Apply one Newton polishing step after the contour evaluation. Costs
    /// one extra `sin_cos` and removes the residual discretisation error at
    /// extreme eccentricities.
    pub polish: bool,
}

impl Default for ContourSolver {
    fn default() -> Self {
        ContourSolver {
            points: 16,
            polish: true,
        }
    }
}

/// One precomputed trapezoid node: `(e^{iθ_j}, e^{2iθ_j})`.
type Node = (Complex, Complex);

/// Evaluate the discretised contour ratio for mean anomaly `m ∈ (0, π)`,
/// taking the trapezoid nodes from `nodes`. Shared between the per-call
/// path ([`ContourSolver`], which generates nodes on the fly) and the
/// precomputed-table path ([`ContourNodes`]): because `Complex::cis` is
/// deterministic, both paths feed bit-identical node values through the
/// identical arithmetic sequence, so their results are bit-for-bit equal.
#[inline]
fn contour_estimate_with(m: f64, e: f64, nodes: impl Iterator<Item = Node>) -> f64 {
    // Root bracket on the reduced half period: E ∈ [M, M + e], and the
    // root never exceeds π for M ≤ π because f(π) = π − M ≥ 0.
    let lo = m;
    let hi = (m + e).min(std::f64::consts::PI);
    let c = 0.5 * (lo + hi);
    // Slightly inflate the radius so the contour cannot pass through a
    // root sitting exactly on the bracket edge.
    let r = 0.5 * (hi - lo) * (1.0 + 1e-9) + 1e-12;

    let mut num = Complex::ZERO;
    let mut den = Complex::ZERO;
    for (eit, eit2) in nodes {
        let ecc_anom = Complex::real(c) + eit * r;
        // f(E) = E − e·sin(E) − M evaluated on the contour.
        let f = ecc_anom - ecc_anom.sin() * e - Complex::real(m);
        let inv = Complex::ONE / f;
        den = den + eit * inv;
        num = num + eit2 * inv;
    }
    // For real-coefficient f and a contour symmetric about the real
    // axis, the imaginary parts cancel; take the real part of the ratio.
    c + r * (num / den).re
}

/// The Danby polishing loop + physical-bracket clamp applied after the
/// contour evaluation, shared so both solver flavours finish identically.
#[inline]
fn polish_and_clamp(mut ecc_anom: f64, m: f64, e: f64, polish: bool) -> f64 {
    if polish {
        // A short Danby-style polishing loop. One plain Newton step is
        // enough for e ≲ 0.9, but near-parabolic orbits close to perigee
        // (e → 1, M → 0) leave the contour estimate a few 1e-8 off and
        // f' ≈ 1 − e there, so quadratic convergence needs 2–3 steps.
        for _ in 0..3 {
            let (s, c) = ecc_anom.sin_cos();
            let f = ecc_anom - e * s - m;
            if f.abs() < 1e-14 {
                break;
            }
            let f1 = 1.0 - e * c;
            let d1 = -f / f1;
            let d2 = -f / (f1 + 0.5 * d1 * e * s);
            ecc_anom += d2;
        }
    }
    // Clamp any last-ulp excursions back into the physical bracket.
    ecc_anom.clamp(0.0, std::f64::consts::PI)
}

#[inline]
fn node_at(j: u32, n: u32) -> Node {
    let theta = std::f64::consts::TAU * j as f64 / n as f64;
    let eit = Complex::cis(theta);
    (eit, eit * eit)
}

impl ContourSolver {
    /// Evaluate the discretised contour ratio for mean anomaly `m ∈ (0, π)`.
    #[inline]
    fn contour_estimate(&self, m: f64, e: f64) -> f64 {
        let n = self.points.max(4);
        contour_estimate_with(m, e, (0..n).map(|j| node_at(j, n)))
    }
}

impl KeplerSolver for ContourSolver {
    fn ecc_anomaly(&self, mean_anomaly: f64, e: f64) -> f64 {
        let (m, mirrored) = match reduce_to_half_period(mean_anomaly, e) {
            Ok(done) => return done,
            Err(pair) => pair,
        };
        let estimate = self.contour_estimate(m, e);
        unreduce(polish_and_clamp(estimate, m, e, self.polish), mirrored)
    }

    fn name(&self) -> &'static str {
        "contour"
    }
}

/// A [`ContourSolver`] with its trapezoid nodes `(e^{iθ_j}, e^{2iθ_j})`
/// precomputed once instead of re-evaluated (2 × `points` libm sin/cos
/// calls) on every solve — the batch-propagation hot path runs millions of
/// solves against the same node set, so the table pays for itself on the
/// first satellite.
///
/// Results are **bit-identical** to the originating [`ContourSolver`]: the
/// node values are the same deterministic `cis` outputs, and the estimate,
/// polish, and reduction steps share one code path (asserted in the tests).
#[derive(Debug, Clone)]
pub struct ContourNodes {
    nodes: Vec<Node>,
    polish: bool,
}

impl ContourNodes {
    /// Precompute the node table for `solver`.
    pub fn new(solver: &ContourSolver) -> ContourNodes {
        let n = solver.points.max(4);
        ContourNodes {
            nodes: (0..n).map(|j| node_at(j, n)).collect(),
            polish: solver.polish,
        }
    }
}

impl Default for ContourNodes {
    fn default() -> Self {
        ContourNodes::new(&ContourSolver::default())
    }
}

impl KeplerSolver for ContourNodes {
    fn ecc_anomaly(&self, mean_anomaly: f64, e: f64) -> f64 {
        let (m, mirrored) = match reduce_to_half_period(mean_anomaly, e) {
            Ok(done) => return done,
            Err(pair) => pair,
        };
        let estimate = contour_estimate_with(m, e, self.nodes.iter().copied());
        unreduce(polish_and_clamp(estimate, m, e, self.polish), mirrored)
    }

    fn name(&self) -> &'static str {
        "contour-nodes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::ecc_to_mean;
    use std::f64::consts::TAU;

    #[test]
    fn matches_inverse_to_machine_precision() {
        let s = ContourSolver::default();
        for k in 1..100 {
            let ecc_anom_true = k as f64 * TAU / 100.0;
            for e in [0.0012, 0.05, 0.2, 0.5, 0.8, 0.95] {
                let m = ecc_to_mean(ecc_anom_true, e);
                let got = s.ecc_anomaly(m, e);
                assert!(
                    kessler_math::angles::separation(got, ecc_anom_true) < 1e-10,
                    "E={ecc_anom_true}, e={e}, got={got}"
                );
            }
        }
    }

    #[test]
    fn unpolished_contour_is_already_accurate_at_moderate_e() {
        let s = ContourSolver {
            points: 16,
            polish: false,
        };
        for k in 1..50 {
            let ecc_anom_true = k as f64 * TAU / 50.0;
            let e = 0.3;
            let m = ecc_to_mean(ecc_anom_true, e);
            let got = s.ecc_anomaly(m, e);
            assert!(
                kessler_math::angles::separation(got, ecc_anom_true) < 1e-8,
                "E={ecc_anom_true}, got={got}"
            );
        }
    }

    #[test]
    fn more_points_means_more_accuracy() {
        // Geometric convergence of the trapezoid rule: error with N=32 must
        // not exceed error with N=6 anywhere on a sweep (unpolished).
        let coarse = ContourSolver {
            points: 6,
            polish: false,
        };
        let fine = ContourSolver {
            points: 32,
            polish: false,
        };
        let e = 0.7;
        let mut worst_coarse = 0.0f64;
        let mut worst_fine = 0.0f64;
        for k in 1..60 {
            let ecc_anom_true = k as f64 * TAU / 60.0;
            let m = ecc_to_mean(ecc_anom_true, e);
            worst_coarse = worst_coarse.max(kessler_math::angles::separation(
                coarse.ecc_anomaly(m, e),
                ecc_anom_true,
            ));
            worst_fine = worst_fine.max(kessler_math::angles::separation(
                fine.ecc_anomaly(m, e),
                ecc_anom_true,
            ));
        }
        assert!(
            worst_fine <= worst_coarse,
            "fine {worst_fine} vs coarse {worst_coarse}"
        );
        assert!(worst_fine < 1e-9, "fine contour should be near-exact");
    }

    #[test]
    fn precomputed_nodes_are_bit_identical_to_the_per_call_solver() {
        // The SoA batch propagator relies on this: swapping the per-call
        // solver for the node table must not change a single bit, or the
        // service's delta-vs-cold exact-equality guarantee breaks.
        for solver in [
            ContourSolver::default(),
            ContourSolver {
                points: 6,
                polish: false,
            },
            ContourSolver {
                points: 32,
                polish: true,
            },
        ] {
            let nodes = ContourNodes::new(&solver);
            for k in 0..400 {
                let m = k as f64 * TAU / 400.0;
                for e in [0.0, 1e-6, 0.0012, 0.05, 0.3, 0.7, 0.9, 0.97] {
                    let a = solver.ecc_anomaly(m, e);
                    let b = nodes.ecc_anomaly(m, e);
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "M={m}, e={e}: solver {a} vs nodes {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn branch_free_core_has_fixed_cost() {
        // The contour core performs exactly `points` complex evaluations
        // regardless of (M, e) — verify indirectly by checking the solver
        // gives identical results when called repeatedly (pure function).
        let s = ContourSolver::default();
        let a = s.ecc_anomaly(2.345, 0.67);
        let b = s.ecc_anomaly(2.345, 0.67);
        assert_eq!(a, b);
    }
}
