//! Guarded Newton–Raphson solver for Kepler's equation.

use super::{reduce_to_half_period, unreduce, KeplerSolver};

/// Newton–Raphson with a bisection safeguard.
///
/// Convergence is quadratic; the safeguard (clamping iterates into the
/// bracket `[M, M+e]` valid on the reduced half period) keeps the iteration
/// stable even for near-parabolic eccentricities where the naive method can
/// overshoot badly near perigee.
#[derive(Debug, Clone, Copy)]
pub struct NewtonSolver {
    /// Absolute residual tolerance on `E − e·sin E − M`.
    pub tolerance: f64,
    /// Iteration cap; the solver returns its best iterate when exhausted.
    pub max_iterations: u32,
}

impl Default for NewtonSolver {
    fn default() -> Self {
        NewtonSolver {
            tolerance: 1e-13,
            max_iterations: 32,
        }
    }
}

impl KeplerSolver for NewtonSolver {
    fn ecc_anomaly(&self, mean_anomaly: f64, e: f64) -> f64 {
        let (m, mirrored) = match reduce_to_half_period(mean_anomaly, e) {
            Ok(done) => return done,
            Err(pair) => pair,
        };

        // On [0, π] the root satisfies M <= E <= M + e.
        let (lo, hi) = (m, (m + e).min(std::f64::consts::PI));

        // Starting guess: the classic e-weighted interpolation
        // E₀ = M + e·sin M / (1 − sin(M+e) + sin M) (Smith 1979), which is
        // accurate across the whole (M, e) plane.
        let denom = 1.0 - (m + e).sin() + m.sin();
        let mut ecc_anom = if denom.abs() > 1e-12 {
            (m + e * m.sin() / denom).clamp(lo, hi)
        } else {
            0.5 * (lo + hi)
        };

        for _ in 0..self.max_iterations {
            let (s, c) = ecc_anom.sin_cos();
            let f = ecc_anom - e * s - m;
            if f.abs() <= self.tolerance {
                break;
            }
            let fp = 1.0 - e * c;
            let mut next = ecc_anom - f / fp;
            if !(lo..=hi).contains(&next) || !next.is_finite() {
                // Bisect toward the violated side.
                next = if f > 0.0 {
                    0.5 * (ecc_anom + lo)
                } else {
                    0.5 * (ecc_anom + hi)
                };
            }
            ecc_anom = next;
        }

        unreduce(ecc_anom, mirrored)
    }

    fn name(&self) -> &'static str {
        "newton"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::ecc_to_mean;
    use std::f64::consts::TAU;

    #[test]
    fn converges_to_tight_residual() {
        let s = NewtonSolver::default();
        for e in [0.1, 0.5, 0.9, 0.99] {
            for k in 1..20 {
                let m = k as f64 * TAU / 20.0;
                let ecc_anom = s.ecc_anomaly(m, e);
                let resid = crate::anomaly::kepler_residual(ecc_anom, e, m).abs();
                let resid = resid.min((resid - TAU).abs());
                assert!(resid < 1e-12, "M={m}, e={e}, resid={resid}");
            }
        }
    }

    #[test]
    fn extreme_eccentricity_near_perigee() {
        // Hardest region for Newton: high e, small M. The guarded iteration
        // must still converge.
        let s = NewtonSolver::default();
        for m in [1e-6, 1e-4, 1e-2] {
            let ecc_anom = s.ecc_anomaly(m, 0.99);
            let back = ecc_to_mean(ecc_anom, 0.99);
            assert!((back - m).abs() < 1e-10, "M = {m}, back = {back}");
        }
    }

    #[test]
    fn respects_iteration_cap() {
        let s = NewtonSolver {
            tolerance: 0.0,
            max_iterations: 3,
        };
        // With a zero tolerance we always hit the cap; result is still finite
        // and in range.
        let ecc_anom = s.ecc_anomaly(2.0, 0.8);
        assert!(ecc_anom.is_finite());
        assert!((0.0..TAU).contains(&ecc_anom));
    }
}
