//! Markley's non-iterative solver for Kepler's equation (Markley 1995,
//! "Kepler equation solver", Celestial Mechanics 63).
//!
//! A cubic Padé starter followed by a single fifth-order Householder
//! correction reaches ~1e-15 residuals over the whole (M, e) plane with a
//! *fixed* instruction count — the same property that makes the contour
//! solver attractive for wide data-parallel hardware. Included as a second
//! branch-free backend and as a benchmark comparator (the paper's future
//! work suggests "exchanging parts of the algorithm, like … other
//! propagators", §VI).

use super::{reduce_to_half_period, unreduce, KeplerSolver};
use std::f64::consts::PI;

/// Markley (1995) solver: cubic starter + one 5th-order correction.
#[derive(Debug, Clone, Copy, Default)]
pub struct MarkleySolver;

impl KeplerSolver for MarkleySolver {
    fn ecc_anomaly(&self, mean_anomaly: f64, e: f64) -> f64 {
        let (m, mirrored) = match reduce_to_half_period(mean_anomaly, e) {
            Ok(done) => return done,
            Err(pair) => pair,
        };

        // --- Cubic starter (Markley eqs. 15–21), valid for M ∈ [0, π]. ---
        let pi2 = PI * PI;
        let alpha = (3.0 * pi2 + 1.6 * PI * (PI - m) / (1.0 + e)) / (pi2 - 6.0);
        let d = 3.0 * (1.0 - e) + alpha * e;
        let q = 2.0 * alpha * d * (1.0 - e) - m * m;
        let r = 3.0 * alpha * d * (d - 1.0 + e) * m + m * m * m;
        let w = (r.abs() + (q * q * q + r * r).sqrt()).powf(2.0 / 3.0);
        let mut ecc_anom = (2.0 * r * w / (w * w + w * q + q * q) + m) / d;

        // --- One 5th-order Householder correction (eqs. 24–27). ---
        let (s, c) = ecc_anom.sin_cos();
        let f0 = ecc_anom - e * s - m;
        let f1 = 1.0 - e * c;
        let f2 = e * s;
        let f3 = e * c;
        let f4 = -f2;
        let d3 = -f0 / (f1 - 0.5 * f0 * f2 / f1);
        let d4 = -f0 / (f1 + 0.5 * d3 * f2 + d3 * d3 * f3 / 6.0);
        let d5 = -f0 / (f1 + 0.5 * d4 * f2 + d4 * d4 * f3 / 6.0 + d4 * d4 * d4 * f4 / 24.0);
        ecc_anom += d5;

        // Guard the last ulp against leaving the physical range.
        ecc_anom = ecc_anom.clamp(0.0, PI);
        unreduce(ecc_anom, mirrored)
    }

    fn name(&self) -> &'static str {
        "markley"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::ecc_to_mean;
    use std::f64::consts::TAU;

    #[test]
    fn inverts_keplers_equation_over_a_dense_grid() {
        let s = MarkleySolver;
        for k in 1..200 {
            let ecc_anom_true = k as f64 * TAU / 200.0;
            for e in [0.001, 0.01, 0.1, 0.3, 0.6, 0.9, 0.97] {
                let m = ecc_to_mean(ecc_anom_true, e);
                let got = s.ecc_anomaly(m, e);
                assert!(
                    kessler_math::angles::separation(got, ecc_anom_true) < 1e-9,
                    "E = {ecc_anom_true}, e = {e}, got = {got}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_newton_reference() {
        use crate::kepler::NewtonSolver;
        let markley = MarkleySolver;
        let newton = NewtonSolver::default();
        for i in 0..500 {
            let m = i as f64 * TAU / 500.0;
            let e = 0.002 + 0.95 * ((i * 13) % 500) as f64 / 500.0;
            let a = markley.ecc_anomaly(m, e);
            let b = newton.ecc_anomaly(m, e);
            assert!(
                kessler_math::angles::separation(a, b) < 1e-9,
                "M = {m}, e = {e}: markley {a} vs newton {b}"
            );
        }
    }

    #[test]
    fn handles_fixed_points_and_wrapping() {
        let s = MarkleySolver;
        assert!(s.ecc_anomaly(0.0, 0.7).abs() < 1e-12);
        assert!((s.ecc_anomaly(std::f64::consts::PI, 0.7) - std::f64::consts::PI).abs() < 1e-12);
        let a = s.ecc_anomaly(1.0, 0.3);
        let b = s.ecc_anomaly(1.0 + TAU, 0.3);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn extreme_eccentricity_near_perigee() {
        let s = MarkleySolver;
        for m in [1e-6, 1e-4, 1e-2] {
            let ecc_anom = s.ecc_anomaly(m, 0.99);
            let back = ecc_to_mean(ecc_anom, 0.99);
            assert!((back - m).abs() < 1e-9, "M = {m}, back = {back}");
        }
    }
}
