//! Danby's quartic-convergence solver for Kepler's equation.
//!
//! Danby (1987) accelerates Newton's method with third- and fourth-order
//! correction terms built from the higher derivatives of Kepler's function,
//! reaching machine precision in 2–3 iterations for almost all (M, e).

use super::{reduce_to_half_period, unreduce, KeplerSolver};

/// Danby's method with the classic `M + 0.85·e` starting guess.
#[derive(Debug, Clone, Copy)]
pub struct DanbySolver {
    /// Absolute residual tolerance.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: u32,
}

impl Default for DanbySolver {
    fn default() -> Self {
        DanbySolver {
            tolerance: 1e-13,
            max_iterations: 16,
        }
    }
}

impl KeplerSolver for DanbySolver {
    fn ecc_anomaly(&self, mean_anomaly: f64, e: f64) -> f64 {
        let (m, mirrored) = match reduce_to_half_period(mean_anomaly, e) {
            Ok(done) => return done,
            Err(pair) => pair,
        };

        let (lo, hi) = (m, (m + e).min(std::f64::consts::PI));
        // Danby's recommended starter: on [0, π], sin M >= 0 so the sign
        // term of the general form collapses to +0.85·e.
        let mut ecc_anom = (m + 0.85 * e).clamp(lo, hi);

        for _ in 0..self.max_iterations {
            let (s, c) = ecc_anom.sin_cos();
            let f = ecc_anom - e * s - m;
            if f.abs() <= self.tolerance {
                break;
            }
            let f1 = 1.0 - e * c; // f'
            let f2 = e * s; // f''
            let f3 = e * c; // f'''
            let d1 = -f / f1;
            let d2 = -f / (f1 + 0.5 * d1 * f2);
            let d3 = -f / (f1 + 0.5 * d2 * f2 + d2 * d2 * f3 / 6.0);
            let mut next = ecc_anom + d3;
            if !(lo..=hi).contains(&next) || !next.is_finite() {
                next = if f > 0.0 {
                    0.5 * (ecc_anom + lo)
                } else {
                    0.5 * (ecc_anom + hi)
                };
            }
            ecc_anom = next;
        }

        unreduce(ecc_anom, mirrored)
    }

    fn name(&self) -> &'static str {
        "danby"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anomaly::ecc_to_mean;
    use std::f64::consts::TAU;

    #[test]
    fn quartic_convergence_needs_few_iterations() {
        // Instrument by shrinking the cap: 4 iterations must already reach
        // 1e-12 residuals over a representative sweep.
        let s = DanbySolver {
            tolerance: 1e-13,
            max_iterations: 4,
        };
        for k in 1..50 {
            let ecc_anom_true = k as f64 * TAU / 50.0;
            for e in [0.05, 0.3, 0.7] {
                let m = ecc_to_mean(ecc_anom_true, e);
                let got = s.ecc_anomaly(m, e);
                assert!(
                    kessler_math::angles::separation(got, ecc_anom_true) < 1e-11,
                    "E={ecc_anom_true}, e={e}"
                );
            }
        }
    }

    #[test]
    fn survives_high_eccentricity_near_perigee() {
        let s = DanbySolver::default();
        for m in [1e-8, 1e-5, 1e-3, 0.05] {
            for e in [0.9, 0.97, 0.995] {
                let ecc_anom = s.ecc_anomaly(m, e);
                let back = ecc_to_mean(ecc_anom, e);
                assert!((back - m).abs() < 1e-9, "M={m}, e={e}, back={back}");
            }
        }
    }
}
