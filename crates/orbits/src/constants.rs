//! Physical constants. Units across the workspace: kilometres, seconds,
//! radians (matching the paper, which quotes distances in km and the LEO
//! reference speed as 7.8 km/s).

/// Standard gravitational parameter of Earth, km³/s² (WGS-84 value).
#[allow(clippy::inconsistent_digit_grouping)]
pub const MU_EARTH: f64 = 398_600.4418;

/// Mean equatorial radius of Earth, km.
pub const R_EARTH: f64 = 6_378.137;

/// Typical LEO orbital speed used by the paper's cell-size rule (Eq. 1), km/s.
pub const LEO_SPEED: f64 = 7.8;

/// Geostationary orbit radius, km. The paper sizes its simulation cube as
/// (85 000 km)³ to cover "the entire space up to the geostationary orbit".
pub const GEO_RADIUS: f64 = 42_164.0;

/// Half-extent of the paper's simulation cube, km.
pub const SIM_HALF_EXTENT: f64 = 42_500.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_period_is_close_to_sidereal_day() {
        // T = 2π √(a³/μ) for a = GEO radius should be ≈ 86 164 s.
        let t = std::f64::consts::TAU * (GEO_RADIUS.powi(3) / MU_EARTH).sqrt();
        assert!((t - 86_164.0).abs() < 30.0, "T = {t}");
    }

    #[test]
    fn leo_speed_matches_circular_orbit_at_700km() {
        // v = √(μ/r) at 700 km altitude ≈ 7.5 km/s; the paper's 7.8 km/s is
        // the conventional LEO upper bound — sanity check the same regime.
        let v = (MU_EARTH / (R_EARTH + 400.0)).sqrt();
        assert!((v - LEO_SPEED).abs() < 0.2, "v = {v}");
    }

    #[test]
    fn simulation_cube_covers_geo() {
        let half = SIM_HALF_EXTENT;
        assert!(half > GEO_RADIUS);
        assert_eq!(2.0 * half, 85_000.0);
    }
}
