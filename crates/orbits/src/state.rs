//! Cartesian orbital state.

use kessler_math::Vec3;
use serde::{Deserialize, Serialize};

/// Position and velocity in the geocentric-equatorial (ECI) frame.
/// Position in km, velocity in km/s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CartesianState {
    pub position: Vec3,
    pub velocity: Vec3,
}

impl CartesianState {
    pub const fn new(position: Vec3, velocity: Vec3) -> CartesianState {
        CartesianState { position, velocity }
    }

    /// Specific angular momentum `h = r × v` (km²/s).
    pub fn angular_momentum(&self) -> Vec3 {
        self.position.cross(self.velocity)
    }

    /// Specific orbital energy `v²/2 − μ/r` (km²/s²).
    pub fn specific_energy(&self, mu: f64) -> f64 {
        0.5 * self.velocity.norm_sq() - mu / self.position.norm()
    }

    /// Speed in km/s.
    pub fn speed(&self) -> f64 {
        self.velocity.norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::MU_EARTH;

    #[test]
    fn circular_orbit_energy_matches_vis_viva() {
        // Circular orbit at radius r: v = √(μ/r), ε = −μ/(2r).
        let r = 7_000.0;
        let v = (MU_EARTH / r).sqrt();
        let s = CartesianState::new(Vec3::new(r, 0.0, 0.0), Vec3::new(0.0, v, 0.0));
        let eps = s.specific_energy(MU_EARTH);
        assert!((eps - (-MU_EARTH / (2.0 * r))).abs() < 1e-9);
    }

    #[test]
    fn angular_momentum_is_perpendicular_to_orbit_plane() {
        let s = CartesianState::new(Vec3::new(7e3, 0.0, 0.0), Vec3::new(0.0, 7.5, 0.0));
        let h = s.angular_momentum();
        assert_eq!(h.normalized().unwrap(), Vec3::Z);
        assert!((h.norm() - 7e3 * 7.5).abs() < 1e-9);
    }
}
