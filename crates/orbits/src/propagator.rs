//! Two-body propagation with per-satellite precomputed constants.
//!
//! The paper splits the reference contour-solver implementation into
//! independent per-(satellite, time) work items and compensates for the
//! lost shared partial computations "by precalculating the reusable parts
//! independently once and then storing them in the global graphics memory"
//! (§IV-B). [`PropagationConstants`] is exactly that per-satellite record —
//! the "Kepler solver data" `a_k` of the memory model in §V-B — and
//! [`BatchPropagator`] is the data-parallel propagation step that consumes
//! it: one logical thread per (satellite, time) tuple (§V-E).

use crate::elements::KeplerElements;
use crate::kepler::{ContourSolver, KeplerSolver};
use crate::state::CartesianState;
use kessler_math::angles::wrap_tau;
use kessler_math::{Mat3, Vec3};
use rayon::prelude::*;

/// Precomputed, time-independent propagation data for one satellite.
///
/// 120 bytes per satellite; computed once at screening start, reused at
/// every sample step.
#[derive(Debug, Clone, Copy)]
pub struct PropagationConstants {
    /// Semi-major axis (km).
    pub a: f64,
    /// Eccentricity.
    pub e: f64,
    /// Mean anomaly at epoch (rad).
    pub m0: f64,
    /// Mean motion (rad/s).
    pub n: f64,
    /// `√(1−e²)`, reused in position and velocity evaluation.
    pub sqrt_one_minus_e2: f64,
    /// First two columns of the perifocal → ECI rotation (the third is
    /// never needed: perifocal vectors have z = 0).
    pub p_axis: Vec3,
    pub q_axis: Vec3,
}

impl PropagationConstants {
    /// Precompute from validated elements.
    pub fn from_elements(el: &KeplerElements) -> PropagationConstants {
        let rot = perifocal_to_eci(el.raan, el.inclination, el.arg_perigee);
        PropagationConstants {
            a: el.semi_major_axis,
            e: el.eccentricity,
            m0: el.mean_anomaly,
            n: el.mean_motion(),
            sqrt_one_minus_e2: (1.0 - el.eccentricity * el.eccentricity).sqrt(),
            p_axis: rot.col(0),
            q_axis: rot.col(1),
        }
    }

    /// Mean anomaly at `dt` seconds past epoch.
    #[inline]
    pub fn mean_anomaly_at(&self, dt: f64) -> f64 {
        wrap_tau(self.m0 + self.n * dt)
    }

    /// Propagate to `dt` seconds past epoch using `solver`.
    #[inline]
    pub fn propagate<S: KeplerSolver + ?Sized>(&self, dt: f64, solver: &S) -> CartesianState {
        let m = self.mean_anomaly_at(dt);
        let ecc_anom = solver.ecc_anomaly(m, self.e);
        self.state_at_ecc_anomaly(ecc_anom)
    }

    /// Position only — the hot path of grid insertion.
    #[inline]
    pub fn position<S: KeplerSolver + ?Sized>(&self, dt: f64, solver: &S) -> Vec3 {
        let m = self.mean_anomaly_at(dt);
        let ecc_anom = solver.ecc_anomaly(m, self.e);
        let (s, c) = ecc_anom.sin_cos();
        let xp = self.a * (c - self.e);
        let yp = self.a * self.sqrt_one_minus_e2 * s;
        self.p_axis * xp + self.q_axis * yp
    }

    /// Cartesian state from a solved eccentric anomaly.
    #[inline]
    pub fn state_at_ecc_anomaly(&self, ecc_anom: f64) -> CartesianState {
        let (s, c) = ecc_anom.sin_cos();
        // Perifocal position.
        let xp = self.a * (c - self.e);
        let yp = self.a * self.sqrt_one_minus_e2 * s;
        // Perifocal velocity: ẋ = −(n a² / r)·sin E, ẏ = (n a² / r)·√(1−e²)·cos E.
        let r = self.a * (1.0 - self.e * c);
        let k = self.n * self.a * self.a / r;
        let vxp = -k * s;
        let vyp = k * self.sqrt_one_minus_e2 * c;
        CartesianState {
            position: self.p_axis * xp + self.q_axis * yp,
            velocity: self.p_axis * vxp + self.q_axis * vyp,
        }
    }
}

/// Rotation from the perifocal (PQW) frame into the geocentric equatorial
/// frame: `R = R_z(Ω) · R_x(i) · R_z(ω)`.
pub fn perifocal_to_eci(raan: f64, inclination: f64, arg_perigee: f64) -> Mat3 {
    Mat3::rot_z(raan) * Mat3::rot_x(inclination) * Mat3::rot_z(arg_perigee)
}

/// Data-parallel propagation of a whole population, one logical thread per
/// (satellite, time) tuple — the paper's preferred data-parallelism shape
/// (§V-E). This is the CPU realisation; the GPU execution simulator runs
/// the same kernel body through its launch API.
pub struct BatchPropagator {
    constants: Vec<PropagationConstants>,
    solver: ContourSolver,
}

impl BatchPropagator {
    /// Precompute constants for every satellite (the `a_k` allocation).
    pub fn new(elements: &[KeplerElements]) -> BatchPropagator {
        BatchPropagator {
            constants: elements
                .iter()
                .map(PropagationConstants::from_elements)
                .collect(),
            solver: ContourSolver::default(),
        }
    }

    /// Replace the default contour solver.
    pub fn with_solver(mut self, solver: ContourSolver) -> BatchPropagator {
        self.solver = solver;
        self
    }

    pub fn len(&self) -> usize {
        self.constants.len()
    }

    pub fn is_empty(&self) -> bool {
        self.constants.is_empty()
    }

    pub fn constants(&self) -> &[PropagationConstants] {
        &self.constants
    }

    /// Approximate resident size of the precomputed data in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.constants.len() * std::mem::size_of::<PropagationConstants>()
    }

    /// Positions of all satellites at `dt`, written into `out` (parallel).
    pub fn positions_into(&self, dt: f64, out: &mut [Vec3]) {
        assert_eq!(out.len(), self.constants.len());
        out.par_iter_mut()
            .zip(self.constants.par_iter())
            .for_each(|(slot, c)| *slot = c.position(dt, &self.solver));
    }

    /// Positions of all satellites at `dt` (parallel, allocating).
    pub fn positions(&self, dt: f64) -> Vec<Vec3> {
        let mut out = vec![Vec3::ZERO; self.constants.len()];
        self.positions_into(dt, &mut out);
        out
    }

    /// Full states of all satellites at `dt` (parallel).
    pub fn states(&self, dt: f64) -> Vec<CartesianState> {
        self.constants
            .par_iter()
            .map(|c| c.propagate(dt, &self.solver))
            .collect()
    }

    /// State of a single satellite at `dt`.
    pub fn state_of(&self, index: usize, dt: f64) -> CartesianState {
        self.constants[index].propagate(dt, &self.solver)
    }

    /// Position of a single satellite at `dt`.
    pub fn position_of(&self, index: usize, dt: f64) -> Vec3 {
        self.constants[index].position(dt, &self.solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::{MU_EARTH, R_EARTH};
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    fn elements(a: f64, e: f64, i: f64, raan: f64, argp: f64, m0: f64) -> KeplerElements {
        KeplerElements::new(a, e, i, raan, argp, m0).unwrap()
    }

    #[test]
    fn equatorial_circular_orbit_traces_a_circle() {
        let el = elements(7_000.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        let quarter = el.period() / 4.0;

        let p0 = pc.position(0.0, &solver);
        assert!(p0.dist(Vec3::new(7_000.0, 0.0, 0.0)) < 1e-6);

        let p1 = pc.position(quarter, &solver);
        assert!(p1.dist(Vec3::new(0.0, 7_000.0, 0.0)) < 1e-3, "p1 = {p1:?}");

        let p2 = pc.position(2.0 * quarter, &solver);
        assert!(p2.dist(Vec3::new(-7_000.0, 0.0, 0.0)) < 1e-3);
    }

    #[test]
    fn polar_orbit_reaches_poles() {
        let el = elements(7_000.0, 0.0, FRAC_PI_2, 0.0, 0.0, 0.0);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        let quarter = el.period() / 4.0;
        let p = pc.position(quarter, &solver);
        // Starting on the +X axis, after a quarter period an i=90° orbit
        // (Ω=0) is over the +Z pole.
        assert!(p.dist(Vec3::new(0.0, 0.0, 7_000.0)) < 1e-3, "p = {p:?}");
    }

    #[test]
    fn eccentric_orbit_hits_perigee_and_apogee() {
        let el = elements(10_000.0, 0.3, 0.4, 1.1, 0.7, 0.0);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        // M₀ = 0 → at epoch the satellite is at perigee.
        let r0 = pc.position(0.0, &solver).norm();
        assert!((r0 - el.perigee_radius()).abs() < 1e-6, "r0 = {r0}");
        // Half a period later it is at apogee.
        let r_half = pc.position(el.period() / 2.0, &solver).norm();
        assert!((r_half - el.apogee_radius()).abs() < 1e-6, "r = {r_half}");
    }

    #[test]
    fn velocity_matches_finite_difference() {
        let el = elements(8_000.0, 0.2, 1.0, 0.5, 2.5, 1.2);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        let t = 500.0;
        let h = 1e-3;
        let s = pc.propagate(t, &solver);
        let p_plus = pc.position(t + h, &solver);
        let p_minus = pc.position(t - h, &solver);
        let fd = (p_plus - p_minus) / (2.0 * h);
        assert!(
            s.velocity.dist(fd) < 1e-6 * s.velocity.norm().max(1.0),
            "v = {:?}, fd = {:?}",
            s.velocity,
            fd
        );
    }

    #[test]
    fn energy_and_angular_momentum_are_conserved() {
        let el = elements(12_000.0, 0.45, 0.8, 2.0, 4.0, 0.3);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        let expected_energy = -MU_EARTH / (2.0 * el.semi_major_axis);
        let h0 = pc.propagate(0.0, &solver).angular_momentum();
        for k in 0..20 {
            let t = k as f64 * el.period() / 7.0;
            let s = pc.propagate(t, &solver);
            assert!(
                (s.specific_energy(MU_EARTH) - expected_energy).abs()
                    < 1e-8 * expected_energy.abs(),
                "energy drift at t = {t}"
            );
            assert!(
                s.angular_momentum().dist(h0) < 1e-7 * h0.norm(),
                "h drift at t = {t}"
            );
        }
    }

    #[test]
    fn propagation_is_periodic() {
        let el = elements(7_500.0, 0.1, 1.3, 0.2, 5.0, 2.2);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        let p0 = pc.position(123.0, &solver);
        let p1 = pc.position(123.0 + el.period(), &solver);
        assert!(p0.dist(p1) < 1e-5, "Δ = {}", p0.dist(p1));
    }

    #[test]
    fn batch_matches_scalar_propagation() {
        let els: Vec<KeplerElements> = (0..32)
            .map(|i| {
                elements(
                    6_800.0 + 50.0 * i as f64,
                    0.001 * i as f64,
                    0.1 * i as f64 % PI,
                    0.3 * i as f64 % TAU,
                    0.7 * i as f64 % TAU,
                    0.9 * i as f64 % TAU,
                )
            })
            .collect();
        let batch = BatchPropagator::new(&els);
        let solver = ContourSolver::default();
        let t = 777.0;
        let positions = batch.positions(t);
        for (i, el) in els.iter().enumerate() {
            let pc = PropagationConstants::from_elements(el);
            assert!(positions[i].dist(pc.position(t, &solver)) < 1e-9);
        }
        // states() agrees with positions().
        let states = batch.states(t);
        for (s, p) in states.iter().zip(&positions) {
            assert!(s.position.dist(*p) < 1e-9);
        }
    }

    #[test]
    fn memory_accounting_is_linear() {
        let els: Vec<KeplerElements> = (0..10)
            .map(|_| elements(7e3, 0.0, 0.0, 0.0, 0.0, 0.0))
            .collect();
        let batch = BatchPropagator::new(&els);
        assert_eq!(batch.len(), 10);
        assert_eq!(
            batch.memory_bytes(),
            10 * std::mem::size_of::<PropagationConstants>()
        );
    }

    proptest! {
        /// Orbit radius must always lie between perigee and apogee, and the
        /// position must stay above Earth's surface for sane populations.
        #[test]
        fn radius_stays_within_apsides(
            a in 6_800.0..42_000.0f64,
            e in 0.0..0.7f64,
            i in 0.0..PI,
            raan in 0.0..TAU,
            argp in 0.0..TAU,
            m0 in 0.0..TAU,
            t in 0.0..86_400.0f64,
        ) {
            prop_assume!(a * (1.0 - e) > R_EARTH + 100.0);
            let el = elements(a, e, i, raan, argp, m0);
            let pc = PropagationConstants::from_elements(&el);
            let r = pc.position(t, &ContourSolver::default()).norm();
            prop_assert!(r >= el.perigee_radius() - 1e-6);
            prop_assert!(r <= el.apogee_radius() + 1e-6);
        }

        /// Vis-viva: v² = μ(2/r − 1/a) at every propagated state.
        #[test]
        fn vis_viva_holds(
            a in 6_800.0..42_000.0f64,
            e in 0.0..0.7f64,
            m0 in 0.0..TAU,
            t in 0.0..20_000.0f64,
        ) {
            let el = elements(a, e, 0.6, 1.0, 2.0, m0);
            let pc = PropagationConstants::from_elements(&el);
            let s = pc.propagate(t, &ContourSolver::default());
            let r = s.position.norm();
            let expect = MU_EARTH * (2.0 / r - 1.0 / a);
            prop_assert!((s.velocity.norm_sq() - expect).abs() < 1e-7 * expect.abs());
        }
    }
}
