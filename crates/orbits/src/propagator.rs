//! Two-body propagation with per-satellite precomputed constants.
//!
//! The paper splits the reference contour-solver implementation into
//! independent per-(satellite, time) work items and compensates for the
//! lost shared partial computations "by precalculating the reusable parts
//! independently once and then storing them in the global graphics memory"
//! (§IV-B). [`PropagationConstants`] is exactly that per-satellite record —
//! the "Kepler solver data" `a_k` of the memory model in §V-B — and
//! [`BatchPropagator`] is the data-parallel propagation step that consumes
//! it: one logical thread per (satellite, time) tuple (§V-E).

use crate::elements::KeplerElements;
use crate::kepler::{ContourNodes, ContourSolver, KeplerSolver};
use crate::state::CartesianState;
use kessler_math::angles::wrap_tau;
use kessler_math::{Mat3, Vec3};
use rayon::prelude::*;

/// Number of `f64` columns in the structure-of-arrays layout: `a`, `e`,
/// `m0`, `n`, `√(1−e²)`, and the two rotation columns `p`/`q` (3 each).
pub const SOA_COLUMNS: usize = 11;

/// Lanes per `chunks_exact` block in the branch-free reconstruction loops —
/// wide enough for two 4-wide f64 vectors, small enough to stay in
/// registers.
const LANES: usize = 8;

/// Satellites per work tile: each (parallel or sequential) tile solves
/// Kepler's equation lane by lane into stack buffers, then reconstructs
/// Cartesian output through the vectorizable column loops.
const TILE: usize = 1024;

/// Precomputed, time-independent propagation data for one satellite.
///
/// Eleven `f64` values (88 bytes) per satellite; computed once at screening
/// start, reused at every sample step. [`BatchPropagator`] stores the same
/// values as [`SOA_COLUMNS`] structure-of-arrays columns and gathers this
/// struct back on demand for the scalar refinement paths.
#[derive(Debug, Clone, Copy)]
pub struct PropagationConstants {
    /// Semi-major axis (km).
    pub a: f64,
    /// Eccentricity.
    pub e: f64,
    /// Mean anomaly at epoch (rad).
    pub m0: f64,
    /// Mean motion (rad/s).
    pub n: f64,
    /// `√(1−e²)`, reused in position and velocity evaluation.
    pub sqrt_one_minus_e2: f64,
    /// First two columns of the perifocal → ECI rotation (the third is
    /// never needed: perifocal vectors have z = 0).
    pub p_axis: Vec3,
    pub q_axis: Vec3,
}

impl PropagationConstants {
    /// Precompute from validated elements.
    pub fn from_elements(el: &KeplerElements) -> PropagationConstants {
        let rot = perifocal_to_eci(el.raan, el.inclination, el.arg_perigee);
        PropagationConstants {
            a: el.semi_major_axis,
            e: el.eccentricity,
            m0: el.mean_anomaly,
            n: el.mean_motion(),
            sqrt_one_minus_e2: (1.0 - el.eccentricity * el.eccentricity).sqrt(),
            p_axis: rot.col(0),
            q_axis: rot.col(1),
        }
    }

    /// Mean anomaly at `dt` seconds past epoch.
    #[inline]
    pub fn mean_anomaly_at(&self, dt: f64) -> f64 {
        wrap_tau(self.m0 + self.n * dt)
    }

    /// Propagate to `dt` seconds past epoch using `solver`.
    #[inline]
    pub fn propagate<S: KeplerSolver + ?Sized>(&self, dt: f64, solver: &S) -> CartesianState {
        let m = self.mean_anomaly_at(dt);
        let ecc_anom = solver.ecc_anomaly(m, self.e);
        self.state_at_ecc_anomaly(ecc_anom)
    }

    /// Position only — the hot path of grid insertion.
    #[inline]
    pub fn position<S: KeplerSolver + ?Sized>(&self, dt: f64, solver: &S) -> Vec3 {
        let m = self.mean_anomaly_at(dt);
        let ecc_anom = solver.ecc_anomaly(m, self.e);
        let (s, c) = ecc_anom.sin_cos();
        let xp = self.a * (c - self.e);
        let yp = self.a * self.sqrt_one_minus_e2 * s;
        self.p_axis * xp + self.q_axis * yp
    }

    /// Cartesian state from a solved eccentric anomaly.
    #[inline]
    pub fn state_at_ecc_anomaly(&self, ecc_anom: f64) -> CartesianState {
        let (s, c) = ecc_anom.sin_cos();
        // Perifocal position.
        let xp = self.a * (c - self.e);
        let yp = self.a * self.sqrt_one_minus_e2 * s;
        // Perifocal velocity: ẋ = −(n a² / r)·sin E, ẏ = (n a² / r)·√(1−e²)·cos E.
        let r = self.a * (1.0 - self.e * c);
        let k = self.n * self.a * self.a / r;
        let vxp = -k * s;
        let vyp = k * self.sqrt_one_minus_e2 * c;
        CartesianState {
            position: self.p_axis * xp + self.q_axis * yp,
            velocity: self.p_axis * vxp + self.q_axis * vyp,
        }
    }
}

/// Rotation from the perifocal (PQW) frame into the geocentric equatorial
/// frame: `R = R_z(Ω) · R_x(i) · R_z(ω)`.
pub fn perifocal_to_eci(raan: f64, inclination: f64, arg_perigee: f64) -> Mat3 {
    Mat3::rot_z(raan) * Mat3::rot_x(inclination) * Mat3::rot_z(arg_perigee)
}

/// Borrowed structure-of-arrays view over the per-satellite constants: one
/// contiguous `f64` column per field. This is what the propagation kernels
/// iterate (the columns autovectorize where an array-of-structs layout
/// defeats the compiler), and what the GPU execution simulator uploads as
/// a single flat device buffer.
#[derive(Debug, Clone, Copy)]
pub struct SoaColumns<'a> {
    pub a: &'a [f64],
    pub e: &'a [f64],
    pub m0: &'a [f64],
    pub mean_motion: &'a [f64],
    pub sqrt_one_minus_e2: &'a [f64],
    pub px: &'a [f64],
    pub py: &'a [f64],
    pub pz: &'a [f64],
    pub qx: &'a [f64],
    pub qy: &'a [f64],
    pub qz: &'a [f64],
}

impl<'a> SoaColumns<'a> {
    /// Reconstruct the view from a flat buffer of [`SOA_COLUMNS`] columns
    /// of `n` values each, laid out column-major (the layout of
    /// [`BatchPropagator::raw_columns`] and of the device upload).
    pub fn from_flat(data: &'a [f64], n: usize) -> SoaColumns<'a> {
        assert_eq!(data.len(), SOA_COLUMNS * n, "flat SoA buffer size mismatch");
        let mut rest = data;
        let mut col = || {
            let (head, tail) = rest.split_at(n);
            rest = tail;
            head
        };
        SoaColumns {
            a: col(),
            e: col(),
            m0: col(),
            mean_motion: col(),
            sqrt_one_minus_e2: col(),
            px: col(),
            py: col(),
            pz: col(),
            qx: col(),
            qy: col(),
            qz: col(),
        }
    }

    pub fn len(&self) -> usize {
        self.a.len()
    }

    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Gather one satellite's constants back into the struct form the
    /// scalar refinement paths (Brent PCA/TCA search) consume.
    #[inline]
    pub fn gather(&self, i: usize) -> PropagationConstants {
        PropagationConstants {
            a: self.a[i],
            e: self.e[i],
            m0: self.m0[i],
            n: self.mean_motion[i],
            sqrt_one_minus_e2: self.sqrt_one_minus_e2[i],
            p_axis: Vec3::new(self.px[i], self.py[i], self.pz[i]),
            q_axis: Vec3::new(self.qx[i], self.qy[i], self.qz[i]),
        }
    }

    /// Scalar position of satellite `i` at `dt` — the per-thread kernel
    /// body the GPU simulator runs; identical arithmetic to
    /// [`PropagationConstants::position`].
    #[inline]
    pub fn position<S: KeplerSolver + ?Sized>(&self, i: usize, dt: f64, solver: &S) -> Vec3 {
        self.gather(i).position(dt, solver)
    }
}

/// One lane of the branch-free position reconstruction. Operation order
/// matches [`PropagationConstants::position`] exactly (`p·xp + q·yp`
/// componentwise), so batch output is bit-identical to the scalar path.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn position_lane(
    a: f64,
    e: f64,
    s1me2: f64,
    sin_e: f64,
    cos_e: f64,
    px: f64,
    py: f64,
    pz: f64,
    qx: f64,
    qy: f64,
    qz: f64,
) -> Vec3 {
    let xp = a * (cos_e - e);
    let yp = a * s1me2 * sin_e;
    Vec3::new(px * xp + qx * yp, py * xp + qy * yp, pz * xp + qz * yp)
}

/// One lane of the full-state reconstruction; operation order matches
/// [`PropagationConstants::state_at_ecc_anomaly`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn state_lane(
    a: f64,
    e: f64,
    n: f64,
    s1me2: f64,
    sin_e: f64,
    cos_e: f64,
    px: f64,
    py: f64,
    pz: f64,
    qx: f64,
    qy: f64,
    qz: f64,
) -> CartesianState {
    let xp = a * (cos_e - e);
    let yp = a * s1me2 * sin_e;
    let r = a * (1.0 - e * cos_e);
    let k = n * a * a / r;
    let vxp = -k * sin_e;
    let vyp = k * s1me2 * cos_e;
    CartesianState {
        position: Vec3::new(px * xp + qx * yp, py * xp + qy * yp, pz * xp + qz * yp),
        velocity: Vec3::new(
            px * vxp + qx * vyp,
            py * vxp + qy * vyp,
            pz * vxp + qz * vyp,
        ),
    }
}

/// Solve Kepler's equation for one tile into the `sin E`/`cos E` stack
/// buffers. The solve itself is branchy (fixed points, polish early-out),
/// but the precomputed node table removes its dominant cost — the
/// 2 × `points` libm sin/cos calls per solve.
fn solve_tile(
    cols: &SoaColumns<'_>,
    nodes: &ContourNodes,
    dt: f64,
    base: usize,
    len: usize,
    sin_e: &mut [f64; TILE],
    cos_e: &mut [f64; TILE],
) {
    for k in 0..len {
        let i = base + k;
        let m = wrap_tau(cols.m0[i] + cols.mean_motion[i] * dt);
        let ecc_anom = nodes.ecc_anomaly(m, cols.e[i]);
        let (s, c) = ecc_anom.sin_cos();
        sin_e[k] = s;
        cos_e[k] = c;
    }
}

/// Propagate one tile of satellites: Kepler solves into stack buffers,
/// then a `chunks_exact`-driven, branch-free Cartesian reconstruction over
/// the columns that rustc autovectorizes.
fn position_tile(
    cols: &SoaColumns<'_>,
    nodes: &ContourNodes,
    dt: f64,
    base: usize,
    out: &mut [Vec3],
) {
    let len = out.len();
    debug_assert!(len <= TILE);
    let mut sin_e = [0.0f64; TILE];
    let mut cos_e = [0.0f64; TILE];
    solve_tile(cols, nodes, dt, base, len, &mut sin_e, &mut cos_e);

    let (a, e, s1) = (
        &cols.a[base..base + len],
        &cols.e[base..base + len],
        &cols.sqrt_one_minus_e2[base..base + len],
    );
    let (px, py, pz) = (
        &cols.px[base..base + len],
        &cols.py[base..base + len],
        &cols.pz[base..base + len],
    );
    let (qx, qy, qz) = (
        &cols.qx[base..base + len],
        &cols.qy[base..base + len],
        &cols.qz[base..base + len],
    );

    let mut off = 0usize;
    let mut blocks = out.chunks_exact_mut(LANES);
    for block in &mut blocks {
        // Fixed-length, branch-free block: every lane runs the identical
        // instruction sequence over contiguous columns.
        for (l, slot) in block.iter_mut().enumerate() {
            let i = off + l;
            *slot = position_lane(
                a[i], e[i], s1[i], sin_e[i], cos_e[i], px[i], py[i], pz[i], qx[i], qy[i], qz[i],
            );
        }
        off += LANES;
    }
    // Remainder lane (n % LANES trailing satellites).
    for (l, slot) in blocks.into_remainder().iter_mut().enumerate() {
        let i = off + l;
        *slot = position_lane(
            a[i], e[i], s1[i], sin_e[i], cos_e[i], px[i], py[i], pz[i], qx[i], qy[i], qz[i],
        );
    }
}

/// Full-state twin of [`position_tile`].
fn state_tile(
    cols: &SoaColumns<'_>,
    nodes: &ContourNodes,
    dt: f64,
    base: usize,
    out: &mut [CartesianState],
) {
    let len = out.len();
    debug_assert!(len <= TILE);
    let mut sin_e = [0.0f64; TILE];
    let mut cos_e = [0.0f64; TILE];
    solve_tile(cols, nodes, dt, base, len, &mut sin_e, &mut cos_e);

    let (a, e, nn, s1) = (
        &cols.a[base..base + len],
        &cols.e[base..base + len],
        &cols.mean_motion[base..base + len],
        &cols.sqrt_one_minus_e2[base..base + len],
    );
    let (px, py, pz) = (
        &cols.px[base..base + len],
        &cols.py[base..base + len],
        &cols.pz[base..base + len],
    );
    let (qx, qy, qz) = (
        &cols.qx[base..base + len],
        &cols.qy[base..base + len],
        &cols.qz[base..base + len],
    );

    let mut off = 0usize;
    let mut blocks = out.chunks_exact_mut(LANES);
    for block in &mut blocks {
        for (l, slot) in block.iter_mut().enumerate() {
            let i = off + l;
            *slot = state_lane(
                a[i], e[i], nn[i], s1[i], sin_e[i], cos_e[i], px[i], py[i], pz[i], qx[i], qy[i],
                qz[i],
            );
        }
        off += LANES;
    }
    for (l, slot) in blocks.into_remainder().iter_mut().enumerate() {
        let i = off + l;
        *slot = state_lane(
            a[i], e[i], nn[i], s1[i], sin_e[i], cos_e[i], px[i], py[i], pz[i], qx[i], qy[i], qz[i],
        );
    }
}

/// Data-parallel propagation of a whole population, one logical thread per
/// (satellite, time) tuple — the paper's preferred data-parallelism shape
/// (§V-E). This is the CPU realisation; the GPU execution simulator runs
/// the same kernel body through its launch API.
///
/// The per-satellite constants live in a structure-of-arrays layout (one
/// contiguous `f64` column per field, [`SOA_COLUMNS`] columns total) so the
/// Cartesian reconstruction loops autovectorize; the contour solver's
/// trapezoid nodes are precomputed once ([`ContourNodes`]). Both changes
/// are bit-preserving: batch output equals the scalar
/// [`PropagationConstants`] path bit for bit.
pub struct BatchPropagator {
    n: usize,
    /// [`SOA_COLUMNS`] columns of `n` values each, column-major.
    data: Vec<f64>,
    solver: ContourSolver,
    nodes: ContourNodes,
}

impl BatchPropagator {
    /// Precompute constants for every satellite (the `a_k` allocation).
    pub fn new(elements: &[KeplerElements]) -> BatchPropagator {
        let n = elements.len();
        let mut data = vec![0.0f64; SOA_COLUMNS * n];
        for (i, el) in elements.iter().enumerate() {
            let c = PropagationConstants::from_elements(el);
            data[i] = c.a;
            data[n + i] = c.e;
            data[2 * n + i] = c.m0;
            data[3 * n + i] = c.n;
            data[4 * n + i] = c.sqrt_one_minus_e2;
            data[5 * n + i] = c.p_axis.x;
            data[6 * n + i] = c.p_axis.y;
            data[7 * n + i] = c.p_axis.z;
            data[8 * n + i] = c.q_axis.x;
            data[9 * n + i] = c.q_axis.y;
            data[10 * n + i] = c.q_axis.z;
        }
        let solver = ContourSolver::default();
        BatchPropagator {
            n,
            data,
            nodes: ContourNodes::new(&solver),
            solver,
        }
    }

    /// Replace the default contour solver (the node table follows).
    pub fn with_solver(mut self, solver: ContourSolver) -> BatchPropagator {
        self.solver = solver;
        self.nodes = ContourNodes::new(&solver);
        self
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The structure-of-arrays view the propagation kernels iterate.
    pub fn columns(&self) -> SoaColumns<'_> {
        SoaColumns::from_flat(&self.data, self.n)
    }

    /// The flat column buffer ([`SOA_COLUMNS`] × `len` values) — what the
    /// GPU execution simulator uploads as the `a_k` device allocation.
    pub fn raw_columns(&self) -> &[f64] {
        &self.data
    }

    /// Gather one satellite's constants for the scalar refinement paths.
    pub fn constants_of(&self, index: usize) -> PropagationConstants {
        self.columns().gather(index)
    }

    /// Approximate resident size of the precomputed data in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Positions of all satellites at `dt`, written into `out` (parallel).
    pub fn positions_into(&self, dt: f64, out: &mut [Vec3]) {
        assert_eq!(out.len(), self.n);
        let cols = self.columns();
        out.par_chunks_mut(TILE)
            .enumerate()
            .for_each(|(tile, chunk)| position_tile(&cols, &self.nodes, dt, tile * TILE, chunk));
    }

    /// Sequential variant of [`BatchPropagator::positions_into`] for
    /// callers whose parallelism lives at an outer level (the multi-grid
    /// round scheduler runs one whole step per rayon worker). Identical
    /// output.
    pub fn positions_into_seq(&self, dt: f64, out: &mut [Vec3]) {
        assert_eq!(out.len(), self.n);
        let cols = self.columns();
        for (tile, chunk) in out.chunks_mut(TILE).enumerate() {
            position_tile(&cols, &self.nodes, dt, tile * TILE, chunk);
        }
    }

    /// Positions of all satellites at `dt` (parallel, allocating).
    pub fn positions(&self, dt: f64) -> Vec<Vec3> {
        let mut out = vec![Vec3::ZERO; self.n];
        self.positions_into(dt, &mut out);
        out
    }

    /// Full states of all satellites at `dt`, written into `out`
    /// (parallel).
    pub fn states_into(&self, dt: f64, out: &mut [CartesianState]) {
        assert_eq!(out.len(), self.n);
        let cols = self.columns();
        out.par_chunks_mut(TILE)
            .enumerate()
            .for_each(|(tile, chunk)| state_tile(&cols, &self.nodes, dt, tile * TILE, chunk));
    }

    /// Full states of all satellites at `dt` (parallel, allocating).
    pub fn states(&self, dt: f64) -> Vec<CartesianState> {
        let mut out = vec![CartesianState::new(Vec3::ZERO, Vec3::ZERO); self.n];
        self.states_into(dt, &mut out);
        out
    }

    /// State of a single satellite at `dt`.
    pub fn state_of(&self, index: usize, dt: f64) -> CartesianState {
        self.constants_of(index).propagate(dt, &self.solver)
    }

    /// Position of a single satellite at `dt`.
    pub fn position_of(&self, index: usize, dt: f64) -> Vec3 {
        self.constants_of(index).position(dt, &self.solver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::{MU_EARTH, R_EARTH};
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    fn elements(a: f64, e: f64, i: f64, raan: f64, argp: f64, m0: f64) -> KeplerElements {
        KeplerElements::new(a, e, i, raan, argp, m0).unwrap()
    }

    #[test]
    fn equatorial_circular_orbit_traces_a_circle() {
        let el = elements(7_000.0, 0.0, 0.0, 0.0, 0.0, 0.0);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        let quarter = el.period() / 4.0;

        let p0 = pc.position(0.0, &solver);
        assert!(p0.dist(Vec3::new(7_000.0, 0.0, 0.0)) < 1e-6);

        let p1 = pc.position(quarter, &solver);
        assert!(p1.dist(Vec3::new(0.0, 7_000.0, 0.0)) < 1e-3, "p1 = {p1:?}");

        let p2 = pc.position(2.0 * quarter, &solver);
        assert!(p2.dist(Vec3::new(-7_000.0, 0.0, 0.0)) < 1e-3);
    }

    #[test]
    fn polar_orbit_reaches_poles() {
        let el = elements(7_000.0, 0.0, FRAC_PI_2, 0.0, 0.0, 0.0);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        let quarter = el.period() / 4.0;
        let p = pc.position(quarter, &solver);
        // Starting on the +X axis, after a quarter period an i=90° orbit
        // (Ω=0) is over the +Z pole.
        assert!(p.dist(Vec3::new(0.0, 0.0, 7_000.0)) < 1e-3, "p = {p:?}");
    }

    #[test]
    fn eccentric_orbit_hits_perigee_and_apogee() {
        let el = elements(10_000.0, 0.3, 0.4, 1.1, 0.7, 0.0);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        // M₀ = 0 → at epoch the satellite is at perigee.
        let r0 = pc.position(0.0, &solver).norm();
        assert!((r0 - el.perigee_radius()).abs() < 1e-6, "r0 = {r0}");
        // Half a period later it is at apogee.
        let r_half = pc.position(el.period() / 2.0, &solver).norm();
        assert!((r_half - el.apogee_radius()).abs() < 1e-6, "r = {r_half}");
    }

    #[test]
    fn velocity_matches_finite_difference() {
        let el = elements(8_000.0, 0.2, 1.0, 0.5, 2.5, 1.2);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        let t = 500.0;
        let h = 1e-3;
        let s = pc.propagate(t, &solver);
        let p_plus = pc.position(t + h, &solver);
        let p_minus = pc.position(t - h, &solver);
        let fd = (p_plus - p_minus) / (2.0 * h);
        assert!(
            s.velocity.dist(fd) < 1e-6 * s.velocity.norm().max(1.0),
            "v = {:?}, fd = {:?}",
            s.velocity,
            fd
        );
    }

    #[test]
    fn energy_and_angular_momentum_are_conserved() {
        let el = elements(12_000.0, 0.45, 0.8, 2.0, 4.0, 0.3);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        let expected_energy = -MU_EARTH / (2.0 * el.semi_major_axis);
        let h0 = pc.propagate(0.0, &solver).angular_momentum();
        for k in 0..20 {
            let t = k as f64 * el.period() / 7.0;
            let s = pc.propagate(t, &solver);
            assert!(
                (s.specific_energy(MU_EARTH) - expected_energy).abs()
                    < 1e-8 * expected_energy.abs(),
                "energy drift at t = {t}"
            );
            assert!(
                s.angular_momentum().dist(h0) < 1e-7 * h0.norm(),
                "h drift at t = {t}"
            );
        }
    }

    #[test]
    fn propagation_is_periodic() {
        let el = elements(7_500.0, 0.1, 1.3, 0.2, 5.0, 2.2);
        let pc = PropagationConstants::from_elements(&el);
        let solver = ContourSolver::default();
        let p0 = pc.position(123.0, &solver);
        let p1 = pc.position(123.0 + el.period(), &solver);
        assert!(p0.dist(p1) < 1e-5, "Δ = {}", p0.dist(p1));
    }

    #[test]
    fn batch_matches_scalar_propagation() {
        // 37 satellites: covers four full LANES blocks plus a 5-wide
        // chunks_exact remainder.
        let els: Vec<KeplerElements> = (0..37)
            .map(|i| {
                elements(
                    6_800.0 + 50.0 * i as f64,
                    0.001 * i as f64,
                    0.1 * i as f64 % PI,
                    0.3 * i as f64 % TAU,
                    0.7 * i as f64 % TAU,
                    0.9 * i as f64 % TAU,
                )
            })
            .collect();
        let batch = BatchPropagator::new(&els);
        let solver = ContourSolver::default();
        let t = 777.0;
        // The SoA kernel replicates the scalar arithmetic sequence exactly,
        // so batch output is bit-identical to the per-satellite path — the
        // property the service's delta-vs-cold equality guarantee rests on.
        let positions = batch.positions(t);
        let states = batch.states(t);
        for (i, el) in els.iter().enumerate() {
            let pc = PropagationConstants::from_elements(el);
            let scalar_p = pc.position(t, &solver);
            let scalar_s = pc.propagate(t, &solver);
            assert_eq!(positions[i].x.to_bits(), scalar_p.x.to_bits(), "sat {i}");
            assert_eq!(positions[i].y.to_bits(), scalar_p.y.to_bits(), "sat {i}");
            assert_eq!(positions[i].z.to_bits(), scalar_p.z.to_bits(), "sat {i}");
            assert_eq!(
                states[i].position.x.to_bits(),
                scalar_s.position.x.to_bits(),
                "sat {i}"
            );
            assert_eq!(
                states[i].velocity.x.to_bits(),
                scalar_s.velocity.x.to_bits(),
                "sat {i}"
            );
            assert_eq!(
                states[i].velocity.z.to_bits(),
                scalar_s.velocity.z.to_bits(),
                "sat {i}"
            );
        }
        // The sequential tile walk is the same kernel — identical output.
        let mut seq = vec![Vec3::ZERO; els.len()];
        batch.positions_into_seq(t, &mut seq);
        for (a, b) in seq.iter().zip(&positions) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
    }

    #[test]
    fn constants_round_trip_through_the_soa_layout() {
        let els: Vec<KeplerElements> = (0..5)
            .map(|i| elements(7_000.0 + i as f64, 0.01 * i as f64, 0.5, 1.0, 2.0, 3.0))
            .collect();
        let batch = BatchPropagator::new(&els);
        for (i, el) in els.iter().enumerate() {
            let direct = PropagationConstants::from_elements(el);
            let gathered = batch.constants_of(i);
            assert_eq!(direct.a.to_bits(), gathered.a.to_bits());
            assert_eq!(direct.e.to_bits(), gathered.e.to_bits());
            assert_eq!(direct.m0.to_bits(), gathered.m0.to_bits());
            assert_eq!(direct.n.to_bits(), gathered.n.to_bits());
            assert_eq!(
                direct.sqrt_one_minus_e2.to_bits(),
                gathered.sqrt_one_minus_e2.to_bits()
            );
            assert_eq!(direct.p_axis.x.to_bits(), gathered.p_axis.x.to_bits());
            assert_eq!(direct.q_axis.z.to_bits(), gathered.q_axis.z.to_bits());
        }
    }

    #[test]
    fn memory_accounting_is_linear() {
        let els: Vec<KeplerElements> = (0..10)
            .map(|_| elements(7e3, 0.0, 0.0, 0.0, 0.0, 0.0))
            .collect();
        let batch = BatchPropagator::new(&els);
        assert_eq!(batch.len(), 10);
        assert_eq!(
            batch.memory_bytes(),
            10 * SOA_COLUMNS * std::mem::size_of::<f64>()
        );
        assert_eq!(batch.raw_columns().len(), 10 * SOA_COLUMNS);
    }

    proptest! {
        /// Orbit radius must always lie between perigee and apogee, and the
        /// position must stay above Earth's surface for sane populations.
        #[test]
        fn radius_stays_within_apsides(
            a in 6_800.0..42_000.0f64,
            e in 0.0..0.7f64,
            i in 0.0..PI,
            raan in 0.0..TAU,
            argp in 0.0..TAU,
            m0 in 0.0..TAU,
            t in 0.0..86_400.0f64,
        ) {
            prop_assume!(a * (1.0 - e) > R_EARTH + 100.0);
            let el = elements(a, e, i, raan, argp, m0);
            let pc = PropagationConstants::from_elements(&el);
            let r = pc.position(t, &ContourSolver::default()).norm();
            prop_assert!(r >= el.perigee_radius() - 1e-6);
            prop_assert!(r <= el.apogee_radius() + 1e-6);
        }

        /// Vis-viva: v² = μ(2/r − 1/a) at every propagated state.
        #[test]
        fn vis_viva_holds(
            a in 6_800.0..42_000.0f64,
            e in 0.0..0.7f64,
            m0 in 0.0..TAU,
            t in 0.0..20_000.0f64,
        ) {
            let el = elements(a, e, 0.6, 1.0, 2.0, m0);
            let pc = PropagationConstants::from_elements(&el);
            let s = pc.propagate(t, &ContourSolver::default());
            let r = s.position.norm();
            let expect = MU_EARTH * (2.0 / r - 1.0 / a);
            prop_assert!((s.velocity.norm_sq() - expect).abs() < 1e-7 * expect.abs());
        }
    }
}
