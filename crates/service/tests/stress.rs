//! Concurrency stress tests for the snapshot-isolated execution core:
//! many clients mixing mutations, screens, and cancellations against a
//! multi-worker daemon, plus the headline isolation guarantees — a DELTA
//! overtaking a big in-flight SCREEN, and a cancelled screen leaving the
//! daemon byte-identical to one that never started it.

use kessler_core::ScreeningConfig;
use kessler_population::{PopulationConfig, PopulationGenerator};
use kessler_service::proto::ScreenSummary;
use kessler_service::{
    request, Client, ElementsSpec, Request, Server, ServerHandle, ServerOptions,
};
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

fn serve_preloaded(
    n: usize,
    workers: usize,
    threshold_km: f64,
    span_s: f64,
) -> (SocketAddr, ServerHandle) {
    let config = ScreeningConfig::grid_defaults(threshold_km, span_s);
    let options = ServerOptions {
        workers,
        ..ServerOptions::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config, options).expect("bind ephemeral port");
    let population = PopulationGenerator::new(PopulationConfig {
        seed: 42,
        ..Default::default()
    })
    .generate(n);
    server.preload(&population).expect("preload");
    let addr = server.local_addr();
    (addr, server.spawn().expect("spawn server thread"))
}

fn spec_for(id: u64) -> ElementsSpec {
    ElementsSpec {
        a: 7_000.0 + (id % 97) as f64 * 3.0,
        e: 0.001,
        incl: 0.4 + (id % 7) as f64 * 0.3,
        raan: (id % 41) as f64 * 0.15,
        argp: 0.1,
        mean_anomaly: (id % 113) as f64 * 0.055,
    }
}

/// Everything in a screen payload except the wall-clock timings, as a
/// canonical JSON string, for byte-identical comparisons across servers.
fn normalized(summary: &ScreenSummary) -> String {
    let mut value = serde_json::to_value(summary).expect("serialize summary");
    value
        .as_object_mut()
        .expect("summary is an object")
        .remove("timings");
    value.to_string()
}

/// The acceptance scenario: with `--workers 4` and a large catalog,
/// a DELTA completes while a full SCREEN is still in flight, and a
/// cancelled SCREEN leaves the daemon in exactly the state of a daemon
/// that never started it.
#[test]
fn cancelled_screen_is_invisible_and_delta_overtakes_a_big_screen() {
    let n = 8_192;
    let (addr, handle) = serve_preloaded(n, 4, 5.0, 240.0);
    let (control_addr, control_handle) = serve_preloaded(n, 4, 5.0, 240.0);

    let before = request(addr, &Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert_eq!(before.n_satellites, n);
    assert_eq!(before.pending_changes, n);

    // Launch a big tagged screen, then cancel it as soon as it registers.
    let screen_thread = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.send_tagged(&Request::Screen, "big").expect("SCREEN")
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let response = request(
            addr,
            &Request::Cancel {
                id: "big".to_string(),
            },
        )
        .expect("CANCEL");
        if response.ok {
            break;
        }
        assert!(
            response.error.unwrap().contains("no queued or running job"),
            "unexpected CANCEL failure"
        );
        assert!(
            Instant::now() < deadline,
            "CANCEL never caught the in-flight screen"
        );
        thread::sleep(Duration::from_millis(1));
    }
    let response = screen_thread.join().expect("screen thread");
    assert!(!response.ok, "cancelled screen must not return a result");
    let error = response.error.unwrap();
    assert!(error.contains("cancelled"), "unexpected error: {error}");

    // The daemon looks exactly like one that never started the screen.
    let after = request(addr, &Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert_eq!(after.n_satellites, before.n_satellites);
    assert_eq!(after.epoch, before.epoch);
    assert_eq!(after.pending_changes, before.pending_changes);
    assert_eq!(after.full_screens, 0);
    assert_eq!(after.delta_screens, 0);
    assert_eq!(after.live_conjunctions, 0);
    assert!(after.last_screen.is_none());

    // … and its first real screen is byte-identical (timings aside) to the
    // first screen of a control server that never saw the cancelled job.
    let ours = request(addr, &Request::Screen)
        .expect("SCREEN")
        .screen
        .unwrap();
    let control = request(control_addr, &Request::Screen)
        .expect("control SCREEN")
        .screen
        .unwrap();
    assert!(!ours.stale);
    assert_eq!(normalized(&ours), normalized(&control));

    // Warm engine, one mutation, then: DELTA on one connection completes
    // while a full screen of all 8k satellites is still running.
    let response = request(
        addr,
        &Request::Update {
            id: 7,
            elements: spec_for(7_777),
        },
    )
    .expect("UPDATE");
    assert!(response.ok);
    let screen_thread = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let response = client
            .send_tagged(&Request::Screen, "big-2")
            .expect("SCREEN");
        (response, Instant::now())
    });
    thread::sleep(Duration::from_millis(30)); // let the screen enqueue
    let delta = request(addr, &Request::Delta).expect("DELTA");
    let delta_done = Instant::now();
    assert!(delta.ok, "{:?}", delta.error);
    let (big, big_done) = screen_thread.join().expect("screen thread");
    assert!(big.ok, "{:?}", big.error);
    assert!(
        delta_done < big_done,
        "DELTA should complete while the full screen is still in flight"
    );

    // Replay equivalence: both ran at the same epoch, so they must agree.
    let delta = delta.screen.unwrap();
    let big = big.screen.unwrap();
    assert_eq!(delta.epoch, big.epoch);
    assert_eq!(delta.conjunctions, big.conjunctions);
    assert_eq!(delta.colliding_pairs, big.colliding_pairs);

    let metrics = request(addr, &Request::Metrics)
        .expect("METRICS")
        .metrics
        .unwrap();
    assert!(metrics.jobs_cancelled >= 1, "cancelled counter not bumped");
    assert!(metrics.queue_highwater >= 1);

    handle.shutdown();
    control_handle.shutdown();
}

/// Eight clients hammer one daemon with a mix of ADD, SCREEN, DELTA, and
/// CANCEL. Every response must be an ok or a well-known error; afterwards
/// the catalog holds exactly the expected satellites and a DELTA agrees
/// with a fresh full SCREEN at the same epoch.
#[test]
fn eight_concurrent_clients_mix_screens_deltas_cancels_and_adds() {
    let n = 512;
    let (addr, handle) = serve_preloaded(n, 4, 5.0, 120.0);

    // Warm the engine so DELTAs during the storm are cheap.
    let response = request(addr, &Request::Screen).expect("SCREEN");
    assert!(response.ok);

    let clients: Vec<_> = (0..8u64)
        .map(|k| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                match k % 4 {
                    0 => {
                        // Adders: 16 new satellites each, disjoint id ranges.
                        for j in 0..16u64 {
                            let id = 100_000 + k * 100 + j;
                            let response = client
                                .send(&Request::Add {
                                    id,
                                    elements: spec_for(id),
                                })
                                .expect("ADD");
                            assert!(response.ok, "ADD {id}: {:?}", response.error);
                        }
                    }
                    1 => {
                        // Tagged screeners: may be cancelled by the cancellers.
                        for j in 0..4 {
                            let req_id = format!("screen-{k}-{j}");
                            let response = client
                                .send_tagged(&Request::Screen, &req_id)
                                .expect("SCREEN");
                            assert!(
                                response.ok
                                    || response.error.as_deref().is_some_and(|e| {
                                        e.contains("cancelled") || e.contains("busy")
                                    }),
                                "SCREEN {req_id}: {:?}",
                                response.error
                            );
                            if response.ok {
                                assert_eq!(response.req_id.as_deref(), Some(req_id.as_str()));
                            }
                        }
                    }
                    2 => {
                        // Delta re-screeners.
                        for _ in 0..4 {
                            let response = client.send(&Request::Delta).expect("DELTA");
                            assert!(
                                response.ok
                                    || response
                                        .error
                                        .as_deref()
                                        .is_some_and(|e| e.contains("busy")),
                                "DELTA: {:?}",
                                response.error
                            );
                        }
                    }
                    _ => {
                        // Cancellers: race against the screeners' req_ids.
                        for screener in [1u64, 5] {
                            for j in 0..4 {
                                let response = client
                                    .send(&Request::Cancel {
                                        id: format!("screen-{screener}-{j}"),
                                    })
                                    .expect("CANCEL");
                                assert!(
                                        response.ok
                                            || response.error.as_deref().is_some_and(
                                                |e| e.contains("no queued or running job")
                                            ),
                                        "CANCEL: {:?}",
                                        response.error
                                    );
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for t in clients {
        t.join().expect("client thread");
    }

    // Quiesced: the catalog holds the preload plus both adders' batches.
    let status = request(addr, &Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert_eq!(status.n_satellites, n + 2 * 16);

    // Replay equivalence with no concurrent mutations: DELTA and a fresh
    // full SCREEN capture the same epoch and must agree exactly.
    let mut client = Client::connect(addr).expect("connect");
    let delta = client.send(&Request::Delta).expect("DELTA").screen.unwrap();
    let full = client
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .unwrap();
    assert_eq!(delta.epoch, full.epoch);
    assert_eq!(delta.conjunctions, full.conjunctions);
    assert_eq!(delta.colliding_pairs, full.colliding_pairs);
    assert!(!full.stale);

    let metrics = request(addr, &Request::Metrics)
        .expect("METRICS")
        .metrics
        .unwrap();
    assert!(metrics.queue_highwater >= 1);
    assert_eq!(metrics.worker_respawns, 0);
    drop(client);

    handle.shutdown();
}
