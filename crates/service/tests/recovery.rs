//! Crash-recovery end-to-end tests: a daemon killed and restarted from
//! its state directory must answer STATUS and DELTA exactly like a daemon
//! that never died. Both rest on the delta-correctness invariant — WAL
//! replay re-drives the same requests through the same deterministic
//! request path.

use kessler_core::ScreeningConfig;
use kessler_service::proto::{ElementsSpec, StatusInfo};
use kessler_service::{
    request, PersistOptions, Request, Response, Server, ServerHandle, ServerOptions,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir =
        std::env::temp_dir().join(format!("kessler-recovery-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_for(id: u64) -> ElementsSpec {
    ElementsSpec {
        a: 7_000.0 + id as f64 * 3.0,
        e: 0.001,
        incl: 0.4 + (id % 7) as f64 * 0.3,
        raan: id as f64 * 0.2,
        argp: 0.1,
        mean_anomaly: id as f64 * 0.37,
    }
}

fn config() -> ScreeningConfig {
    ScreeningConfig::grid_defaults(5.0, 120.0)
}

fn serve_persistent(dir: &Path, snapshot_every: u64) -> ServerHandle {
    let options = ServerOptions {
        persist: Some(PersistOptions {
            dir: dir.to_path_buf(),
            snapshot_every,
            keep_snapshots: 2,
            shards: None,
        }),
        ..ServerOptions::default()
    };
    Server::bind_with("127.0.0.1:0", config(), options)
        .expect("bind persistent server")
        .spawn()
        .expect("spawn server thread")
}

fn serve_ephemeral() -> ServerHandle {
    Server::bind("127.0.0.1:0", config())
        .expect("bind ephemeral server")
        .spawn()
        .expect("spawn server thread")
}

fn drive(addr: SocketAddr, requests: &[Request]) -> Vec<Response> {
    let mut client = kessler_service::Client::connect(addr).expect("connect");
    requests
        .iter()
        .map(|req| {
            let response = client.send(req).expect("request");
            assert!(response.ok, "{req:?} failed: {:?}", response.error);
            response
        })
        .collect()
}

fn status_of(addr: SocketAddr) -> StatusInfo {
    request(addr, &Request::Status)
        .expect("STATUS")
        .status
        .expect("status payload")
}

/// The parts of STATUS that must survive a restart bit-for-bit. Wall-clock
/// fields (uptime, timings) and the request counter are process-local.
fn durable_key(s: &StatusInfo) -> (usize, u64, usize, usize, u64, u64, (f64, f64)) {
    (
        s.n_satellites,
        s.epoch,
        s.pending_changes,
        s.live_conjunctions,
        s.full_screens,
        s.delta_screens,
        s.window,
    )
}

#[test]
fn restart_resumes_warm_and_matches_uninterrupted() {
    let dir = temp_dir("restart");

    // A script exercising every mutation: populate, screen, update, delta,
    // slide the window, add more (leaving pending changes un-screened).
    let mut script: Vec<Request> = (0..24u64)
        .map(|id| Request::Add {
            id,
            elements: spec_for(id),
        })
        .collect();
    script.push(Request::Screen);
    script.push(Request::Update {
        id: 3,
        elements: spec_for(40),
    });
    script.push(Request::Delta);
    script.push(Request::Advance { dt: 30.0 });
    script.push(Request::Add {
        id: 24,
        elements: spec_for(24),
    });
    script.push(Request::Add {
        id: 25,
        elements: spec_for(25),
    });

    // Daemon A: run the script with snapshots every 4 mutations, then die
    // (shutdown without any special flushing — every ack is already
    // durable).
    let daemon_a = serve_persistent(&dir, 4);
    drive(daemon_a.addr(), &script);
    let final_a = status_of(daemon_a.addr());
    daemon_a.shutdown();

    // Daemon B: restart from the state directory. No script — everything
    // must come back from snapshot + WAL replay.
    let daemon_b = serve_persistent(&dir, 4);
    // Daemon C: a control that never died, driven with the identical
    // script on a fresh in-memory server.
    let daemon_c = serve_ephemeral();
    drive(daemon_c.addr(), &script);

    let status_b = status_of(daemon_b.addr());
    let status_c = status_of(daemon_c.addr());
    assert_eq!(
        durable_key(&status_b),
        durable_key(&final_a),
        "restarted daemon differs from its pre-crash state"
    );
    assert_eq!(
        durable_key(&status_b),
        durable_key(&status_c),
        "restarted daemon differs from an uninterrupted control"
    );
    // STATUS is honest about recovery, and the request counter picks up
    // from the persisted count instead of restarting at the replay size
    // (the script alone was 30 requests; a fresh counter would be far
    // below that at this point).
    assert!(status_b.recovered, "daemon B restored from disk");
    assert!(!final_a.recovered, "daemon A started fresh");
    assert!(!status_c.recovered, "daemon C started fresh");
    assert!(
        status_b.requests_served >= 30,
        "request counter reset on recovery: {}",
        status_b.requests_served
    );
    // The warm engine carried over: the same UPDATE + DELTA on both
    // daemons produces identical summaries, including the top set.
    let post: Vec<Request> = vec![
        Request::Update {
            id: 5,
            elements: spec_for(41),
        },
        Request::Delta,
    ];
    let from_b = drive(daemon_b.addr(), &post);
    let from_c = drive(daemon_c.addr(), &post);
    let delta_b = from_b[1].screen.as_ref().expect("DELTA summary");
    let delta_c = from_c[1].screen.as_ref().expect("DELTA summary");
    assert_eq!(delta_b.n_satellites, delta_c.n_satellites);
    assert_eq!(delta_b.conjunctions, delta_c.conjunctions);
    assert_eq!(delta_b.colliding_pairs, delta_c.colliding_pairs);
    assert_eq!(delta_b.top, delta_c.top, "warm sets diverged");

    daemon_b.shutdown();
    daemon_c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_wal_tail_is_tolerated() {
    let dir = temp_dir("truncate");

    // No snapshots (huge cadence): state lives entirely in the WAL.
    let script: Vec<Request> = (0..6u64)
        .map(|id| Request::Add {
            id,
            elements: spec_for(id),
        })
        .collect();
    let daemon_a = serve_persistent(&dir, 1_000_000);
    drive(daemon_a.addr(), &script);
    let screened = drive(daemon_a.addr(), &[Request::Screen]);
    assert!(screened[0].screen.is_some());
    daemon_a.shutdown();

    // Simulate a crash mid-write: chop bytes off the WAL tail, damaging
    // the final record (the SCREEN) but nothing before it.
    let wal = dir.join("wal.log");
    let len = std::fs::metadata(&wal).expect("wal exists").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open wal");
    file.set_len(len - 20).expect("truncate wal");
    drop(file);

    // Restart: the six ADDs recover, the torn SCREEN is dropped.
    let daemon_b = serve_persistent(&dir, 1_000_000);
    // Control: the same six ADDs, never screened.
    let daemon_c = serve_ephemeral();
    drive(daemon_c.addr(), &script);

    let status_b = status_of(daemon_b.addr());
    let status_c = status_of(daemon_c.addr());
    assert_eq!(durable_key(&status_b), durable_key(&status_c));
    assert_eq!(status_b.n_satellites, 6);
    assert_eq!(status_b.full_screens, 0, "torn SCREEN must not replay");
    assert_eq!(status_b.pending_changes, 6);

    // Screening both from here still agrees.
    let screen_b = drive(daemon_b.addr(), &[Request::Screen])[0]
        .screen
        .clone()
        .expect("SCREEN summary");
    let screen_c = drive(daemon_c.addr(), &[Request::Screen])[0]
        .screen
        .clone()
        .expect("SCREEN summary");
    assert_eq!(screen_b.conjunctions, screen_c.conjunctions);
    assert_eq!(screen_b.top, screen_c.top);

    daemon_b.shutdown();
    daemon_c.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_after_restart_is_stable() {
    // Two consecutive restarts (snapshot + compaction after the first
    // replay) must not drift: a third daemon sees the same state.
    let dir = temp_dir("twice");
    let script: Vec<Request> = (0..9u64)
        .map(|id| Request::Add {
            id,
            elements: spec_for(id),
        })
        .chain([Request::Screen])
        .collect();

    let daemon = serve_persistent(&dir, 4);
    drive(daemon.addr(), &script);
    let first = status_of(daemon.addr());
    daemon.shutdown();

    let daemon = serve_persistent(&dir, 4);
    let second = status_of(daemon.addr());
    daemon.shutdown();

    let daemon = serve_persistent(&dir, 4);
    let third = status_of(daemon.addr());
    daemon.shutdown();

    assert_eq!(durable_key(&first), durable_key(&second));
    assert_eq!(durable_key(&second), durable_key(&third));
    assert!(!first.recovered);
    assert!(second.recovered && third.recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
