//! End-to-end test: real TCP server on an ephemeral port, four concurrent
//! clients populating the catalog, then screening, delta re-screening,
//! removal, and shutdown over the wire.

use kessler_core::ScreeningConfig;
use kessler_service::proto::ElementsSpec;
use kessler_service::{request, Client, Request, Server, DELTA_VARIANT};
use std::thread;
use std::time::{Duration, Instant};

/// Names of live threads in this process whose name starts with
/// `kessler-` — every thread the daemon spawns uses that prefix.
fn daemon_threads() -> Vec<String> {
    let mut names = Vec::new();
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return names; // not Linux; skip the leak check
    };
    for task in tasks.flatten() {
        if let Ok(comm) = std::fs::read_to_string(task.path().join("comm")) {
            let comm = comm.trim();
            if comm.starts_with("kessler-") {
                names.push(comm.to_string());
            }
        }
    }
    names
}

fn spec_for(id: u64) -> ElementsSpec {
    ElementsSpec {
        a: 7_000.0 + id as f64 * 3.0,
        e: 0.001,
        incl: 0.4 + (id % 7) as f64 * 0.3,
        raan: id as f64 * 0.2,
        argp: 0.1,
        mean_anomaly: id as f64 * 0.37,
    }
}

#[test]
fn four_concurrent_clients_drive_the_daemon() {
    let config = ScreeningConfig::grid_defaults(5.0, 120.0);
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn().expect("spawn server thread");

    // Four clients, each adding eight satellites over its own connection.
    let adders: Vec<_> = (0..4u64)
        .map(|k| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for j in 0..8u64 {
                    let id = k * 8 + j;
                    let response = client
                        .send(&Request::Add {
                            id,
                            elements: spec_for(id),
                        })
                        .expect("ADD");
                    assert!(response.ok, "ADD {id} failed: {:?}", response.error);
                    assert_eq!(response.catalog.as_ref().unwrap().id, id);
                }
                let response = client.send(&Request::Status).expect("STATUS");
                assert!(response.ok);
                response.status.unwrap().n_satellites
            })
        })
        .collect();
    for t in adders {
        // Each client saw at least its own 8 satellites at STATUS time.
        assert!(t.join().expect("client thread") >= 8);
    }

    let mut client = Client::connect(addr).expect("connect");

    let status = client
        .send(&Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert_eq!(status.n_satellites, 32);
    assert_eq!(status.pending_changes, 32);

    // Cold screen.
    let screen = client
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .unwrap();
    assert_eq!(screen.n_satellites, 32);
    assert_eq!(screen.variant, "grid");
    assert!(screen.top.len() <= kessler_service::proto::TOP_CONJUNCTIONS);

    // One update, then DELTA must agree with a fresh full SCREEN.
    let response = client
        .send(&Request::Update {
            id: 0,
            elements: spec_for(40),
        })
        .expect("UPDATE");
    assert!(response.ok);
    let delta = client.send(&Request::Delta).expect("DELTA").screen.unwrap();
    assert_eq!(delta.variant, DELTA_VARIANT);
    let full = client
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .unwrap();
    assert_eq!(delta.conjunctions, full.conjunctions);
    assert_eq!(delta.colliding_pairs, full.colliding_pairs);

    // STATUS surfaces per-request screen timing (observability-lite).
    let status = client
        .send(&Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert!(status.full_screens >= 2);
    assert!(status.delta_screens >= 1);
    let last = status.last_screen.expect("last_screen after screening");
    assert!(last.timings.total.as_secs_f64() >= 0.0);

    // Malformed input gets an error response, not a dropped connection.
    let response = client.send_line("this is not json").expect("raw line");
    assert!(!response.ok);
    assert!(response.error.unwrap().starts_with("bad request"));

    // Removal shrinks the catalog.
    let response = client.send(&Request::Remove { id: 17 }).expect("REMOVE");
    assert!(response.ok);
    assert_eq!(response.catalog.unwrap().n_satellites, 31);

    // Advance slides the window.
    let response = client
        .send(&Request::Advance { dt: 30.0 })
        .expect("ADVANCE");
    assert!(response.ok, "{:?}", response.error);
    assert_eq!(response.advance.unwrap().window, (30.0, 150.0));

    // A client-supplied req_id is echoed on the response — for screening
    // verbs (where it doubles as the CANCEL handle) and cheap ones alike.
    let response = client
        .send_tagged(&Request::Screen, "job-e2e")
        .expect("tagged SCREEN");
    assert!(response.ok, "{:?}", response.error);
    assert_eq!(response.req_id.as_deref(), Some("job-e2e"));
    let response = client
        .send_tagged(&Request::Status, "s-1")
        .expect("tagged STATUS");
    assert_eq!(response.req_id.as_deref(), Some("s-1"));
    // CANCEL of a finished/unknown id is a clean error, echo included.
    let response = client
        .send_tagged(
            &Request::Cancel {
                id: "job-e2e".to_string(),
            },
            "c-1",
        )
        .expect("CANCEL");
    assert!(!response.ok);
    assert_eq!(response.req_id.as_deref(), Some("c-1"));
    assert!(response.error.unwrap().contains("no queued or running job"));

    // Shutdown via the one-shot helper, then join the server thread.
    drop(client); // let its connection thread exit
    let response = request(addr, &Request::Shutdown).expect("SHUTDOWN");
    assert!(response.ok);
    handle.shutdown();

    wait_for_no_daemon_threads("after the driven shutdown");

    // Regression: an *idle* client must not keep daemon threads alive
    // past SHUTDOWN. The old thread-per-connection front end parked a
    // detached `kessler-conn` thread in a blocking read here, leaking it
    // until the client went away; the evented loop owns all connections
    // and tears them down itself. The idle client stays connected the
    // whole time.
    let server = Server::bind("127.0.0.1:0", ScreeningConfig::grid_defaults(5.0, 120.0))
        .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.spawn().expect("spawn server thread");
    let mut idle = Client::connect(addr).expect("connect idle client");
    assert!(idle.send(&Request::Status).expect("STATUS").ok);

    let response = request(addr, &Request::Shutdown).expect("SHUTDOWN");
    assert!(response.ok);
    handle.shutdown();
    wait_for_no_daemon_threads("with an idle client still connected");
    drop(idle);
}

/// Every daemon thread is named `kessler-*`; after shutdown none may
/// linger (workers, supervisors, reporter, the event loop). Give them a
/// moment to observe the shutdown.
fn wait_for_no_daemon_threads(when: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stray = daemon_threads();
        if stray.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon threads leaked past shutdown {when}: {stray:?}"
        );
        thread::sleep(Duration::from_millis(50));
    }
}
