//! Wire-level tests against the evented connection front end: raw TCP
//! clients exercising the behaviors the thread-per-connection model never
//! had to define — pipelined requests on one connection, out-of-order
//! completion for worker-pool verbs, non-UTF-8 rejection, oversized-line
//! resync, and push shedding under backpressure.

use kessler_core::ScreeningConfig;
use kessler_service::proto::ElementsSpec;
use kessler_service::{Client, Request, Response, Server, ServerHandle, ServerOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn config() -> ScreeningConfig {
    ScreeningConfig::grid_defaults(5.0, 120.0)
}

fn serve(options: ServerOptions) -> ServerHandle {
    Server::bind_with("127.0.0.1:0", config(), options)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server thread")
}

fn spec_for(id: u64) -> ElementsSpec {
    ElementsSpec {
        a: 7_000.0 + id as f64 * 3.0,
        e: 0.001,
        incl: 0.4 + (id % 7) as f64 * 0.3,
        raan: id as f64 * 0.2,
        argp: 0.1,
        mean_anomaly: id as f64 * 0.37,
    }
}

/// A raw wire client: writes arbitrary bytes, reads JSON lines. The
/// library [`Client`] cannot send invalid UTF-8 or pipelined batches,
/// which is exactly what these tests need.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: std::net::SocketAddr) -> Raw {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Raw {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn write_all(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("write");
        self.writer.flush().expect("flush");
    }

    fn read_response(&mut self) -> Response {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read line");
        assert!(n > 0, "server closed the connection");
        serde_json::from_str(&line).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
    }
}

#[test]
fn invalid_utf8_gets_a_protocol_error_not_a_disconnect() {
    let server = serve(ServerOptions::default());
    let mut raw = Raw::connect(server.addr());

    // 0xFF can never appear in UTF-8; 0xC3 0x28 is an overlong-style
    // broken two-byte sequence. Both must be answered, not dropped, and
    // must not be lossily folded into replacement characters.
    for bad in [
        &b"\xff\xfe{\"cmd\":\"STATUS\"}\n"[..],
        &b"{\"cmd\": \xc3\x28}\n"[..],
    ] {
        raw.write_all(bad);
        let response = raw.read_response();
        assert!(!response.ok);
        assert!(
            response.error.as_deref().unwrap_or("").contains("UTF-8"),
            "{:?}",
            response.error
        );
    }

    // The same connection keeps working afterwards.
    raw.write_all(b"{\"cmd\":\"STATUS\"}\n");
    let response = raw.read_response();
    assert!(response.ok, "{:?}", response.error);
    assert!(response.status.is_some());

    server.shutdown();
}

#[test]
fn pipelined_mutations_answer_in_order_on_one_connection() {
    let server = serve(ServerOptions::default());
    let mut raw = Raw::connect(server.addr());

    // Two mutations plus a read, written back-to-back in one segment
    // before reading anything: the evented layer must process all three
    // frames from one read and answer each, in order.
    let batch = concat!(
        "{\"cmd\":\"ADD\",\"id\":1,\"elements\":{\"a\":7000.0,\"e\":0.001,\"incl\":0.5,\"raan\":0.0,\"argp\":0.0,\"mean_anomaly\":0.0}}\n",
        "{\"cmd\":\"ADD\",\"id\":2,\"elements\":{\"a\":7010.0,\"e\":0.001,\"incl\":0.5,\"raan\":0.0,\"argp\":0.0,\"mean_anomaly\":1.0}}\n",
        "{\"cmd\":\"STATUS\"}\n"
    );
    raw.write_all(batch.as_bytes());

    let first = raw.read_response();
    assert!(first.ok, "{:?}", first.error);
    assert_eq!(first.catalog.as_ref().expect("catalog ack").id, 1);
    let second = raw.read_response();
    assert!(second.ok, "{:?}", second.error);
    assert_eq!(second.catalog.as_ref().expect("catalog ack").id, 2);
    let third = raw.read_response();
    assert_eq!(
        third.status.expect("status payload").n_satellites,
        2,
        "STATUS ran after both pipelined ADDs"
    );

    server.shutdown();
}

#[test]
fn worker_pool_verbs_complete_out_of_order_with_inline_verbs() {
    let server = serve(ServerOptions::default());
    let mut seed = Client::connect(server.addr()).expect("connect");
    for id in 0..16u64 {
        assert!(
            seed.send(&Request::Add {
                id,
                elements: spec_for(id),
            })
            .expect("ADD")
            .ok
        );
    }

    // SCREEN goes to the worker pool; STATUS is answered inline by the
    // event loop while the screen is still in flight. Both frames arrive
    // in one segment, so they are processed in one batch and the STATUS
    // response is queued before the worker's completion can be routed:
    // the responses come back in the *reverse* of request order, matched
    // by req_id.
    let mut raw = Raw::connect(server.addr());
    raw.write_all(
        b"{\"cmd\":\"SCREEN\",\"req_id\":\"slow\"}\n{\"cmd\":\"STATUS\",\"req_id\":\"quick\"}\n",
    );
    let first = raw.read_response();
    assert_eq!(first.req_id.as_deref(), Some("quick"));
    assert!(first.status.is_some());
    let second = raw.read_response();
    assert_eq!(second.req_id.as_deref(), Some("slow"));
    assert!(second.ok, "{:?}", second.error);
    assert_eq!(second.screen.expect("screen payload").n_satellites, 16);

    server.shutdown();
}

#[test]
fn oversized_line_is_rejected_once_and_the_stream_resyncs() {
    let options = ServerOptions {
        max_line_bytes: 2_048,
        ..ServerOptions::default()
    };
    let server = serve(options);
    let mut raw = Raw::connect(server.addr());

    // 6 KiB of garbage with no newline, then the newline, then a valid
    // request: exactly one cap error, then normal service.
    let mut junk = vec![b'x'; 6 * 1024];
    junk.push(b'\n');
    junk.extend_from_slice(b"{\"cmd\":\"STATUS\"}\n");
    raw.write_all(&junk);

    let first = raw.read_response();
    assert!(!first.ok);
    assert!(
        first
            .error
            .as_deref()
            .unwrap_or("")
            .contains("exceeds the 2048-byte cap"),
        "{:?}",
        first.error
    );
    let second = raw.read_response();
    assert!(second.ok, "{:?}", second.error);
    assert!(second.status.is_some());

    // A line just under the cap still goes through (the cap excludes the
    // newline itself): pad a STATUS request with ignored whitespace.
    let mut line = b"{\"cmd\":\"STATUS\"}".to_vec();
    line.resize(2_047, b' ');
    line.push(b'\n');
    raw.write_all(&line);
    assert!(raw.read_response().ok);

    server.shutdown();
}

#[test]
fn pushes_are_shed_at_the_write_buffer_high_water_mark() {
    // A one-byte high-water mark: every push is shed, while request
    // responses still flow (they disconnect only past the hard cap).
    let options = ServerOptions {
        write_highwater: 1,
        ..ServerOptions::default()
    };
    let server = serve(options);

    let mut subscriber = Client::connect(server.addr()).expect("connect subscriber");
    let ack = subscriber
        .send(&Request::Subscribe {
            assets: vec![],
            all: true,
        })
        .expect("SUBSCRIBE")
        .subscription
        .expect("subscription ack");
    assert!(ack.all);

    let mut driver = Client::connect(server.addr()).expect("connect driver");
    // Two co-located satellites: the screen finds their pair and tries to
    // push a `new` event at the subscriber.
    for (id, m) in [(1u64, 0.0f64), (2, 0.0004)] {
        let response = driver
            .send(&Request::Add {
                id,
                elements: ElementsSpec {
                    a: 7_000.0,
                    e: 0.001,
                    incl: 0.5,
                    raan: 0.3,
                    argp: 0.1,
                    mean_anomaly: m,
                },
            })
            .expect("ADD");
        assert!(response.ok, "{:?}", response.error);
    }
    let screen = driver
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .expect("screen payload");
    assert!(screen.conjunctions > 0, "pair not found: {screen:?}");

    let metrics = driver
        .send(&Request::Metrics)
        .expect("METRICS")
        .metrics
        .expect("metrics payload");
    assert_eq!(metrics.subscribers, 1);
    assert_eq!(metrics.events_pushed, 0, "{metrics:?}");
    assert!(metrics.events_dropped >= 1, "{metrics:?}");

    // The subscriber connection itself survived the shedding.
    assert!(subscriber.send(&Request::Status).expect("STATUS").ok);

    server.shutdown();
}
