//! Disk-chaos suite: drive the daemon against a failing disk and prove
//! there is no silent divergence. Every acknowledged mutation survives a
//! kill → restart; every failed one is rejected with `not_applied` and
//! leaves state byte-identical to never having been sent; the daemon
//! degrades to read-only under a persistent outage and recovers on its
//! own (visible in STATUS `mode` and the METRICS resilience counters).
//!
//! The oracle throughout is a control daemon: an uninterrupted in-memory
//! server driven with exactly the acknowledged script. If the chaos
//! daemon and the control ever answer STATUS or screening differently,
//! a fault leaked into the replayable history.

use kessler_core::ScreeningConfig;
use kessler_orbits::{ContourSolver, KeplerElements, PropagationConstants};
use kessler_population::fragmentation::Fragmentation;
use kessler_service::proto::{ElementsSpec, StatusInfo};
use kessler_service::MetricsSnapshot;
use kessler_service::{
    request, Client, FaultPlan, PersistOptions, Request, Response, Server, ServerHandle,
    ServerOptions,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!(
        "kessler-diskchaos-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_for(id: u64) -> ElementsSpec {
    ElementsSpec {
        a: 7_000.0 + id as f64 * 3.0,
        e: 0.001,
        incl: 0.4 + (id % 7) as f64 * 0.3,
        raan: id as f64 * 0.2,
        argp: 0.1,
        mean_anomaly: id as f64 * 0.37,
    }
}

fn config() -> ScreeningConfig {
    ScreeningConfig::grid_defaults(5.0, 120.0)
}

/// A persistent daemon with injectable storage faults and a fast probe,
/// so degraded→normal recovery happens within test timescales.
fn serve_chaos(dir: &Path, snapshot_every: u64, faults: Arc<FaultPlan>) -> ServerHandle {
    let options = ServerOptions {
        persist: Some(PersistOptions {
            dir: dir.to_path_buf(),
            snapshot_every,
            keep_snapshots: 2,
            shards: None,
        }),
        faults,
        probe_initial: Duration::from_millis(20),
        probe_max: Duration::from_millis(200),
        ..ServerOptions::default()
    };
    Server::bind_with("127.0.0.1:0", config(), options)
        .expect("bind chaos server")
        .spawn()
        .expect("spawn server thread")
}

fn serve_control() -> ServerHandle {
    Server::bind("127.0.0.1:0", config())
        .expect("bind control server")
        .spawn()
        .expect("spawn server thread")
}

fn drive(addr: SocketAddr, requests: &[Request]) -> Vec<Response> {
    let mut client = Client::connect(addr).expect("connect");
    requests
        .iter()
        .map(|req| {
            let response = client.send(req).expect("request");
            assert!(response.ok, "{req:?} failed: {:?}", response.error);
            response
        })
        .collect()
}

fn status_of(addr: SocketAddr) -> StatusInfo {
    request(addr, &Request::Status)
        .expect("STATUS")
        .status
        .expect("status payload")
}

fn metrics_of(addr: SocketAddr) -> MetricsSnapshot {
    request(addr, &Request::Metrics)
        .expect("METRICS")
        .metrics
        .expect("metrics payload")
}

/// The parts of STATUS that must survive faults and restarts bit-for-bit.
fn durable_key(s: &StatusInfo) -> (usize, u64, usize, usize, u64, u64, (f64, f64)) {
    (
        s.n_satellites,
        s.epoch,
        s.pending_changes,
        s.live_conjunctions,
        s.full_screens,
        s.delta_screens,
        s.window,
    )
}

/// Poll STATUS until the daemon reports `mode`, or panic after ~10 s.
fn wait_for_mode(addr: SocketAddr, mode: &str) -> StatusInfo {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = status_of(addr);
        if status.mode == mode {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never reached mode `{mode}` (stuck at `{}`)",
            status.mode
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A fragmentation-cascade-sized ingest load: debris cloud from a breakup
/// in a congested LEO shell, deterministic via the seed.
fn debris_cloud(fragments: usize) -> Vec<ElementsSpec> {
    let parent = KeplerElements::new(7_178.0, 0.0005, 1.05, 0.7, 1.3, 2.0).expect("parent orbit");
    let state =
        PropagationConstants::from_elements(&parent).propagate(0.0, &ContourSolver::default());
    Fragmentation {
        fragments,
        delta_v_sigma: 0.05,
        seed: 0xD15C,
    }
    .generate_from_state(state)
    .expect("fragment generation must not fall short")
    .iter()
    .map(ElementsSpec::from_elements)
    .collect()
}

/// One injected WAL-append EIO: the mutation is rejected with
/// `not_applied`, the daemon degrades, the probe restores it, and a
/// kill → restart converges to a control that never saw the failed ADD.
#[test]
fn failed_append_rolls_back_and_the_daemon_self_heals() {
    let dir = temp_dir("append-eio");
    let faults = Arc::new(FaultPlan::default());
    let chaos = serve_chaos(&dir, 1_000, Arc::clone(&faults));
    let mut client = Client::connect(chaos.addr()).expect("connect");

    let mut acked: Vec<Request> = Vec::new();
    for id in 0..6u64 {
        let req = Request::Add {
            id,
            elements: spec_for(id),
        };
        assert!(client.send(&req).expect("ADD").ok);
        acked.push(req);
    }

    faults.arm_wal_append_eio();
    let rejected = client
        .send(&Request::Add {
            id: 6,
            elements: spec_for(6),
        })
        .expect("rejected ADD still answers");
    assert!(!rejected.ok);
    assert!(rejected.not_applied, "rejection must guarantee no apply");
    let err = rejected.error.as_deref().unwrap_or("");
    assert!(err.contains("not applied"), "{err}");
    assert!(err.contains("wal append failed"), "{err}");

    // The probe recovers on its own — no operator intervention.
    wait_for_mode(chaos.addr(), "normal");

    // The identical retry now lands: the rollback left no trace of the
    // failed attempt (a half-applied ADD would answer DuplicateId here).
    let retry = Request::Add {
        id: 6,
        elements: spec_for(6),
    };
    assert!(client.send(&retry).expect("retry ADD").ok, "retry rejected");
    acked.push(retry);

    let metrics = metrics_of(chaos.addr());
    assert!(metrics.wal_append_failures >= 1, "{metrics:?}");
    assert!(metrics.degraded_entries >= 1, "{metrics:?}");
    assert!(metrics.degraded_recoveries >= 1, "{metrics:?}");

    let pre_kill = status_of(chaos.addr());
    chaos.shutdown();

    // Restart from disk; control replays only the acknowledged script.
    let reborn = serve_chaos(&dir, 1_000, Arc::new(FaultPlan::default()));
    let control = serve_control();
    drive(control.addr(), &acked);

    let reborn_status = status_of(reborn.addr());
    assert_eq!(
        durable_key(&reborn_status),
        durable_key(&pre_kill),
        "restart lost or invented state"
    );
    assert_eq!(
        durable_key(&reborn_status),
        durable_key(&status_of(control.addr())),
        "restarted daemon diverged from the acked-only control"
    );

    reborn.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sticky outage under a fragmentation-cascade ingest: mid-cloud the disk
/// dies outright. The daemon must reject every mutation (read-only),
/// keep serving STATUS/METRICS and ephemeral screens, back off and
/// re-probe, recover when the disk returns, finish the ingest, and after
/// a kill → restart be indistinguishable from an uninterrupted control.
#[test]
fn sticky_outage_degrades_serves_reads_and_recovers() {
    let dir = temp_dir("sticky");
    let faults = Arc::new(FaultPlan::default());
    let chaos = serve_chaos(&dir, 25, Arc::clone(&faults));
    let control = serve_control();
    let mut chaos_client = Client::connect(chaos.addr()).expect("connect chaos");
    let mut control_client = Client::connect(control.addr()).expect("connect control");

    let cloud = debris_cloud(120);
    let send_add = |client: &mut Client, id: u64, el: &ElementsSpec| {
        client
            .send(&Request::Add { id, elements: *el })
            .expect("ADD")
    };

    // First half of the cascade lands on both daemons.
    for (id, el) in cloud.iter().take(60).enumerate() {
        assert!(send_add(&mut chaos_client, id as u64, el).ok);
        assert!(send_add(&mut control_client, id as u64, el).ok);
    }

    // The disk dies. The first rejection reports the append failure …
    faults.set_wal_broken(true);
    let first = send_add(&mut chaos_client, 60, &cloud[60]);
    assert!(!first.ok && first.not_applied);
    assert!(
        first
            .error
            .as_deref()
            .unwrap_or("")
            .contains("wal append failed"),
        "{:?}",
        first.error
    );
    // … and every mutation after it is a typed degraded rejection.
    let second = send_add(&mut chaos_client, 61, &cloud[61]);
    assert!(!second.ok && second.not_applied);
    assert!(
        second
            .error
            .as_deref()
            .unwrap_or("")
            .contains("degraded (read-only)"),
        "{:?}",
        second.error
    );
    assert_eq!(status_of(chaos.addr()).mode, "degraded");

    // Reads still work: SCREEN is computed and served, but marked
    // ephemeral — it must not enter the replayable history.
    let screen = chaos_client.send(&Request::Screen).expect("SCREEN");
    assert!(screen.ok, "{:?}", screen.error);
    let summary = screen.screen.expect("screen summary");
    assert!(summary.ephemeral, "degraded screen must be ephemeral");
    assert_eq!(summary.n_satellites, 60);

    // ADVANCE would have to mutate the catalog: rejected outright.
    let advance = chaos_client
        .send(&Request::Advance { dt: 30.0 })
        .expect("ADVANCE answers");
    assert!(!advance.ok && advance.not_applied);
    assert!(
        advance
            .error
            .as_deref()
            .unwrap_or("")
            .contains("degraded (read-only)"),
        "{:?}",
        advance.error
    );

    // The probe keeps hitting the dead disk with backoff.
    let probes_then = metrics_of(chaos.addr()).probe_failures;
    std::thread::sleep(Duration::from_millis(400));
    let probes_now = metrics_of(chaos.addr()).probe_failures;
    assert!(
        probes_now > probes_then,
        "probe stopped retrying ({probes_then} → {probes_now})"
    );

    // Disk comes back; the daemon recovers on its own.
    faults.set_wal_broken(false);
    wait_for_mode(chaos.addr(), "normal");

    // Finish the cascade on both daemons — including the two rejected
    // ids, whose rejections guaranteed nothing was applied.
    for (id, el) in cloud.iter().enumerate().skip(60) {
        let response = send_add(&mut chaos_client, id as u64, el);
        assert!(response.ok, "post-recovery ADD {id}: {:?}", response.error);
        assert!(send_add(&mut control_client, id as u64, el).ok);
    }

    // Both screen the full cloud; the adopted results must agree exactly.
    let chaos_screen = drive(chaos.addr(), &[Request::Screen])[0]
        .screen
        .clone()
        .expect("chaos SCREEN");
    let control_screen = drive(control.addr(), &[Request::Screen])[0]
        .screen
        .clone()
        .expect("control SCREEN");
    assert!(!chaos_screen.ephemeral, "post-recovery screen is durable");
    assert_eq!(chaos_screen.n_satellites, control_screen.n_satellites);
    assert_eq!(chaos_screen.conjunctions, control_screen.conjunctions);
    assert_eq!(chaos_screen.colliding_pairs, control_screen.colliding_pairs);
    assert_eq!(chaos_screen.top, control_screen.top, "warm sets diverged");

    let metrics = metrics_of(chaos.addr());
    assert!(metrics.degraded_entries >= 1);
    assert!(metrics.degraded_recoveries >= 1);
    assert!(metrics.probe_failures >= 1);

    // Kill → restart: the outage must be invisible in the recovered state.
    let pre_kill = status_of(chaos.addr());
    chaos.shutdown();
    let reborn = serve_chaos(&dir, 25, Arc::new(FaultPlan::default()));
    let reborn_status = status_of(reborn.addr());
    assert_eq!(durable_key(&reborn_status), durable_key(&pre_kill));
    assert_eq!(
        durable_key(&reborn_status),
        durable_key(&status_of(control.addr())),
        "outage leaked into the replayable history"
    );
    // And the recovered warm engine still answers DELTA like the control.
    let post: Vec<Request> = vec![
        Request::Update {
            id: 7,
            elements: spec_for(200),
        },
        Request::Delta,
    ];
    let delta_reborn = drive(reborn.addr(), &post)[1]
        .screen
        .clone()
        .expect("reborn DELTA");
    let delta_control = drive(control.addr(), &post)[1]
        .screen
        .clone()
        .expect("control DELTA");
    assert_eq!(delta_reborn.conjunctions, delta_control.conjunctions);
    assert_eq!(delta_reborn.top, delta_control.top);

    reborn.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failed snapshot is not a failed mutation: the ADD stays acknowledged
/// (the WAL covers it), the failure is counted, and the *next* mutation
/// retries the snapshot and compacts the WAL.
#[test]
fn snapshot_failure_keeps_the_ack_and_retries_next_mutation() {
    let dir = temp_dir("snapfail");
    let faults = Arc::new(FaultPlan::default());
    let chaos = serve_chaos(&dir, 4, Arc::clone(&faults));
    let mut client = Client::connect(chaos.addr()).expect("connect");

    for id in 0..3u64 {
        assert!(
            client
                .send(&Request::Add {
                    id,
                    elements: spec_for(id),
                })
                .expect("ADD")
                .ok
        );
    }

    // The 4th mutation triggers the cadence snapshot — which fails.
    faults.arm_snapshot_write_fail();
    let response = client
        .send(&Request::Add {
            id: 3,
            elements: spec_for(3),
        })
        .expect("ADD with failing snapshot");
    assert!(response.ok, "a snapshot failure must not reject the ack");

    let metrics = metrics_of(chaos.addr());
    assert_eq!(metrics.snapshot_failures, 1, "{metrics:?}");
    assert_eq!(status_of(chaos.addr()).mode, "normal");

    // The next mutation retries and the snapshot lands, covering seq 5.
    assert!(
        client
            .send(&Request::Add {
                id: 4,
                elements: spec_for(4),
            })
            .expect("ADD retries snapshot")
            .ok
    );
    let snapshots: Vec<String> = std::fs::read_dir(&dir)
        .expect("state dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("snapshot-") && n.ends_with(".json"))
        .collect();
    assert!(
        snapshots.iter().any(|n| n.ends_with("5.json")),
        "retried snapshot missing: {snapshots:?}"
    );

    chaos.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// ENOSPC is reported as what it is, and one freed-up disk later the
/// daemon is whole again.
#[test]
fn enospc_is_reported_and_transient() {
    let dir = temp_dir("enospc");
    let faults = Arc::new(FaultPlan::default());
    let chaos = serve_chaos(&dir, 1_000, Arc::clone(&faults));
    let mut client = Client::connect(chaos.addr()).expect("connect");
    assert!(
        client
            .send(&Request::Add {
                id: 0,
                elements: spec_for(0),
            })
            .expect("ADD")
            .ok
    );

    faults.arm_wal_append_enospc();
    let rejected = client
        .send(&Request::Add {
            id: 1,
            elements: spec_for(1),
        })
        .expect("rejected ADD answers");
    assert!(!rejected.ok && rejected.not_applied);
    assert!(
        rejected
            .error
            .as_deref()
            .unwrap_or("")
            .contains("os error 28"),
        "ENOSPC errno lost: {:?}",
        rejected.error
    );

    wait_for_mode(chaos.addr(), "normal");
    assert!(
        client
            .send(&Request::Add {
                id: 1,
                elements: spec_for(1),
            })
            .expect("retry ADD")
            .ok
    );
    assert_eq!(status_of(chaos.addr()).n_satellites, 2);
    chaos.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An fsync failure after the bytes were written must not leave a
/// phantom record: the daemon truncates the un-synced bytes, and a
/// kill → restart matches a control that never saw the failed mutation.
#[test]
fn fsync_failure_leaves_no_phantom_record_across_restart() {
    let dir = temp_dir("fsync");
    let faults = Arc::new(FaultPlan::default());
    let chaos = serve_chaos(&dir, 1_000, Arc::clone(&faults));
    let mut client = Client::connect(chaos.addr()).expect("connect");

    let acked: Vec<Request> = (0..5u64)
        .map(|id| Request::Add {
            id,
            elements: spec_for(id),
        })
        .collect();
    for req in &acked {
        assert!(client.send(req).expect("ADD").ok);
    }

    faults.arm_wal_fsync_fail();
    let rejected = client
        .send(&Request::Add {
            id: 5,
            elements: spec_for(5),
        })
        .expect("rejected ADD answers");
    assert!(!rejected.ok && rejected.not_applied, "{rejected:?}");

    // Kill immediately — recovery may or may not have run; either way the
    // failed record's bytes must not replay.
    chaos.shutdown();
    let reborn = serve_chaos(&dir, 1_000, Arc::new(FaultPlan::default()));
    let control = serve_control();
    drive(control.addr(), &acked);
    assert_eq!(
        durable_key(&status_of(reborn.addr())),
        durable_key(&status_of(control.addr())),
        "fsync residue replayed as a phantom mutation"
    );

    // The id the failed ADD would have used is genuinely free.
    let readd = drive(
        reborn.addr(),
        &[Request::Add {
            id: 5,
            elements: spec_for(5),
        }],
    );
    assert!(readd[0].ok);
    assert_eq!(status_of(reborn.addr()).n_satellites, 6);

    reborn.shutdown();
    control.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
