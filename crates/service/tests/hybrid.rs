//! Hybrid-variant service tests: a daemon serving `--variant hybrid` must
//! answer SCREEN/DELTA/ADVANCE through the orbital filter chain with
//! filter-chain stats in its payloads, a cancelled hybrid screen must be
//! invisible, and variant-aware snapshot recovery must come back warm
//! (same variant), cold (variant changed), or defaulted to grid
//! (pre-variant snapshot).

use kessler_core::{ScreeningConfig, Variant};
use kessler_population::{PopulationConfig, PopulationGenerator};
use kessler_service::proto::ScreenSummary;
use kessler_service::{
    request, wal, Client, PersistOptions, Request, Server, ServerHandle, ServerOptions,
    HYBRID_DELTA_VARIANT,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

fn config_for(variant: Variant, span_s: f64) -> ScreeningConfig {
    match variant {
        Variant::Hybrid => ScreeningConfig::hybrid_defaults(5.0, span_s),
        _ => ScreeningConfig::grid_defaults(5.0, span_s),
    }
}

fn serve_preloaded(
    variant: Variant,
    n: usize,
    workers: usize,
    span_s: f64,
) -> (SocketAddr, ServerHandle) {
    let options = ServerOptions {
        workers,
        variant,
        ..ServerOptions::default()
    };
    let server = Server::bind_with("127.0.0.1:0", config_for(variant, span_s), options)
        .expect("bind ephemeral port");
    let population = PopulationGenerator::new(PopulationConfig {
        seed: 42,
        ..Default::default()
    })
    .generate(n);
    server.preload(&population).expect("preload");
    let addr = server.local_addr();
    (addr, server.spawn().expect("spawn server thread"))
}

/// Everything in a screen payload except the wall-clock timings, as a
/// canonical JSON string, for byte-identical comparisons across servers.
fn normalized(summary: &ScreenSummary) -> String {
    let mut value = serde_json::to_value(summary).expect("serialize summary");
    value
        .as_object_mut()
        .expect("summary is an object")
        .remove("timings");
    value.to_string()
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("kessler-hybrid-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persist_options(dir: &Path) -> PersistOptions {
    PersistOptions {
        dir: dir.to_path_buf(),
        snapshot_every: 1,
        keep_snapshots: 2,
        shards: None,
    }
}

/// Newest snapshot file in a state directory, by WAL sequence.
fn newest_snapshot(dir: &Path) -> PathBuf {
    std::fs::read_dir(dir)
        .expect("list state dir")
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name();
            let seq = name
                .to_str()?
                .strip_prefix("snapshot-")?
                .strip_suffix(".json")?
                .parse::<u64>()
                .ok()?;
            Some((seq, entry.path()))
        })
        .max_by_key(|(seq, _)| *seq)
        .expect("at least one snapshot")
        .1
}

#[test]
fn hybrid_daemon_serves_screen_delta_advance_with_filter_stats() {
    let (addr, handle) = serve_preloaded(Variant::Hybrid, 256, 2, 120.0);
    let mut client = Client::connect(addr).expect("connect");

    let status = client
        .send(&Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert_eq!(status.variant, "hybrid");
    assert!(status.last_screen.is_none());

    // Cold full screen: hybrid label, filter-chain stats attached.
    let screen = client
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .unwrap();
    assert_eq!(screen.n_satellites, 256);
    assert_eq!(screen.variant, "hybrid");
    let stats = screen.filter_stats.expect("hybrid screens carry stats");
    assert!(stats.tested > 0, "the chain saw no candidate pairs");
    assert!(stats.kept <= stats.tested);

    // One update, then DELTA takes the hybrid delta path and must agree
    // with a fresh full hybrid screen at the same epoch.
    let response = client
        .send(&Request::Update {
            id: 7,
            elements: kessler_service::ElementsSpec {
                a: 7_021.0,
                e: 0.001,
                incl: 1.3,
                raan: 1.4,
                argp: 0.1,
                mean_anomaly: 2.2,
            },
        })
        .expect("UPDATE");
    assert!(response.ok, "{:?}", response.error);
    let delta = client.send(&Request::Delta).expect("DELTA").screen.unwrap();
    assert_eq!(delta.variant, HYBRID_DELTA_VARIANT);
    assert!(
        delta.filter_stats.is_some(),
        "hybrid deltas run the filter chain too"
    );
    let full = client
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .unwrap();
    assert_eq!(delta.conjunctions, full.conjunctions);
    assert_eq!(delta.colliding_pairs, full.colliding_pairs);

    // STATUS reports the serving variant and the last adopted screen with
    // its chain stats.
    let status = client
        .send(&Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert_eq!(status.variant, "hybrid");
    assert!(status.full_screens >= 2);
    assert!(status.delta_screens >= 1);
    let last = status.last_screen.expect("last_screen after screening");
    assert_eq!(last.variant, "hybrid");
    assert!(last.filter_stats.is_some());

    // ADVANCE screens the freshly exposed tail through the same chain.
    let response = client
        .send(&Request::Advance { dt: 30.0 })
        .expect("ADVANCE");
    assert!(response.ok, "{:?}", response.error);
    assert_eq!(response.advance.unwrap().window, (30.0, 150.0));
    let status = client
        .send(&Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert_eq!(status.last_screen.unwrap().variant, "hybrid");

    // METRICS accumulates the chain counters across everything above.
    let metrics = client
        .send(&Request::Metrics)
        .expect("METRICS")
        .metrics
        .unwrap();
    let chain = metrics.filter_chain.expect("filter-chain counters");
    assert!(chain.tested >= stats.tested);
    assert!(chain.kept <= chain.tested);

    drop(client);
    handle.shutdown();
}

/// A CANCEL that lands mid-hybrid-screen (inside the filter-evaluation or
/// refinement loops) must leave the daemon in exactly the state of a
/// control daemon that never started the screen.
#[test]
fn cancelled_hybrid_screen_is_invisible() {
    let n = 8_192;
    let (addr, handle) = serve_preloaded(Variant::Hybrid, n, 4, 240.0);
    let (control_addr, control_handle) = serve_preloaded(Variant::Hybrid, n, 4, 240.0);

    let before = request(addr, &Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert_eq!(before.n_satellites, n);
    assert_eq!(before.variant, "hybrid");

    // Launch a big tagged screen, then cancel it as soon as it registers.
    let screen_thread = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.send_tagged(&Request::Screen, "big").expect("SCREEN")
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let response = request(
            addr,
            &Request::Cancel {
                id: "big".to_string(),
            },
        )
        .expect("CANCEL");
        if response.ok {
            break;
        }
        assert!(
            response.error.unwrap().contains("no queued or running job"),
            "unexpected CANCEL failure"
        );
        assert!(
            Instant::now() < deadline,
            "CANCEL never caught the in-flight hybrid screen"
        );
        thread::sleep(Duration::from_millis(1));
    }
    let response = screen_thread.join().expect("screen thread");
    assert!(!response.ok, "cancelled screen must not return a result");
    let error = response.error.unwrap();
    assert!(error.contains("cancelled"), "unexpected error: {error}");

    // The daemon looks exactly like one that never started the screen.
    let after = request(addr, &Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert_eq!(after.n_satellites, before.n_satellites);
    assert_eq!(after.epoch, before.epoch);
    assert_eq!(after.pending_changes, before.pending_changes);
    assert_eq!(after.full_screens, 0);
    assert_eq!(after.delta_screens, 0);
    assert_eq!(after.live_conjunctions, 0);
    assert!(after.last_screen.is_none());

    // … and its first real screen is byte-identical (timings aside) to the
    // first screen of a control daemon that never saw the cancelled job.
    let ours = request(addr, &Request::Screen)
        .expect("SCREEN")
        .screen
        .unwrap();
    let control = request(control_addr, &Request::Screen)
        .expect("control SCREEN")
        .screen
        .unwrap();
    assert!(!ours.stale);
    assert_eq!(normalized(&ours), normalized(&control));

    let metrics = request(addr, &Request::Metrics)
        .expect("METRICS")
        .metrics
        .unwrap();
    assert!(metrics.jobs_cancelled >= 1, "cancelled counter not bumped");

    handle.shutdown();
    control_handle.shutdown();
}

fn spec_for(id: u64) -> kessler_service::ElementsSpec {
    kessler_service::ElementsSpec {
        a: 7_000.0 + id as f64 * 3.0,
        e: 0.001,
        incl: 0.4 + (id % 7) as f64 * 0.3,
        raan: id as f64 * 0.2,
        argp: 0.1,
        mean_anomaly: id as f64 * 0.37,
    }
}

fn drive_adds_and_screen(addr: SocketAddr, n: u64) {
    let mut client = Client::connect(addr).expect("connect");
    for id in 0..n {
        let response = client
            .send(&Request::Add {
                id,
                elements: spec_for(id),
            })
            .expect("ADD");
        assert!(response.ok, "ADD {id}: {:?}", response.error);
    }
    let response = client.send(&Request::Screen).expect("SCREEN");
    assert!(response.ok, "{:?}", response.error);
}

/// A grid daemon's state directory restarted under `--variant hybrid`
/// recovers the catalog and counters but comes back cold: the grid warm
/// set is not a valid hybrid delta input, so the first DELTA falls back
/// to a full hybrid screen.
#[test]
fn grid_snapshot_restarted_as_hybrid_comes_back_cold() {
    let dir = temp_dir("variant-switch");

    let grid_options = ServerOptions {
        persist: Some(persist_options(&dir)),
        ..ServerOptions::default()
    };
    let daemon_a = Server::bind_with(
        "127.0.0.1:0",
        config_for(Variant::Grid, 120.0),
        grid_options,
    )
    .expect("bind grid daemon")
    .spawn()
    .expect("spawn server thread");
    drive_adds_and_screen(daemon_a.addr(), 16);
    let status_a = request(daemon_a.addr(), &Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert_eq!(status_a.variant, "grid");
    assert_eq!(status_a.full_screens, 1);
    daemon_a.shutdown();

    let hybrid_options = ServerOptions {
        persist: Some(persist_options(&dir)),
        variant: Variant::Hybrid,
        ..ServerOptions::default()
    };
    let daemon_b = Server::bind_with(
        "127.0.0.1:0",
        config_for(Variant::Hybrid, 120.0),
        hybrid_options,
    )
    .expect("bind hybrid daemon over grid state")
    .spawn()
    .expect("spawn server thread");

    let status_b = request(daemon_b.addr(), &Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert!(status_b.recovered, "daemon B restored from disk");
    assert_eq!(status_b.variant, "hybrid");
    assert_eq!(status_b.n_satellites, 16, "catalog survives the switch");
    assert_eq!(status_b.full_screens, 1, "counters survive the switch");
    assert_eq!(status_b.live_conjunctions, 0, "warm set must be dropped");
    assert!(
        status_b.last_screen.is_none(),
        "no adopted hybrid screen yet"
    );

    // Cold engine: DELTA falls back to a full screen of the new variant.
    let delta = request(daemon_b.addr(), &Request::Delta)
        .expect("DELTA")
        .screen
        .unwrap();
    assert_eq!(delta.variant, "hybrid");
    assert!(delta.filter_stats.is_some());

    daemon_b.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshots written before the `variant` field existed have no say in
/// what they were screened with — they were always grid. A snapshot with
/// the field stripped must recover warm on a grid daemon.
#[test]
fn pre_variant_snapshot_recovers_as_grid() {
    let dir = temp_dir("pre-variant");

    let options = ServerOptions {
        persist: Some(persist_options(&dir)),
        ..ServerOptions::default()
    };
    let daemon_a = Server::bind_with("127.0.0.1:0", config_for(Variant::Grid, 120.0), options)
        .expect("bind grid daemon")
        .spawn()
        .expect("spawn server thread");
    drive_adds_and_screen(daemon_a.addr(), 16);
    let status_a = request(daemon_a.addr(), &Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    daemon_a.shutdown();

    // Forge a pre-variant snapshot: strip the field, re-frame, rewrite.
    let path = newest_snapshot(&dir);
    let text = std::fs::read_to_string(&path).expect("read snapshot");
    let line = text.lines().find(|l| !l.is_empty()).expect("frame line");
    let (seq, body) = wal::decode_frame(line).expect("decode snapshot frame");
    let mut value: serde_json::Value = serde_json::from_str(&body).expect("snapshot json");
    let removed = value.as_object_mut().expect("object").remove("variant");
    assert!(removed.is_some(), "snapshots must persist their variant");
    let mut forged = wal::encode_frame(seq, &value.to_string());
    forged.push('\n');
    std::fs::write(&path, forged).expect("rewrite snapshot");

    let options = ServerOptions {
        persist: Some(persist_options(&dir)),
        ..ServerOptions::default()
    };
    let daemon_b = Server::bind_with("127.0.0.1:0", config_for(Variant::Grid, 120.0), options)
        .expect("bind over pre-variant snapshot")
        .spawn()
        .expect("spawn server thread");

    let status_b = request(daemon_b.addr(), &Request::Status)
        .expect("STATUS")
        .status
        .unwrap();
    assert!(status_b.recovered);
    assert_eq!(status_b.variant, "grid");
    assert_eq!(status_b.n_satellites, status_a.n_satellites);
    assert_eq!(status_b.full_screens, status_a.full_screens);
    assert_eq!(
        status_b.live_conjunctions, status_a.live_conjunctions,
        "a pre-variant snapshot matches a grid daemon: warm set restores"
    );
    assert_eq!(status_b.last_screen.unwrap().variant, "grid");

    daemon_b.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
