//! SUBSCRIBE push-stream integration tests. The oracle is a control
//! daemon polled over plain request/response: the subscriber must
//! receive exactly the `new`/`updated`/`retired` set obtained by diffing
//! the control daemon's maintained pair set across two committed
//! screens. A second suite proves degraded-mode screens still push,
//! tagged `ephemeral`.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kessler_core::ScreeningConfig;
use kessler_service::proto::{ElementsSpec, ScreenSummary};
use kessler_service::{
    request, Client, EventKind, FaultPlan, PersistOptions, PushEvent, Request, Response, Server,
    ServerHandle, ServerOptions, PUSH_CONJUNCTION,
};

/// Closest-approach summary of one maintained pair, as the push layer
/// reports it: representative (minimum-PCA) conjunction + event count.
type PairInfo = (f64, f64, usize);

/// Long sampling interval so each co-located pair yields at most two
/// conjunction events (`total_steps == 2`) and `top` can never truncate:
/// the tests below require `top` to be the *complete* conjunction list
/// so it can stand in for the daemon's maintained pair set.
fn config() -> ScreeningConfig {
    let mut config = ScreeningConfig::grid_defaults(5.0, 120.0);
    config.seconds_per_sample = 60.0;
    config
}

fn serve(options: ServerOptions) -> ServerHandle {
    Server::bind_with("127.0.0.1:0", config(), options)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server thread")
}

/// One orbit, many satellites: mean anomaly alone sets the along-track
/// separation (chord ≈ Δм × a, so 0.0004 rad ≈ 2.8 km at a = 7000 km —
/// inside the 5 km screening threshold; 0.2 rad ≈ 1400 km is far out).
fn cluster(mean_anomaly: f64) -> ElementsSpec {
    ElementsSpec {
        a: 7_000.0,
        e: 0.001,
        incl: 0.5,
        raan: 0.3,
        argp: 0.1,
        mean_anomaly,
    }
}

fn drive(addr: SocketAddr, requests: &[Request]) -> Vec<Response> {
    let mut client = Client::connect(addr).expect("connect");
    requests
        .iter()
        .map(|req| {
            let response = client.send(req).expect("request");
            assert!(response.ok, "{req:?} failed: {:?}", response.error);
            response
        })
        .collect()
}

/// Group a complete conjunction list by pair, keeping the minimum-PCA
/// representative and the per-pair count — the same summary `publish`
/// computes from the maintained pair map. Valid only while dense indices
/// equal external ids (ids added in order, removals from the end only).
fn pair_infos(summary: &ScreenSummary) -> BTreeMap<(u64, u64), PairInfo> {
    assert_eq!(
        summary.top.len(),
        summary.conjunctions,
        "top must be the complete conjunction list for this diff to be exact"
    );
    let mut out: BTreeMap<(u64, u64), PairInfo> = BTreeMap::new();
    for c in &summary.top {
        let key = (u64::from(c.id_lo), u64::from(c.id_hi));
        match out.get_mut(&key) {
            None => {
                out.insert(key, (c.tca, c.pca_km, 1));
            }
            Some((tca, pca, count)) => {
                if c.pca_km < *pca {
                    *tca = c.tca;
                    *pca = c.pca_km;
                }
                *count += 1;
            }
        }
    }
    out
}

/// Diff two pair summaries with the publish semantics: `new` for pairs
/// only in `after`, `updated` for pairs whose summary changed (exact
/// `f64` compare — the delta engine recomputes unchanged pairs
/// bit-identically), `retired` (old TCA/PCA, count 0) for pairs only in
/// `before`. Sorted by pair key, matching the push stream's order.
fn expected_delta(
    before: &BTreeMap<(u64, u64), PairInfo>,
    after: &BTreeMap<(u64, u64), PairInfo>,
) -> Vec<((u64, u64), EventKind, PairInfo)> {
    let mut out = Vec::new();
    for (key, info) in after {
        match before.get(key) {
            None => out.push((*key, EventKind::New, *info)),
            Some(old) if old != info => out.push((*key, EventKind::Updated, *info)),
            Some(_) => {}
        }
    }
    for (key, &(tca, pca, _)) in before {
        if !after.contains_key(key) {
            out.push((*key, EventKind::Retired, (tca, pca, 0)));
        }
    }
    out.sort_by_key(|(key, _, _)| *key);
    out
}

fn assert_event(
    event: &PushEvent,
    sub_id: &str,
    expected: &((u64, u64), EventKind, PairInfo),
    epoch: u64,
    ephemeral: bool,
) {
    let ((lo, hi), kind, (tca, pca_km, count)) = *expected;
    assert_eq!(event.push, PUSH_CONJUNCTION);
    assert_eq!(event.sub_id, sub_id);
    assert_eq!((event.id_lo, event.id_hi), (lo, hi), "{event:?}");
    assert_eq!(event.kind, kind, "{event:?}");
    assert_eq!(event.tca, tca, "{event:?}");
    assert_eq!(event.pca_km, pca_km, "{event:?}");
    assert_eq!(event.conjunctions, count, "{event:?}");
    assert_eq!(event.epoch, epoch, "{event:?}");
    assert_eq!(event.ephemeral, ephemeral, "{event:?}");
}

/// The tentpole acceptance test: a subscriber on a live daemon receives
/// exactly the delta obtained by diffing the pair set of a
/// request/response-polled control daemon across two committed screens.
#[test]
fn subscriber_receives_the_exact_pair_set_delta() {
    let live = serve(ServerOptions::default());
    let control = serve(ServerOptions::default());

    // Three subscribers, registered before the first screen commits:
    // everything, only asset 6, and everything-but-quits-early.
    let mut sub_all = Client::connect(live.addr()).expect("connect");
    let mut sub_six = Client::connect(live.addr()).expect("connect");
    let mut sub_quit = Client::connect(live.addr()).expect("connect");
    for sub in [&mut sub_all, &mut sub_six, &mut sub_quit] {
        sub.set_timeouts(Some(Duration::from_secs(30)), Some(Duration::from_secs(30)))
            .expect("timeouts");
    }
    let subscribe_all = Request::Subscribe {
        assets: vec![],
        all: true,
    };
    for (sub, req_id, req) in [
        (&mut sub_all, "watch-all", subscribe_all.clone()),
        (
            &mut sub_six,
            "watch-6",
            Request::Subscribe {
                assets: vec![6],
                all: false,
            },
        ),
        (&mut sub_quit, "quitter", subscribe_all.clone()),
    ] {
        let ack = sub
            .send_tagged(&req, req_id)
            .expect("SUBSCRIBE")
            .subscription
            .expect("subscription ack");
        assert_eq!(ack.sub_id, req_id);
        assert_eq!(ack.active, 1);
    }

    // Four tight pairs strung along one orbit. Satellites are added in id
    // order and only the *last-added* id is ever removed, so dense catalog
    // indices stay equal to external ids and the control daemon's `top`
    // (which carries dense indices) can be read as external ids.
    let anomalies = [0.0, 0.0004, 0.2, 0.2004, 0.4, 0.4004, 0.6, 0.6004];
    let mut script: Vec<Request> = anomalies
        .iter()
        .enumerate()
        .map(|(id, &m)| Request::Add {
            id: id as u64,
            elements: cluster(m),
        })
        .collect();
    script.push(Request::Screen);

    let live_screen1 = drive(live.addr(), &script).pop().unwrap().screen.unwrap();
    let ctrl_screen1 = drive(control.addr(), &script)
        .pop()
        .unwrap()
        .screen
        .unwrap();
    assert_eq!(live_screen1.epoch, ctrl_screen1.epoch);
    assert_eq!(live_screen1.conjunctions, ctrl_screen1.conjunctions);

    let baseline = BTreeMap::new();
    let pairs1 = pair_infos(&ctrl_screen1);
    let delta1 = expected_delta(&baseline, &pairs1);
    assert_eq!(delta1.len(), 4, "expected four tight pairs: {delta1:?}");

    for (sub, sub_id) in [(&mut sub_all, "watch-all"), (&mut sub_quit, "quitter")] {
        for expected in &delta1 {
            let event = sub.next_event().expect("push event");
            assert_event(&event, sub_id, expected, ctrl_screen1.epoch, false);
        }
    }
    let six1: Vec<_> = delta1
        .iter()
        .filter(|((lo, hi), _, _)| *lo == 6 || *hi == 6)
        .collect();
    assert_eq!(six1.len(), 1, "asset 6 pairs once, with 7: {delta1:?}");
    let event = sub_six.next_event().expect("push event");
    assert_event(&event, "watch-6", six1[0], ctrl_screen1.epoch, false);

    // The quitter tears down before the second screen.
    let ack = sub_quit
        .send(&Request::Unsubscribe { sub_id: None })
        .expect("UNSUBSCRIBE")
        .subscription
        .expect("unsubscribe ack");
    assert_eq!(ack.active, 0);

    // Second act: satellite 0 jumps between the (2, 3) cluster members,
    // pair (4, 5) tightens, satellite 7 leaves the catalog. That retires
    // (0, 1) and (6, 7), creates (0, 2) and (0, 3), updates (4, 5) —
    // and must stay silent about the untouched pair (2, 3).
    let mutations = [
        Request::Update {
            id: 0,
            elements: cluster(0.2006),
        },
        Request::Update {
            id: 4,
            elements: cluster(0.4006),
        },
        Request::Remove { id: 7 },
        Request::Screen,
    ];
    let live_screen2 = drive(live.addr(), &mutations)
        .pop()
        .unwrap()
        .screen
        .unwrap();
    let ctrl_screen2 = drive(control.addr(), &mutations)
        .pop()
        .unwrap()
        .screen
        .unwrap();
    assert_eq!(live_screen2.epoch, ctrl_screen2.epoch);
    assert_eq!(live_screen2.conjunctions, ctrl_screen2.conjunctions);

    let pairs2 = pair_infos(&ctrl_screen2);
    let delta2 = expected_delta(&pairs1, &pairs2);
    for kind in [EventKind::New, EventKind::Updated, EventKind::Retired] {
        assert!(
            delta2.iter().any(|(_, k, _)| *k == kind),
            "scenario must exercise {kind:?}: {delta2:?}"
        );
    }
    assert!(
        !delta2.iter().any(|(key, _, _)| *key == (2, 3)),
        "untouched pair (2, 3) must recompute bit-identically: {delta2:?}"
    );

    for expected in &delta2 {
        let event = sub_all.next_event().expect("push event");
        assert_event(&event, "watch-all", expected, ctrl_screen2.epoch, false);
    }
    let six2: Vec<_> = delta2
        .iter()
        .filter(|((lo, hi), _, _)| *lo == 6 || *hi == 6)
        .collect();
    assert_eq!(six2.len(), 1, "{delta2:?}");
    assert_eq!(six2[0].1, EventKind::Retired);
    let event = sub_six.next_event().expect("push event");
    assert_event(&event, "watch-6", six2[0], ctrl_screen2.epoch, false);

    // The unsubscribed connection got nothing from the second screen but
    // still serves plain requests.
    let response = sub_quit.send(&Request::Status).expect("STATUS");
    assert!(response.ok);
    assert_eq!(sub_quit.queued_events(), 0, "events after UNSUBSCRIBE");

    // Push accounting: every event above was counted, none were shed.
    let metrics = request(live.addr(), &Request::Metrics)
        .expect("METRICS")
        .metrics
        .expect("metrics payload");
    assert_eq!(metrics.subscribers, 2);
    let expected_pushed = (2 * delta1.len() + six1.len() + delta2.len() + six2.len()) as u64;
    assert_eq!(metrics.events_pushed, expected_pushed, "{metrics:?}");
    assert_eq!(metrics.events_dropped, 0, "{metrics:?}");

    live.shutdown();
    control.shutdown();
}

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!(
        "kessler-subscribe-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Poll STATUS until the daemon reports `mode`, or panic after ~10 s.
fn wait_for_mode(addr: SocketAddr, mode: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = request(addr, &Request::Status)
            .expect("STATUS")
            .status
            .expect("status payload");
        if status.mode == mode {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon stuck in mode {:?}, wanted {mode:?}",
            status.mode
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A broken WAL must not blind subscribers: degraded-mode screens still
/// push their deltas, tagged `ephemeral`, and repeated degraded screens
/// do not re-announce the same pairs.
#[test]
fn degraded_screens_push_ephemeral_events() {
    let dir = temp_dir("ephemeral");
    let faults = Arc::new(FaultPlan::default());
    let options = ServerOptions {
        persist: Some(PersistOptions {
            dir: dir.clone(),
            snapshot_every: 1_000,
            keep_snapshots: 2,
            shards: None,
        }),
        faults: faults.clone(),
        probe_initial: Duration::from_millis(20),
        probe_max: Duration::from_millis(200),
        ..ServerOptions::default()
    };
    let server = serve(options);

    // Two far-apart satellites: the first committed screen maintains an
    // empty pair set, so the later conjunction is a clean `new`.
    let setup = [
        Request::Add {
            id: 0,
            elements: cluster(0.0),
        },
        Request::Add {
            id: 1,
            elements: cluster(0.5),
        },
        Request::Screen,
    ];
    let screen = drive(server.addr(), &setup).pop().unwrap().screen.unwrap();
    assert_eq!(screen.conjunctions, 0);
    assert!(!screen.ephemeral);

    let mut subscriber = Client::connect(server.addr()).expect("connect");
    subscriber
        .set_timeouts(Some(Duration::from_secs(30)), Some(Duration::from_secs(30)))
        .expect("timeouts");
    let ack = subscriber
        .send_tagged(&subscribe_all(), "watch")
        .expect("SUBSCRIBE")
        .subscription
        .expect("subscription ack");
    assert_eq!(ack.sub_id, "watch");

    // Move the pair together, then break the WAL for good: the screen
    // cannot be adopted, but its delta is still pushed as ephemeral.
    let mut driver = Client::connect(server.addr()).expect("connect");
    let response = driver
        .send(&Request::Update {
            id: 1,
            elements: cluster(0.0004),
        })
        .expect("UPDATE");
    assert!(response.ok, "{:?}", response.error);
    faults.set_wal_broken(true);

    let degraded = driver
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .expect("screen payload");
    assert!(degraded.ephemeral, "screen under broken WAL: {degraded:?}");
    assert!(degraded.conjunctions > 0);

    let event = subscriber.next_event().expect("push event");
    assert_eq!((event.id_lo, event.id_hi), (0, 1), "{event:?}");
    assert_eq!(event.kind, EventKind::New);
    assert!(event.ephemeral, "{event:?}");
    assert_eq!(event.epoch, degraded.epoch);
    assert_eq!(event.sub_id, "watch");

    // A second degraded screen over the unchanged catalog finds the same
    // pair set; the ephemeral baseline advanced, so nothing re-fires.
    let again = driver
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .expect("screen payload");
    assert!(again.ephemeral);

    // Heal the disk; the probe recovers the daemon on its own, and the
    // first adopted screen agrees with the published baseline: silence.
    faults.set_wal_broken(false);
    wait_for_mode(server.addr(), "normal");
    let healed = driver
        .send(&Request::Screen)
        .expect("SCREEN")
        .screen
        .expect("screen payload");
    assert!(!healed.ephemeral, "{healed:?}");

    let response = subscriber.send(&Request::Status).expect("STATUS");
    assert!(response.ok);
    assert_eq!(subscriber.queued_events(), 0, "spurious re-announcements");

    let metrics = driver
        .send(&Request::Metrics)
        .expect("METRICS")
        .metrics
        .expect("metrics payload");
    assert_eq!(metrics.subscribers, 1);
    assert_eq!(metrics.events_pushed, 1, "{metrics:?}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

fn subscribe_all() -> Request {
    Request::Subscribe {
        assets: vec![],
        all: true,
    }
}
