//! Crash-recovery end-to-end tests for the sharded persistence format:
//! a daemon writing incremental per-shard snapshots must restart into
//! exactly the state an uninterrupted daemon holds, fall back to the
//! previous recovery point when its newest shard chunk is corrupt, and
//! read pre-sharding (v1) snapshot directories unchanged.

use kessler_core::ScreeningConfig;
use kessler_service::proto::{ElementsSpec, StatusInfo};
use kessler_service::{
    request, PersistOptions, Request, Response, Server, ServerHandle, ServerOptions, ShardSpec,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir =
        std::env::temp_dir().join(format!("kessler-sharded-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_for(id: u64) -> ElementsSpec {
    ElementsSpec {
        a: 7_000.0 + id as f64 * 3.0,
        e: 0.001,
        incl: 0.4 + (id % 7) as f64 * 0.3,
        raan: id as f64 * 0.2,
        argp: 0.1,
        mean_anomaly: id as f64 * 0.37,
    }
}

fn config() -> ScreeningConfig {
    ScreeningConfig::grid_defaults(5.0, 120.0)
}

fn serve(dir: &Path, shards: Option<ShardSpec>, snapshot_every: u64) -> ServerHandle {
    let options = ServerOptions {
        persist: Some(PersistOptions {
            dir: dir.to_path_buf(),
            snapshot_every,
            keep_snapshots: 2,
            shards: None,
        }),
        shards,
        ..ServerOptions::default()
    };
    Server::bind_with("127.0.0.1:0", config(), options)
        .expect("bind persistent server")
        .spawn()
        .expect("spawn server thread")
}

fn serve_ephemeral(shards: Option<ShardSpec>) -> ServerHandle {
    let options = ServerOptions {
        shards,
        ..ServerOptions::default()
    };
    Server::bind_with("127.0.0.1:0", config(), options)
        .expect("bind ephemeral server")
        .spawn()
        .expect("spawn server thread")
}

fn drive(addr: SocketAddr, requests: &[Request]) -> Vec<Response> {
    let mut client = kessler_service::Client::connect(addr).expect("connect");
    requests
        .iter()
        .map(|req| {
            let response = client.send(req).expect("request");
            assert!(response.ok, "{req:?} failed: {:?}", response.error);
            response
        })
        .collect()
}

fn status_of(addr: SocketAddr) -> StatusInfo {
    request(addr, &Request::Status)
        .expect("STATUS")
        .status
        .expect("status payload")
}

/// The parts of STATUS that must survive a restart bit-for-bit.
fn durable_key(s: &StatusInfo) -> (usize, u64, usize, usize, u64, u64, (f64, f64)) {
    (
        s.n_satellites,
        s.epoch,
        s.pending_changes,
        s.live_conjunctions,
        s.full_screens,
        s.delta_screens,
        s.window,
    )
}

/// A mutation script touching several shards: adds across altitude bands
/// and inclination shells, a full screen, updates, a delta, a window
/// slide, and trailing un-screened adds.
fn script() -> Vec<Request> {
    let mut script: Vec<Request> = (0..24u64)
        .map(|id| Request::Add {
            id,
            elements: spec_for(id),
        })
        .collect();
    script.push(Request::Screen);
    script.push(Request::Update {
        id: 3,
        elements: spec_for(40),
    });
    script.push(Request::Delta);
    script.push(Request::Advance { dt: 30.0 });
    script.push(Request::Add {
        id: 24,
        elements: spec_for(24),
    });
    script.push(Request::Add {
        id: 25,
        elements: spec_for(25),
    });
    script
}

/// STATUS must match the pre-crash daemon and an uninterrupted control,
/// and a post-restart UPDATE + DELTA must agree with the control — the
/// warm engine carried over through manifest + chunk materialization.
fn assert_restart_matches(dir: &Path, shards: Option<ShardSpec>, final_a: &StatusInfo) {
    let daemon_b = serve(dir, shards, 4);
    let daemon_c = serve_ephemeral(shards);
    drive(daemon_c.addr(), &script());

    let status_b = status_of(daemon_b.addr());
    let status_c = status_of(daemon_c.addr());
    assert_eq!(
        durable_key(&status_b),
        durable_key(final_a),
        "restarted daemon differs from its pre-crash state"
    );
    assert_eq!(
        durable_key(&status_b),
        durable_key(&status_c),
        "restarted daemon differs from an uninterrupted control"
    );
    assert!(status_b.recovered, "daemon B restored from disk");

    let post: Vec<Request> = vec![
        Request::Update {
            id: 5,
            elements: spec_for(41),
        },
        Request::Delta,
    ];
    let from_b = drive(daemon_b.addr(), &post);
    let from_c = drive(daemon_c.addr(), &post);
    let delta_b = from_b[1].screen.as_ref().expect("DELTA summary");
    let delta_c = from_c[1].screen.as_ref().expect("DELTA summary");
    assert_eq!(delta_b.n_satellites, delta_c.n_satellites);
    assert_eq!(delta_b.conjunctions, delta_c.conjunctions);
    assert_eq!(delta_b.colliding_pairs, delta_c.colliding_pairs);
    assert_eq!(delta_b.top, delta_c.top, "warm sets diverged");

    daemon_b.shutdown();
    daemon_c.shutdown();
}

#[test]
fn sharded_restart_resumes_warm_and_matches_uninterrupted() {
    let dir = temp_dir("restart");
    let shards = Some(ShardSpec::default());

    let daemon_a = serve(&dir, shards, 4);
    drive(daemon_a.addr(), &script());
    let final_a = status_of(daemon_a.addr());
    daemon_a.shutdown();

    // The sharded layout actually landed on disk: a manifest plus
    // per-shard chunk files, no monolithic v1 snapshots.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("state dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n.starts_with("manifest-")),
        "no manifest written: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("shard-")),
        "no shard chunks written: {names:?}"
    );
    assert!(
        !names.iter().any(|n| n.starts_with("snapshot-")),
        "sharded daemon wrote a v1 snapshot: {names:?}"
    );

    assert_restart_matches(&dir, shards, &final_a);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_chunk_falls_back_to_previous_point() {
    let dir = temp_dir("corrupt");
    let shards = Some(ShardSpec::default());

    let daemon_a = serve(&dir, shards, 4);
    drive(daemon_a.addr(), &script());
    let final_a = status_of(daemon_a.addr());
    daemon_a.shutdown();

    // Vandalize the newest shard chunk (highest sequence number in the
    // filename). The newest manifest references it, so that recovery
    // point is now unusable; the daemon must fall back to the previous
    // point and re-derive the same state from the longer WAL tail.
    let mut chunks: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("state dir")
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-"))
        })
        .collect();
    chunks.sort();
    let newest = chunks.last().expect("at least one chunk");
    let mut bytes = std::fs::read(newest).expect("read chunk");
    assert!(bytes.len() > 32, "chunk implausibly small");
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 8] {
        *b ^= 0x5a;
    }
    std::fs::write(newest, &bytes).expect("vandalize chunk");

    assert_restart_matches(&dir, shards, &final_a);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pre_sharding_snapshots_recover_under_sharded_options() {
    let dir = temp_dir("v1-upgrade");
    let shards = Some(ShardSpec::default());

    // Daemon A runs unsharded and leaves v1 monolithic snapshots.
    let daemon_a = serve(&dir, None, 4);
    drive(daemon_a.addr(), &script());
    let final_a = status_of(daemon_a.addr());
    daemon_a.shutdown();
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("state dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n.starts_with("snapshot-")),
        "unsharded daemon should write v1 snapshots: {names:?}"
    );

    // Daemon B restarts the same directory with sharding enabled: the v1
    // snapshot must materialize, and the daemon must serve identically.
    // (The control daemon is sharded too — sharded and unsharded screens
    // are exactly equal, which tests/delta_correctness.rs pins down.)
    assert_restart_matches(&dir, shards, &final_a);

    // Mutate past the snapshot cadence so daemon C writes v2 files into
    // the formerly-v1 directory, then prove a further restart reads the
    // mixed directory.
    let daemon_c = serve(&dir, shards, 2);
    drive(
        daemon_c.addr(),
        &[
            Request::Add {
                id: 60,
                elements: spec_for(60),
            },
            Request::Add {
                id: 61,
                elements: spec_for(61),
            },
            Request::Add {
                id: 62,
                elements: spec_for(62),
            },
            Request::Add {
                id: 63,
                elements: spec_for(63),
            },
        ],
    );
    let final_c = status_of(daemon_c.addr());
    daemon_c.shutdown();
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("state dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n.starts_with("manifest-")),
        "sharded daemon should have written a manifest: {names:?}"
    );

    let daemon_d = serve(&dir, shards, 2);
    let status_d = status_of(daemon_d.addr());
    assert_eq!(durable_key(&status_d), durable_key(&final_c));
    assert!(status_d.recovered);
    daemon_d.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
