//! Fault-injection suite: the daemon must degrade gracefully — error
//! responses, respawns, snapshot fallbacks — never crash or corrupt state.
//!
//! Process-internal faults (screening panics, worker death, torn WAL
//! appends) are injected deterministically through [`FaultPlan`]; on-disk
//! faults (corrupt snapshots, garbage bytes) are inflicted directly on the
//! state directory between daemon runs.

use kessler_core::ScreeningConfig;
use kessler_service::proto::ElementsSpec;
use kessler_service::{
    request, Client, FaultPlan, PersistOptions, Request, Server, ServerHandle, ServerOptions,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("kessler-faults-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_for(id: u64) -> ElementsSpec {
    ElementsSpec {
        a: 7_000.0 + id as f64 * 3.0,
        e: 0.001,
        incl: 0.4 + (id % 7) as f64 * 0.3,
        raan: id as f64 * 0.2,
        argp: 0.1,
        mean_anomaly: id as f64 * 0.37,
    }
}

fn config() -> ScreeningConfig {
    ScreeningConfig::grid_defaults(5.0, 120.0)
}

fn serve(options: ServerOptions) -> ServerHandle {
    Server::bind_with("127.0.0.1:0", config(), options)
        .expect("bind server")
        .spawn()
        .expect("spawn server thread")
}

fn populate(client: &mut Client, n: u64) {
    for id in 0..n {
        let response = client
            .send(&Request::Add {
                id,
                elements: spec_for(id),
            })
            .expect("ADD");
        assert!(response.ok, "ADD {id}: {:?}", response.error);
    }
}

#[test]
fn screening_panic_answers_error_and_the_worker_survives() {
    let faults = Arc::new(FaultPlan::default());
    let handle = serve(ServerOptions {
        faults: Arc::clone(&faults),
        ..ServerOptions::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connect");
    populate(&mut client, 8);

    faults.arm_panic_screen();
    let response = client.send(&Request::Screen).expect("SCREEN survives");
    assert!(!response.ok);
    assert!(
        response.error.as_deref().unwrap_or("").contains("panicked"),
        "{:?}",
        response.error
    );

    // Same connection, same worker: the next screen succeeds.
    let response = client.send(&Request::Screen).expect("SCREEN after panic");
    assert!(response.ok, "{:?}", response.error);
    assert_eq!(response.screen.unwrap().n_satellites, 8);
    handle.shutdown();
}

#[test]
fn dead_worker_is_respawned_by_the_supervisor() {
    let faults = Arc::new(FaultPlan::default());
    let handle = serve(ServerOptions {
        faults: Arc::clone(&faults),
        ..ServerOptions::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connect");
    populate(&mut client, 8);

    // This panic fires *outside* the catch_unwind guard: the worker thread
    // dies, the in-flight request gets an "unavailable" error...
    faults.arm_kill_worker();
    let response = client.send(&Request::Screen).expect("SCREEN survives");
    assert!(!response.ok);
    assert!(
        response
            .error
            .as_deref()
            .unwrap_or("")
            .contains("unavailable"),
        "{:?}",
        response.error
    );

    // ...and the supervisor respawns a worker that serves the next one.
    let response = client.send(&Request::Screen).expect("SCREEN after respawn");
    assert!(response.ok, "{:?}", response.error);
    assert_eq!(response.screen.unwrap().n_satellites, 8);

    // The respawn is visible in METRICS.
    let response = request(handle.addr(), &Request::Metrics).expect("METRICS");
    assert!(response.ok, "{:?}", response.error);
    let metrics = response.metrics.expect("metrics payload");
    assert!(
        metrics.worker_respawns >= 1,
        "supervisor respawn not counted: {}",
        metrics.worker_respawns
    );
    handle.shutdown();
}

fn newest_snapshot(dir: &Path) -> PathBuf {
    let mut snapshots: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("state dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snapshot-") && n.ends_with(".json"))
        })
        .collect();
    snapshots.sort();
    snapshots.pop().expect("at least one snapshot")
}

#[test]
fn corrupt_newest_snapshot_falls_back_to_the_previous_one() {
    let dir = temp_dir("snapfall");
    let options = || ServerOptions {
        persist: Some(PersistOptions {
            dir: dir.clone(),
            snapshot_every: 1,
            keep_snapshots: 2,
            shards: None,
        }),
        ..ServerOptions::default()
    };

    let handle = serve(options());
    let mut client = Client::connect(handle.addr()).expect("connect");
    populate(&mut client, 5);
    let status = request(handle.addr(), &Request::Status)
        .unwrap()
        .status
        .unwrap();
    handle.shutdown();

    // Vandalise the newest snapshot; the one before it plus the WAL must
    // carry the daemon to the exact same state.
    std::fs::write(newest_snapshot(&dir), b"garbage, not a snapshot").expect("corrupt snapshot");

    let handle = serve(options());
    let recovered = request(handle.addr(), &Request::Status)
        .unwrap()
        .status
        .unwrap();
    assert_eq!(recovered.n_satellites, status.n_satellites);
    assert_eq!(recovered.epoch, status.epoch);
    assert_eq!(recovered.pending_changes, status.pending_changes);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_append_loses_only_the_unsynced_record() {
    let dir = temp_dir("tornwal");
    let faults = Arc::new(FaultPlan::default());
    let options = |faults: Arc<FaultPlan>| ServerOptions {
        persist: Some(PersistOptions {
            dir: dir.clone(),
            snapshot_every: 1_000_000,
            keep_snapshots: 2,
            shards: None,
        }),
        faults,
        ..ServerOptions::default()
    };

    let handle = serve(options(Arc::clone(&faults)));
    let mut client = Client::connect(handle.addr()).expect("connect");
    populate(&mut client, 3);
    // The fourth ADD is acknowledged, but its WAL record is torn on disk —
    // exactly what a crash between write() and the end of the record does.
    faults.arm_torn_wal();
    let response = client
        .send(&Request::Add {
            id: 3,
            elements: spec_for(3),
        })
        .expect("ADD");
    assert!(response.ok);
    assert_eq!(response.catalog.unwrap().n_satellites, 4);
    handle.shutdown();

    // Restart: the torn record is dropped, everything before it survives.
    let handle = serve(options(FaultPlan::inert()));
    let status = request(handle.addr(), &Request::Status)
        .unwrap()
        .status
        .unwrap();
    assert_eq!(status.n_satellites, 3, "torn record must not replay");
    // The daemon is fully operational: re-adding the lost satellite works.
    let response = request(
        handle.addr(),
        &Request::Add {
            id: 3,
            elements: spec_for(3),
        },
    )
    .unwrap();
    assert!(response.ok, "{:?}", response.error);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_and_oversized_lines_get_errors_without_collateral() {
    let handle = serve(ServerOptions {
        // Small cap so the test doesn't shovel megabytes through TCP.
        max_line_bytes: 4096,
        ..ServerOptions::default()
    });
    let mut bystander = Client::connect(handle.addr()).expect("connect bystander");
    populate(&mut bystander, 2);

    // Garbage: error response, connection stays up.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let response = client
        .send_line("complete garbage {{{")
        .expect("garbage line");
    assert!(!response.ok);
    assert!(response.error.unwrap().starts_with("bad request"));

    // Oversized: raw socket, 64 KiB of x's. The server drains the line,
    // answers with an error, and the connection still serves valid
    // requests afterwards.
    let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
    let mut big = vec![b'x'; 64 * 1024];
    big.push(b'\n');
    raw.write_all(&big).expect("oversized write");
    raw.flush().unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("oversized reply");
    assert!(reply.contains("exceeds"), "{reply}");
    raw.write_all(b"{\"cmd\":\"STATUS\"}\n").expect("follow-up");
    raw.flush().unwrap();
    reply.clear();
    reader.read_line(&mut reply).expect("follow-up reply");
    assert!(reply.contains("\"ok\":true"), "{reply}");

    // The bystander connection never noticed.
    let response = bystander.send(&Request::Status).expect("bystander STATUS");
    assert!(response.ok);
    assert_eq!(response.status.unwrap().n_satellites, 2);
    handle.shutdown();
}

#[test]
fn half_closed_client_still_gets_its_response() {
    let handle = serve(ServerOptions::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(b"{\"cmd\":\"STATUS\"}\n").expect("write");
    stream.flush().unwrap();
    // Close our write half: the server sees EOF after the request but must
    // still answer on the intact read half.
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).expect("reply");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    handle.shutdown();
}
