//! End-to-end METRICS tests: drive a persistent daemon through full
//! screens, delta screens, and window advances, then assert the METRICS
//! verb reports per-phase quantile digests that distinguish full from
//! delta, WAL-fsync and snapshot latency distributions, and honest
//! counters — and that STATUS carries the one-line digest.

use kessler_core::ScreeningConfig;
use kessler_service::metrics::MetricsSnapshot;
use kessler_service::proto::ElementsSpec;
use kessler_service::{request, PersistOptions, Request, Server, ServerHandle, ServerOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir =
        std::env::temp_dir().join(format!("kessler-metrics-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_for(id: u64) -> ElementsSpec {
    ElementsSpec {
        a: 7_000.0 + id as f64 * 3.0,
        e: 0.001,
        incl: 0.4 + (id % 7) as f64 * 0.3,
        raan: id as f64 * 0.2,
        argp: 0.1,
        mean_anomaly: id as f64 * 0.37,
    }
}

fn config() -> ScreeningConfig {
    ScreeningConfig::grid_defaults(5.0, 120.0)
}

fn serve(options: ServerOptions) -> ServerHandle {
    Server::bind_with("127.0.0.1:0", config(), options)
        .expect("bind server")
        .spawn()
        .expect("spawn server thread")
}

fn metrics_of(handle: &ServerHandle) -> MetricsSnapshot {
    let response = request(handle.addr(), &Request::Metrics).expect("METRICS");
    assert!(response.ok, "{:?}", response.error);
    response.metrics.expect("metrics payload")
}

#[test]
fn fresh_daemon_reports_empty_metrics() {
    let handle = serve(ServerOptions::default());
    let metrics = metrics_of(&handle);
    assert!(metrics.full_screens.is_none());
    assert!(metrics.delta_screens.is_none());
    assert!(metrics.wal_fsync_ms.is_none());
    assert_eq!(metrics.queue_highwater, 0);
    assert_eq!(metrics.worker_respawns, 0);
    // The METRICS request itself is already on the books.
    assert!(metrics.requests.contains_key("METRICS"));
    handle.shutdown();
}

#[test]
fn metrics_distinguish_full_and_delta_and_time_durability() {
    let dir = temp_dir("e2e");
    let handle = serve(ServerOptions {
        persist: Some(PersistOptions {
            dir: dir.clone(),
            snapshot_every: 4,
            keep_snapshots: 2,
            shards: None,
        }),
        ..ServerOptions::default()
    });
    let mut client = kessler_service::Client::connect(handle.addr()).expect("connect");

    // 12 adds, two full screens, two warm deltas, one window advance.
    let mut script: Vec<Request> = (0..12u64)
        .map(|id| Request::Add {
            id,
            elements: spec_for(id),
        })
        .collect();
    script.extend([
        Request::Screen,
        Request::Update {
            id: 3,
            elements: spec_for(30),
        },
        Request::Delta,
        Request::Screen,
        Request::Update {
            id: 7,
            elements: spec_for(31),
        },
        Request::Delta,
        Request::Advance { dt: 30.0 },
    ]);
    for req in &script {
        let response = client.send(req).expect("request");
        assert!(response.ok, "{req:?} failed: {:?}", response.error);
    }

    let metrics = metrics_of(&handle);

    // Full and delta screens land in *separate* per-phase series.
    let full = metrics.full_screens.expect("full-screen digests");
    let delta = metrics.delta_screens.expect("delta-screen digests");
    assert_eq!(full.screens, 2, "two SCREENs ran");
    assert_eq!(delta.screens, 2, "two warm DELTAs ran");
    for (name, digest) in [
        ("full insertion", &full.insertion),
        ("full pair_extraction", &full.pair_extraction),
        ("full refinement", &full.refinement),
        ("full total", &full.total),
        ("delta total", &delta.total),
    ] {
        assert_eq!(digest.count, 2, "{name}: {digest:?}");
        assert!(
            digest.min >= 0.0
                && digest.p50 >= digest.min
                && digest.p99 >= digest.p50
                && digest.max >= digest.p99,
            "{name} quantiles out of order: {digest:?}"
        );
    }
    let advance = metrics.advance_tails.expect("advance-tail digests");
    assert_eq!(advance.screens, 1);

    // Durability latencies: every mutation fsynced the WAL, and the
    // snapshot cadence (every 4 mutations) fired several times.
    let fsync = metrics.wal_fsync_ms.expect("wal fsync digests");
    assert!(fsync.count >= 15, "mutations fsynced: {}", fsync.count);
    assert!(fsync.p99 >= fsync.p50 && fsync.p50 >= 0.0);
    let snap_ms = metrics.snapshot_write_ms.expect("snapshot write digests");
    assert!(snap_ms.count >= 2, "snapshots written: {}", snap_ms.count);
    let snap_bytes = metrics.snapshot_bytes.expect("snapshot size digests");
    assert_eq!(snap_bytes.count, snap_ms.count);
    assert!(snap_bytes.min > 0.0, "snapshots are never empty");

    // Request counters and queue pressure.
    assert_eq!(metrics.requests.get("ADD").map(|c| c.ok), Some(12));
    assert_eq!(metrics.requests.get("SCREEN").map(|c| c.ok), Some(2));
    assert_eq!(metrics.requests.get("DELTA").map(|c| c.ok), Some(2));
    assert_eq!(metrics.requests.get("ADVANCE").map(|c| c.ok), Some(1));
    assert!(
        metrics.queue_highwater >= 1,
        "screens went through the queue"
    );
    assert_eq!(metrics.worker_respawns, 0);

    // STATUS carries the one-line digest of the same registry.
    let status = request(handle.addr(), &Request::Status)
        .expect("STATUS")
        .status
        .expect("status payload");
    let line = status.metrics.expect("STATUS metrics one-liner");
    assert!(line.contains("full p50/p99"), "{line}");
    assert!(line.contains("delta p50/p99"), "{line}");
    assert!(line.contains("wal fsync p99"), "{line}");

    // The payload survives a JSON roundtrip bit-for-bit enough to compare.
    let json = serde_json::to_string(&metrics).expect("serialize");
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.full_screens.unwrap().screens, 2);
    assert_eq!(back.queue_highwater, metrics.queue_highwater);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn errors_are_counted_per_command() {
    let handle = serve(ServerOptions::default());
    // UPDATE against an empty catalog fails; the error must be counted.
    let response = request(
        handle.addr(),
        &Request::Update {
            id: 99,
            elements: spec_for(0),
        },
    )
    .expect("UPDATE");
    assert!(!response.ok);
    let metrics = metrics_of(&handle);
    let update = metrics.requests.get("UPDATE").expect("UPDATE counter");
    assert_eq!(update.errors, 1);
    assert_eq!(update.ok, 0);
    handle.shutdown();
}
