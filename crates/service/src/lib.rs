//! # kessler-service
//!
//! A long-running conjunction-screening daemon on top of the batch
//! screeners in `kessler-core`. Where the core crates answer "screen these
//! n satellites over `[0, span]` once", this crate answers the operational
//! question: keep a *changing* catalog screened *continuously*.
//!
//! Layers, bottom to top:
//!
//! - [`catalog`] — epoch-versioned incremental store: stable external ids
//!   mapped to the dense indices the screeners consume, `swap_remove`
//!   removals, per-satellite generation counters.
//! - [`delta`] — the [`DeltaEngine`]: maintains a warm conjunction set and,
//!   when k of n satellites change, re-screens only pairs involving changed
//!   satellites via grid neighbourhood queries — provably equal to a cold
//!   full re-screen, at a fraction of the cost when k ≪ n. Serves both the
//!   grid and the hybrid variant: under hybrid, delta candidates run
//!   through the orbital filter chain before refinement, exactly as a cold
//!   hybrid screen would. The screening pipelines are pure, cancellable
//!   job functions the execution layer shares with the synchronous path.
//! - [`shard`] — the [`ShardMap`]: partitions the catalog by orbital
//!   regime (altitude band × |z| shell) so candidate extraction runs one
//!   grid per shard in parallel, with boundary mirroring so cross-shard
//!   pairs are never lost — sharded screening is bit-identical to
//!   unsharded, and the persistence layer chunks snapshots by shard.
//! - [`exec`] — the execution layer: screening work captured as
//!   [`exec::ScreenJob`]s against immutable catalog snapshots, run by a
//!   pool of supervised workers, cancellable via `CANCEL`, committed back
//!   latest-epoch-wins.
//! - [`scheduler`] — [`SlidingWindow`]: slides the screening horizon
//!   forward, retiring expired conjunctions, carrying live ones, screening
//!   only the freshly exposed tail.
//! - [`proto`] / [`server`] — a JSON-lines-over-TCP protocol
//!   (ADD/UPDATE/REMOVE/SCREEN/DELTA/ADVANCE/CANCEL/STATUS/SUBSCRIBE/
//!   SHUTDOWN) and an evented front end: one poll(2)-driven I/O thread
//!   owns every socket (pipelined requests, bounded write buffers with
//!   slow-consumer shedding) and hands screening work to the pool of
//!   supervised workers. `SUBSCRIBE` turns a connection into a push
//!   stream of conjunction deltas (`new`/`updated`/`retired`) emitted as
//!   screens commit. Std networking only; `nc` is a valid client.
//! - [`wal`] / [`persist`] — crash safety: a checksummed write-ahead log
//!   of acknowledged mutations plus periodic atomic snapshots, so a
//!   restarted daemon recovers the exact catalog, window, and warm
//!   conjunction set it had when it died. Mutations are logged *before*
//!   they apply; when the disk fails mid-flight the daemon rejects the
//!   request (`not_applied`), drops into degraded (read-only) mode, and a
//!   background probe retries under jittered exponential backoff until an
//!   emergency snapshot restores normal service.
//! - [`metrics`] — rolling observability: per-phase screening histograms
//!   (full vs delta), WAL-fsync and snapshot-write latency distributions,
//!   request/error counters, queue high-water mark — served by the
//!   `METRICS` verb and summarized in STATUS.
//! - [`error`] / [`fault`] — typed startup/persistence errors and the
//!   deterministic fault-injection hooks the crash-safety and disk-chaos
//!   tests use: screening panics, worker kills, torn WAL tails, and
//!   injectable storage faults (append/fsync/snapshot failures, transient
//!   or sticky).

pub mod catalog;
pub mod delta;
pub mod error;
pub mod exec;
pub mod fault;
pub mod metrics;
pub mod persist;
pub mod proto;
pub mod scheduler;
pub mod server;
pub mod shard;
pub mod wal;

pub use catalog::{Catalog, CatalogError, CatalogSnapshot, Removal};
pub use delta::{
    AdvanceOutcome, DeltaEngine, PairMap, Pipeline, DELTA_VARIANT, HYBRID_DELTA_VARIANT,
};
pub use error::{PersistError, ServiceError};
pub use exec::{CancelRegistry, ScreenJob, ScreenKind, ScreenOutput};
pub use fault::FaultPlan;
pub use metrics::{MetricsRegistry, MetricsSnapshot, RequestCounter};
pub use persist::{PersistOptions, Snapshot};
pub use proto::{
    ElementsSpec, Envelope, EventKind, PushEvent, Request, Response, SubscriptionAck,
    PUSH_CONJUNCTION,
};
pub use scheduler::SlidingWindow;
pub use server::{
    request, request_with_timeout, Client, RecoverySummary, Server, ServerHandle, ServerOptions,
    ServiceState, MAX_LINE_BYTES,
};
pub use shard::{ShardMap, ShardScreenStats, ShardSpec};
