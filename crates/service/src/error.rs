//! Typed service errors.
//!
//! The daemon's startup path (`Server::bind`, `Server::spawn`, recovery)
//! used to surface bare `String`s and `.expect(...)` on thread-spawn
//! failure. These hand-rolled enums replace both: every startup-path
//! failure is a value the caller can match on, and nothing on that path
//! aborts the process.

use std::fmt;
use std::io;

/// Failures of the durability layer (WAL + snapshots).
#[derive(Debug)]
pub enum PersistError {
    /// An I/O operation on the state directory failed.
    Io {
        /// What the persister was doing (e.g. "append wal record").
        context: String,
        source: io::Error,
    },
    /// A WAL record or snapshot failed checksum/length/JSON validation.
    Corrupt {
        /// Which artefact was damaged (file name or record position).
        context: String,
        detail: String,
    },
}

impl PersistError {
    pub(crate) fn io(context: impl Into<String>, source: io::Error) -> PersistError {
        PersistError::Io {
            context: context.into(),
            source,
        }
    }

    pub(crate) fn corrupt(context: impl Into<String>, detail: impl Into<String>) -> PersistError {
        PersistError::Corrupt {
            context: context.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { context, source } => write!(f, "{context}: {source}"),
            PersistError::Corrupt { context, detail } => {
                write!(f, "{context} is corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Corrupt { .. } => None,
        }
    }
}

/// Everything that can go wrong bringing a [`crate::Server`] up (or
/// recovering its state).
#[derive(Debug)]
pub enum ServiceError {
    /// Invalid screening configuration.
    Config(String),
    /// Could not bind the listening socket.
    Bind { addr: String, source: io::Error },
    /// Could not spawn a required thread.
    Spawn {
        what: &'static str,
        source: io::Error,
    },
    /// The durability layer failed.
    Persist(PersistError),
    /// Recovered state failed validation or replay.
    Recovery(String),
    /// Client-supplied orbital elements failed validation.
    InvalidElements(String),
    /// A request was rejected before touching any state (bad parameters).
    InvalidRequest(String),
    /// A queued or running job already carries this client-chosen req_id.
    DuplicateRequest { req_id: String },
    /// The daemon is in degraded (read-only) mode: persistence is down,
    /// so mutations are rejected until the disk comes back.
    Degraded {
        /// Human-readable cause of the degradation (the persistence
        /// failure that triggered it).
        reason: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ServiceError::Bind { addr, source } => write!(f, "could not bind {addr}: {source}"),
            ServiceError::Spawn { what, source } => {
                write!(f, "could not spawn {what} thread: {source}")
            }
            ServiceError::Persist(err) => write!(f, "persistence failure: {err}"),
            ServiceError::Recovery(msg) => write!(f, "state recovery failed: {msg}"),
            ServiceError::InvalidElements(msg) => write!(f, "invalid elements: {msg}"),
            ServiceError::InvalidRequest(msg) => write!(f, "{msg}"),
            ServiceError::DuplicateRequest { req_id } => write!(
                f,
                "duplicate req_id \"{req_id}\": a job with this id is still queued or running"
            ),
            ServiceError::Degraded { reason } => {
                write!(f, "service degraded (read-only): {reason}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Bind { source, .. } | ServiceError::Spawn { source, .. } => Some(source),
            ServiceError::Persist(err) => Some(err),
            _ => None,
        }
    }
}

impl From<PersistError> for ServiceError {
    fn from(err: PersistError) -> ServiceError {
        ServiceError::Persist(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ServiceError::Bind {
            addr: "127.0.0.1:7878".into(),
            source: io::Error::new(io::ErrorKind::AddrInUse, "in use"),
        };
        let text = err.to_string();
        assert!(text.contains("127.0.0.1:7878"), "{text}");
        assert!(text.contains("in use"), "{text}");

        let err = ServiceError::from(PersistError::corrupt("snapshot-3", "bad checksum"));
        let text = err.to_string();
        assert!(text.contains("snapshot-3"), "{text}");
        assert!(text.contains("bad checksum"), "{text}");

        let err = ServiceError::Degraded {
            reason: "wal append failed: No space left on device (os error 28)".into(),
        };
        let text = err.to_string();
        assert!(text.contains("degraded (read-only)"), "{text}");
        assert!(text.contains("os error 28"), "{text}");

        let err = ServiceError::InvalidElements("semi-major axis must be strictly positive".into());
        let text = err.to_string();
        assert!(text.contains("invalid elements"), "{text}");
        assert!(text.contains("semi-major axis"), "{text}");

        let err = ServiceError::DuplicateRequest {
            req_id: "job-1".into(),
        };
        let text = err.to_string();
        assert!(text.contains("duplicate req_id \"job-1\""), "{text}");
        assert!(text.contains("queued or running"), "{text}");

        let err = ServiceError::InvalidRequest("advance dt must be positive and finite".into());
        assert!(err.to_string().contains("advance dt"), "{err}");
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let err = ServiceError::Persist(PersistError::io(
            "append wal record",
            io::Error::other("disk gone"),
        ));
        let persist = err.source().expect("persist source");
        assert!(persist.source().is_some(), "io source below persist");
    }
}
