//! Epoch-versioned incremental catalog.
//!
//! The screeners operate on a dense `&[KeplerElements]` slice whose indices
//! double as satellite ids. An operational catalog instead speaks stable
//! external ids (NORAD numbers, mission ids) and changes continuously. This
//! store bridges the two: external ids map to dense indices, removals use
//! `swap_remove` to keep the slice dense, and every mutation bumps a
//! monotonic epoch recorded per satellite — which is what delta screening
//! uses to know how stale its maintained conjunction set is.
//!
//! Time advances are *absolute*, not cumulative: the catalog stores each
//! satellite's epoch-0 elements alongside the propagated ones and
//! re-propagates from epoch 0 on every [`Catalog::advance_all`]. Repeatedly
//! adding `n·dt` to an already-wrapped mean anomaly accumulates one float
//! rounding per step, so a daemon advancing every few seconds for weeks
//! drifts measurably; `M(t) = M₀ + n·t` from the stored base is one rounding
//! total, the same scheme the sliding-window scheduler uses.

use crate::error::ServiceError;
use kessler_orbits::KeplerElements;
use std::collections::HashMap;
use std::sync::Arc;

/// Catalog mutation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatalogError {
    /// `add` of an external id that is already present.
    DuplicateId(u64),
    /// `update`/`remove` of an external id that is not present.
    UnknownId(u64),
    /// The dense index space is exhausted (the candidate-pair keys pack
    /// satellite ids into 21 bits).
    Full,
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::DuplicateId(id) => write!(f, "satellite id {id} already exists"),
            CatalogError::UnknownId(id) => write!(f, "no satellite with id {id}"),
            CatalogError::Full => write!(f, "catalog is full (21-bit dense index space)"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// What a `remove` did. `swap_remove` moves the last satellite into the
/// vacated dense slot; delta screening must invalidate pairs of both the
/// removed and the moved satellite and re-screen the mover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Removal {
    /// Dense index the removed satellite occupied (now holding the moved
    /// satellite, unless it was the last slot).
    pub removed_index: u32,
    /// Former dense index of the satellite moved into `removed_index`
    /// (`None` when the removed satellite was the last slot).
    pub moved_from: Option<u32>,
}

/// Incremental satellite catalog: stable ids ↔ dense indices, per-satellite
/// generation counters, monotonic epoch.
///
/// The element arrays live behind `Arc` so [`Catalog::snapshot`] is O(1):
/// mutations go through `Arc::make_mut`, which clones only when a snapshot
/// is still holding the previous version (copy-on-write).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    epoch: u64,
    ids: Vec<u64>,
    elements: Arc<Vec<KeplerElements>>,
    generations: Vec<u64>,
    index_of: HashMap<u64, u32>,
    /// Seconds the catalog has been advanced past its base epoch.
    time: f64,
    /// Epoch-0 elements per satellite; `elements[i]` is always
    /// `base_elements[i]` propagated by `time`.
    base_elements: Arc<Vec<KeplerElements>>,
}

/// An immutable view of the catalog at one epoch, cheap to capture and to
/// clone (two `Arc` bumps). Screening jobs run against a snapshot while
/// the live catalog keeps mutating underneath.
#[derive(Debug, Clone)]
pub struct CatalogSnapshot {
    /// Catalog epoch at capture time.
    pub epoch: u64,
    /// Seconds the catalog had been advanced past its base epoch.
    pub time: f64,
    /// Dense element slice as of `epoch`.
    pub elements: Arc<Vec<KeplerElements>>,
    /// Epoch-0 elements as of `epoch`.
    pub base_elements: Arc<Vec<KeplerElements>>,
}

impl CatalogSnapshot {
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Number of satellites.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Monotonic mutation counter; bumps on every add/update/remove and on
    /// `advance_all`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The dense element slice the screeners consume. Indices are dense
    /// ids; conjunction records refer to them.
    pub fn elements(&self) -> &[KeplerElements] {
        &self.elements
    }

    /// External ids by dense index.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    pub fn contains(&self, id: u64) -> bool {
        self.index_of.contains_key(&id)
    }

    /// Dense index of an external id.
    pub fn index_of(&self, id: u64) -> Option<u32> {
        self.index_of.get(&id).copied()
    }

    /// External id at a dense index.
    pub fn id_at(&self, index: u32) -> Option<u64> {
        self.ids.get(index as usize).copied()
    }

    pub fn elements_at(&self, index: u32) -> Option<&KeplerElements> {
        self.elements.get(index as usize)
    }

    /// Epoch at which the satellite at `index` last changed.
    pub fn generation_at(&self, index: u32) -> Option<u64> {
        self.generations.get(index as usize).copied()
    }

    /// Per-satellite generation counters by dense index.
    pub fn generations(&self) -> &[u64] {
        &self.generations
    }

    /// Seconds the catalog has been advanced past its base epoch.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Epoch-0 elements by dense index (what `advance_all` re-propagates
    /// from).
    pub fn base_elements(&self) -> &[KeplerElements] {
        &self.base_elements
    }

    /// Rebuild a catalog from snapshotted state (see the service's
    /// persistence layer). Validates the arrays are consistent before
    /// reconstructing the id → index map. `base_elements` may be empty
    /// (snapshots written before absolute-time propagation): the base is
    /// then derived by de-propagating `elements` by `-time`.
    pub fn restore(
        epoch: u64,
        ids: Vec<u64>,
        elements: Vec<KeplerElements>,
        generations: Vec<u64>,
        time: f64,
        base_elements: Vec<KeplerElements>,
    ) -> Result<Catalog, ServiceError> {
        let invalid = ServiceError::Recovery;
        if ids.len() != elements.len() || ids.len() != generations.len() {
            return Err(invalid(format!(
                "inconsistent catalog arrays: {} ids, {} element sets, {} generations",
                ids.len(),
                elements.len(),
                generations.len()
            )));
        }
        if !time.is_finite() {
            return Err(invalid(format!("non-finite catalog time {time}")));
        }
        if !base_elements.is_empty() && base_elements.len() != ids.len() {
            return Err(invalid(format!(
                "inconsistent catalog arrays: {} ids, {} base element sets",
                ids.len(),
                base_elements.len()
            )));
        }
        if ids.len() as u64 > kessler_grid::pairset::MAX_ID as u64 {
            return Err(invalid(format!(
                "catalog of {} satellites exceeds the {}-slot dense index space",
                ids.len(),
                kessler_grid::pairset::MAX_ID
            )));
        }
        let mut index_of = HashMap::with_capacity(ids.len());
        for (index, &id) in ids.iter().enumerate() {
            if index_of.insert(id, index as u32).is_some() {
                return Err(invalid(format!("duplicate satellite id {id}")));
            }
        }
        for (&id, &generation) in ids.iter().zip(&generations) {
            if generation > epoch {
                return Err(invalid(format!(
                    "satellite {id} has generation {generation} past epoch {epoch}"
                )));
            }
        }
        let base_elements = if base_elements.is_empty() {
            elements
                .iter()
                .map(|el| {
                    let mut base = *el;
                    base.mean_anomaly = el.mean_anomaly_at(-time);
                    base
                })
                .collect()
        } else {
            base_elements
        };
        Ok(Catalog {
            epoch,
            ids,
            elements: Arc::new(elements),
            generations,
            index_of,
            time,
            base_elements: Arc::new(base_elements),
        })
    }

    /// Capture an immutable view of the current state. O(1): two `Arc`
    /// clones. Later mutations copy-on-write and leave the snapshot
    /// untouched.
    pub fn snapshot(&self) -> CatalogSnapshot {
        CatalogSnapshot {
            epoch: self.epoch,
            time: self.time,
            elements: Arc::clone(&self.elements),
            base_elements: Arc::clone(&self.base_elements),
        }
    }

    /// Insert a new satellite; returns its dense index.
    pub fn add(&mut self, id: u64, elements: KeplerElements) -> Result<u32, CatalogError> {
        if self.index_of.contains_key(&id) {
            return Err(CatalogError::DuplicateId(id));
        }
        if self.ids.len() as u32 >= kessler_grid::pairset::MAX_ID {
            return Err(CatalogError::Full);
        }
        let index = self.ids.len() as u32;
        let base = self.rebase(&elements);
        self.epoch += 1;
        self.ids.push(id);
        Arc::make_mut(&mut self.elements).push(elements);
        Arc::make_mut(&mut self.base_elements).push(base);
        self.generations.push(self.epoch);
        self.index_of.insert(id, index);
        Ok(index)
    }

    /// Replace the elements of an existing satellite; returns its dense
    /// index.
    pub fn update(&mut self, id: u64, elements: KeplerElements) -> Result<u32, CatalogError> {
        let index = *self.index_of.get(&id).ok_or(CatalogError::UnknownId(id))?;
        let base = self.rebase(&elements);
        self.epoch += 1;
        Arc::make_mut(&mut self.elements)[index as usize] = elements;
        Arc::make_mut(&mut self.base_elements)[index as usize] = base;
        self.generations[index as usize] = self.epoch;
        Ok(index)
    }

    /// Add or update, whichever applies; returns the dense index.
    pub fn upsert(&mut self, id: u64, elements: KeplerElements) -> Result<u32, CatalogError> {
        if self.contains(id) {
            self.update(id, elements)
        } else {
            self.add(id, elements)
        }
    }

    /// Remove a satellite with `swap_remove` semantics.
    pub fn remove(&mut self, id: u64) -> Result<Removal, CatalogError> {
        let index = *self.index_of.get(&id).ok_or(CatalogError::UnknownId(id))?;
        let last = (self.ids.len() - 1) as u32;
        self.epoch += 1;
        self.index_of.remove(&id);
        self.ids.swap_remove(index as usize);
        Arc::make_mut(&mut self.elements).swap_remove(index as usize);
        Arc::make_mut(&mut self.base_elements).swap_remove(index as usize);
        self.generations.swap_remove(index as usize);
        if index != last {
            let moved_id = self.ids[index as usize];
            self.index_of.insert(moved_id, index);
            self.generations[index as usize] = self.epoch;
            Ok(Removal {
                removed_index: index,
                moved_from: Some(last),
            })
        } else {
            Ok(Removal {
                removed_index: index,
                moved_from: None,
            })
        }
    }

    /// Shift every satellite's epoch forward by `dt` seconds: mean anomaly
    /// advances by `n·dt` (exact under two-body propagation), all other
    /// elements are unchanged. Used by the sliding-window scheduler; this
    /// is a uniform re-epoching, so per-satellite generations stay put.
    ///
    /// Propagation is absolute — `M(t) = M₀ + n·t` from the stored epoch-0
    /// elements — so N small advances land within float rounding of one
    /// big advance instead of accumulating a wrap/rounding error per call.
    pub fn advance_all(&mut self, dt: f64) {
        self.epoch += 1;
        self.time += dt;
        let time = self.time;
        let elements = Arc::make_mut(&mut self.elements);
        for (el, base) in elements.iter_mut().zip(self.base_elements.iter()) {
            el.mean_anomaly = base.mean_anomaly_at(time);
        }
    }

    /// De-propagate elements received *now* (at `self.time`) back to the
    /// catalog's base epoch, so later advances re-propagate them exactly.
    fn rebase(&self, elements: &KeplerElements) -> KeplerElements {
        let mut base = *elements;
        base.mean_anomaly = elements.mean_anomaly_at(-self.time);
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kessler_math::angles::wrap_tau;

    fn el(a: f64) -> KeplerElements {
        KeplerElements::new(a, 0.001, 0.5, 1.0, 0.3, 0.2).unwrap()
    }

    /// Shortest angular distance between two wrapped angles.
    fn angle_diff(a: f64, b: f64) -> f64 {
        let d = (a - b).abs() % std::f64::consts::TAU;
        d.min(std::f64::consts::TAU - d)
    }

    #[test]
    fn add_update_lookup_roundtrip() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        let i0 = cat.add(100, el(7_000.0)).unwrap();
        let i1 = cat.add(200, el(7_100.0)).unwrap();
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.index_of(200), Some(1));
        assert_eq!(cat.id_at(1), Some(200));
        assert_eq!(cat.elements()[0].semi_major_axis, 7_000.0);

        let g_before = cat.generation_at(0).unwrap();
        cat.update(100, el(7_050.0)).unwrap();
        assert_eq!(cat.elements()[0].semi_major_axis, 7_050.0);
        assert!(cat.generation_at(0).unwrap() > g_before);
    }

    #[test]
    fn duplicate_and_unknown_ids_error() {
        let mut cat = Catalog::new();
        cat.add(1, el(7_000.0)).unwrap();
        assert_eq!(cat.add(1, el(7_000.0)), Err(CatalogError::DuplicateId(1)));
        assert_eq!(cat.update(2, el(7_000.0)), Err(CatalogError::UnknownId(2)));
        assert_eq!(cat.remove(2), Err(CatalogError::UnknownId(2)));
    }

    #[test]
    fn remove_swaps_last_into_hole() {
        let mut cat = Catalog::new();
        for (i, id) in [10u64, 20, 30, 40].iter().enumerate() {
            cat.add(*id, el(7_000.0 + i as f64)).unwrap();
        }
        let removal = cat.remove(20).unwrap();
        assert_eq!(removal.removed_index, 1);
        assert_eq!(removal.moved_from, Some(3));
        assert_eq!(cat.len(), 3);
        // 40 moved into slot 1.
        assert_eq!(cat.id_at(1), Some(40));
        assert_eq!(cat.index_of(40), Some(1));
        assert_eq!(cat.elements()[1].semi_major_axis, 7_003.0);
        assert!(!cat.contains(20));

        // Removing the last slot moves nothing.
        let removal = cat.remove(30).unwrap();
        assert_eq!(removal.removed_index, 2);
        assert_eq!(removal.moved_from, None);
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn epoch_is_monotonic() {
        let mut cat = Catalog::new();
        let mut last = cat.epoch();
        cat.add(1, el(7_000.0)).unwrap();
        assert!(cat.epoch() > last);
        last = cat.epoch();
        cat.update(1, el(7_001.0)).unwrap();
        assert!(cat.epoch() > last);
        last = cat.epoch();
        cat.remove(1).unwrap();
        assert!(cat.epoch() > last);
    }

    #[test]
    fn upsert_adds_then_updates() {
        let mut cat = Catalog::new();
        assert_eq!(cat.upsert(5, el(7_000.0)).unwrap(), 0);
        assert_eq!(cat.upsert(5, el(7_010.0)).unwrap(), 0);
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.elements()[0].semi_major_axis, 7_010.0);
    }

    #[test]
    fn restore_rebuilds_the_index_and_validates() {
        let mut cat = Catalog::new();
        cat.add(10, el(7_000.0)).unwrap();
        cat.add(20, el(7_100.0)).unwrap();
        cat.update(10, el(7_050.0)).unwrap();

        let back = Catalog::restore(
            cat.epoch(),
            cat.ids().to_vec(),
            cat.elements().to_vec(),
            cat.generations().to_vec(),
            cat.time(),
            cat.base_elements().to_vec(),
        )
        .unwrap();
        assert_eq!(back.epoch(), cat.epoch());
        assert_eq!(back.index_of(20), Some(1));
        assert_eq!(back.elements()[0].semi_major_axis, 7_050.0);
        assert_eq!(back.generation_at(0), cat.generation_at(0));

        // Mismatched arrays, duplicate ids, generations past the epoch,
        // and inconsistent or non-finite time state are all rejected.
        assert!(
            Catalog::restore(1, vec![1, 2], vec![el(7_000.0)], vec![1, 1], 0.0, vec![]).is_err()
        );
        assert!(Catalog::restore(
            2,
            vec![1, 1],
            vec![el(7_000.0), el(7_100.0)],
            vec![1, 2],
            0.0,
            vec![]
        )
        .is_err());
        assert!(Catalog::restore(1, vec![1], vec![el(7_000.0)], vec![5], 0.0, vec![]).is_err());
        assert!(Catalog::restore(
            1,
            vec![1],
            vec![el(7_000.0)],
            vec![1],
            0.0,
            vec![el(7_000.0), el(7_100.0)]
        )
        .is_err());
        assert!(
            Catalog::restore(1, vec![1], vec![el(7_000.0)], vec![1], f64::NAN, vec![]).is_err()
        );
    }

    #[test]
    fn restore_without_base_derives_it_from_current_time() {
        let mut cat = Catalog::new();
        cat.add(1, el(7_000.0)).unwrap();
        cat.add(2, el(7_200.0)).unwrap();
        cat.advance_all(500.0);

        // A pre-absolute-time snapshot carries no base; restore must
        // de-propagate so further advances match the original catalog.
        let mut back = Catalog::restore(
            cat.epoch(),
            cat.ids().to_vec(),
            cat.elements().to_vec(),
            cat.generations().to_vec(),
            cat.time(),
            vec![],
        )
        .unwrap();
        cat.advance_all(250.0);
        back.advance_all(250.0);
        for (a, b) in cat.elements().iter().zip(back.elements()) {
            assert!(angle_diff(a.mean_anomaly, b.mean_anomaly) < 1e-9);
        }
    }

    #[test]
    fn advance_all_shifts_mean_anomaly_only() {
        let mut cat = Catalog::new();
        cat.add(1, el(7_000.0)).unwrap();
        let before = cat.elements()[0];
        let dt = 100.0;
        cat.advance_all(dt);
        let after = cat.elements()[0];
        assert_eq!(after.semi_major_axis, before.semi_major_axis);
        assert_eq!(after.raan, before.raan);
        let expected = wrap_tau(before.mean_anomaly + before.mean_motion() * dt);
        assert!((after.mean_anomaly - expected).abs() < 1e-12);
    }

    #[test]
    fn repeated_small_advances_match_one_big_advance() {
        // The regression this guards: cumulative in-place propagation
        // accumulates one rounding error per step, which a daemon calling
        // ADVANCE every few seconds turns into real drift.
        let mut stepped = Catalog::new();
        for (i, id) in (0..8u64).enumerate() {
            let a = 6_900.0 + 137.0 * i as f64;
            let e = KeplerElements::new(a, 0.002, 0.3 + 0.1 * i as f64, 1.0, 0.4, 0.1 * i as f64)
                .unwrap();
            stepped.add(id, e).unwrap();
        }
        let mut jumped = stepped.clone();

        let dt = 0.25;
        let steps = 1_000u32;
        for _ in 0..steps {
            stepped.advance_all(dt);
        }
        jumped.advance_all(dt * steps as f64);

        assert!((stepped.time() - jumped.time()).abs() < 1e-9);
        for (s, j) in stepped.elements().iter().zip(jumped.elements()) {
            let d = angle_diff(s.mean_anomaly, j.mean_anomaly);
            assert!(d <= 1e-9, "drift {d} rad after {steps} steps");
        }
    }

    #[test]
    fn snapshots_are_immune_to_later_mutations() {
        let mut cat = Catalog::new();
        cat.add(1, el(7_000.0)).unwrap();
        cat.add(2, el(7_100.0)).unwrap();
        let snap = cat.snapshot();
        assert_eq!(snap.epoch, cat.epoch());
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());

        // Every mutation class: the snapshot must keep the captured view.
        cat.update(1, el(7_500.0)).unwrap();
        cat.add(3, el(7_200.0)).unwrap();
        cat.remove(2).unwrap();
        cat.advance_all(300.0);

        assert_eq!(snap.len(), 2);
        assert_eq!(snap.elements[0].semi_major_axis, 7_000.0);
        assert_eq!(snap.elements[1].semi_major_axis, 7_100.0);
        assert_eq!(snap.time, 0.0);
        assert!(snap.epoch < cat.epoch());
        // And the live catalog really did change.
        assert_eq!(cat.elements()[0].semi_major_axis, 7_500.0);
        assert_eq!(cat.time(), 300.0);
    }

    #[test]
    fn snapshot_capture_shares_storage_until_a_mutation() {
        let mut cat = Catalog::new();
        cat.add(1, el(7_000.0)).unwrap();
        let snap = cat.snapshot();
        assert_eq!(snap.elements.as_ptr(), cat.elements().as_ptr());
        cat.update(1, el(7_001.0)).unwrap();
        assert_ne!(snap.elements.as_ptr(), cat.elements().as_ptr());
        assert_eq!(snap.elements[0].semi_major_axis, 7_000.0);
    }

    #[test]
    fn mutations_mid_flight_rebase_onto_catalog_time() {
        let mut cat = Catalog::new();
        cat.add(1, el(7_000.0)).unwrap();
        cat.advance_all(100.0);

        // Elements delivered at t=100 describe the satellite *now*; after
        // another advance they must be propagated from t=100, not t=0.
        let fresh = el(7_300.0);
        cat.update(1, fresh).unwrap();
        assert!((cat.elements()[0].mean_anomaly - fresh.mean_anomaly).abs() < 1e-12);
        cat.advance_all(50.0);
        let expected = fresh.mean_anomaly_at(50.0);
        assert!(angle_diff(cat.elements()[0].mean_anomaly, expected) < 1e-9);
    }
}
