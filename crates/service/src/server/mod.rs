//! JSON-lines-over-TCP conjunction-screening daemon.
//!
//! Architecture, three layers:
//!
//! - **State** ([`ServiceState`]): catalog + warm delta engine behind a
//!   `parking_lot::Mutex`. Cheap mutations and STATUS execute inline under
//!   the lock. Screening is a capture → run → commit sequence: the request
//!   is *captured* as an [`ScreenJob`] against an immutable
//!   [`crate::catalog::CatalogSnapshot`] (O(1), copy-on-write), *run*
//!   lock-free, and *committed* back under the lock, latest-epoch-wins —
//!   a result captured before an already-adopted newer one answers its
//!   client (flagged `stale`) but does not clobber the maintained set.
//! - **Execution**: a pool of supervised screening workers (see
//!   [`ServerOptions::workers`]) drains a *bounded* crossbeam channel, so
//!   concurrent clients cannot stampede the rayon pool — and when the
//!   queue is full, clients get an explicit "server busy" error instead of
//!   unbounded buffering. Every queued job carries a
//!   [`kessler_core::CancelToken`] registered in a [`CancelRegistry`];
//!   `CANCEL <req_id>` trips it from any connection, aborting a queued job
//!   outright or an in-flight one at its next phase boundary.
//! - **Protocol**: a single poll(2)-driven I/O thread owns every
//!   connection — nonblocking accept, per-connection read/write buffers
//!   with the line cap and resync semantics, pipelined requests whose
//!   responses (tagged with the echoed `req_id`) may complete out of
//!   order for worker-pool verbs, and bounded write buffers that shed
//!   push events (and ultimately slow consumers) at a high-water mark.
//!   `SUBSCRIBE` registers a per-connection asset filter; every adopted
//!   screen commit diffs the maintained pair set and pushes
//!   `new`/`updated`/`retired` conjunction events to matching
//!   subscribers (tagged `ephemeral` while degraded).
//!
//! The implementation is split across focused submodules:
//! [`conn`](self) holds the wire layer (line framing, the poll event
//! loop, the client helpers), `poll` the raw poll(2) binding, `subs` the
//! subscription hub and pair-diff fan-out, `handlers` the WAL-gated
//! request paths and the worker pool, and `degraded` the read-only mode
//! and its recovery probe. This file owns the state machine and the
//! server lifecycle.
//!
//! Crash safety: with [`ServerOptions::persist`] set, every mutation that
//! will apply is appended to a write-ahead log *before* it is applied (in
//! commit order; stale screen results are not logged), and the full state
//! is snapshotted every `snapshot_every` mutations (see
//! [`crate::persist`]). Restart recovery loads the newest valid snapshot
//! and replays the WAL tail through the same [`ServiceState::handle`] path
//! that produced it, which the delta correctness invariant makes
//! deterministic — a recovered daemon answers STATUS/DELTA exactly as an
//! uninterrupted one would.
//!
//! Storage-fault resilience: a failed WAL append rejects that mutation
//! (`not_applied` on the wire — memory and log never diverge) and flips
//! the daemon into **degraded (read-only) mode**: further mutations are
//! rejected with [`ServiceError::Degraded`], while STATUS/METRICS and
//! even SCREEN/DELTA keep answering (screen results are served flagged
//! `ephemeral`, not adopted). A background probe re-checks the state
//! directory with jittered exponential backoff and, once the disk
//! returns, writes an emergency snapshot covering the full in-memory
//! state before switching back to normal mode — nothing acknowledged is
//! ever lost to the outage. STATUS reports the `mode`; METRICS counts
//! failures, transitions, and recoveries.
//!
//! Panic isolation: screening runs inside `catch_unwind`, so a panic
//! mid-screen becomes an ERROR response instead of a dead worker; if a
//! worker thread dies anyway, its supervisor respawns it.
//!
//! Everything is std networking plus the workspace's existing concurrency
//! crates — no async runtime, no protocol framework.

mod conn;
mod degraded;
mod handlers;
mod poll;
mod subs;

pub use conn::{request, request_with_timeout, Client};

use crate::catalog::{Catalog, Removal};
use crate::delta::{apply_removal_to_pairs, DeltaEngine, DELTA_VARIANT, HYBRID_DELTA_VARIANT};
use crate::error::ServiceError;
use crate::exec::{run_screen_job, CancelRegistry, ScreenJob, ScreenKind, ScreenOutput};
use crate::fault::FaultPlan;
use crate::metrics::MetricsRegistry;
use crate::persist::{PersistOptions, Persister, Snapshot, SNAPSHOT_VERSION};
use crate::proto::{
    AdvanceAck, CatalogAck, ElementsSpec, LastScreen, Request, Response, ScreenSummary,
    ShardSummary, StatusInfo,
};
use crate::shard::{ShardMap, ShardSpec};
use crossbeam::channel::bounded;
use degraded::{spawn_persist_probe, Health, HealthInner};
use handlers::{
    handle_and_persist, spawn_metrics_reporter, spawn_supervised_worker, IoHub, Job, Shared,
};
use kessler_core::{ScreeningConfig, Variant};
use kessler_orbits::KeplerElements;
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixStream;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use subs::SubHub;

/// Hard cap on one request/response line, server- and client-side. A JSON
/// request is a few hundred bytes; anything near this is garbage or abuse.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Tunables for [`Server::bind_with`]. `Default` matches production use:
/// no persistence, bounded queue, generous-but-finite socket timeouts.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Enable the WAL + snapshot durability layer.
    pub persist: Option<PersistOptions>,
    /// Screening requests queued before clients get "server busy".
    pub queue_depth: usize,
    /// Screening worker threads; `0` picks `min(4, cores / 2)` (≥ 1).
    pub workers: usize,
    /// Per-connection idle timeout (`None` = wait forever): connections
    /// with no inbound bytes, no job in flight, and no subscription for
    /// this long are reaped.
    pub read_timeout: Option<Duration>,
    /// Retained for configuration compatibility; the evented front end
    /// replaced per-write socket timeouts with the bounded write buffer
    /// governed by [`ServerOptions::write_highwater`].
    pub write_timeout: Option<Duration>,
    /// Per-line byte cap; oversized lines get an error response.
    pub max_line_bytes: usize,
    /// Per-connection write-buffer high-water mark in bytes: push events
    /// are shed above it, and a consumer whose buffered responses exceed
    /// it by two max-size lines is disconnected.
    pub write_highwater: usize,
    /// Fault-injection hooks; inert outside the crash-safety tests.
    pub faults: Arc<FaultPlan>,
    /// Log a one-line metrics digest to stderr this often (`None` = off).
    pub metrics_every: Option<Duration>,
    /// Screening variant the daemon serves with (grid or hybrid).
    pub variant: Variant,
    /// Partition candidate extraction (and snapshots) by orbital regime.
    /// `None` serves the flat, unsharded pipeline.
    pub shards: Option<ShardSpec>,
    /// First persistence re-probe delay after entering degraded mode;
    /// doubles (with jitter) up to [`ServerOptions::probe_max`].
    pub probe_initial: Duration,
    /// Backoff ceiling for the degraded-mode persistence probe.
    pub probe_max: Duration,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            persist: None,
            queue_depth: 32,
            workers: 0,
            read_timeout: Some(Duration::from_secs(120)),
            write_timeout: Some(Duration::from_secs(30)),
            max_line_bytes: MAX_LINE_BYTES,
            write_highwater: MAX_LINE_BYTES,
            faults: FaultPlan::inert(),
            metrics_every: None,
            variant: Variant::Grid,
            shards: None,
            probe_initial: Duration::from_millis(100),
            probe_max: Duration::from_secs(5),
        }
    }
}

/// `0` means auto: half the cores, clamped to `[1, 4]` — screening is
/// already rayon-parallel inside one job, so a few concurrent jobs saturate
/// a machine long before one-per-core would.
fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let cores = thread::available_parallelism().map_or(1, |n| n.get());
    (cores / 2).clamp(1, 4)
}

/// What startup recovery found in the state directory.
#[derive(Debug, Clone, Default)]
pub struct RecoverySummary {
    /// WAL seq of the snapshot the state was restored from.
    pub snapshot_seq: Option<u64>,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// The WAL ended in a torn record (dropped; expected after a crash).
    pub torn_tail: bool,
    /// Snapshot files skipped as corrupt.
    pub corrupt_snapshots: usize,
}

/// The daemon's mutable heart: catalog + warm delta engine + change set.
pub struct ServiceState {
    catalog: Catalog,
    engine: DeltaEngine,
    /// Dense indices changed since the last adopted screen.
    changed: BTreeSet<u32>,
    /// Absolute start of the screening window (advanced by ADVANCE).
    window_start: f64,
    /// Catalog epoch the currently adopted maintained set was captured at.
    /// A completed job below this is stale; one at or above it wins.
    warm_epoch: u64,
    /// Removals since `warm_epoch` as `(epoch_after, removal, new_len)`,
    /// replayed onto job results captured before them at commit time.
    /// Pruned whenever `warm_epoch` advances.
    removals: Vec<(u64, Removal, usize)>,
    requests: u64,
    started: Instant,
    /// `true` when this state came out of snapshot/WAL recovery.
    recovered: bool,
    /// Static shard assignment, when the daemon runs sharded. Used for
    /// dirty-shard accounting; the engine holds its own copy of the spec.
    shard_map: Option<ShardMap>,
    /// Shards whose membership changed since the last snapshot write.
    /// The persister only rewrites chunk files for these.
    dirty_shards: BTreeSet<u32>,
}

impl ServiceState {
    pub fn new(config: ScreeningConfig) -> Result<ServiceState, ServiceError> {
        ServiceState::with_variant(config, Variant::Grid)
    }

    /// Fresh state screening with `variant` (the service serves grid and
    /// hybrid; anything else is rejected here, not at screen time).
    pub fn with_variant(
        config: ScreeningConfig,
        variant: Variant,
    ) -> Result<ServiceState, ServiceError> {
        Ok(ServiceState {
            catalog: Catalog::new(),
            engine: DeltaEngine::with_variant(config, variant)?,
            changed: BTreeSet::new(),
            window_start: 0.0,
            warm_epoch: 0,
            removals: Vec::new(),
            requests: 0,
            started: Instant::now(),
            recovered: false,
            shard_map: None,
            dirty_shards: BTreeSet::new(),
        })
    }

    /// Switch the execution strategy to sharded (or back). Safe on a warm
    /// engine — sharding only changes how candidates are extracted, not
    /// what they are — so this is applied after restore too. All shards
    /// start dirty so the first snapshot writes a full chunk set.
    pub fn set_shards(&mut self, shards: Option<ShardSpec>) -> Result<(), ServiceError> {
        self.shard_map = match shards {
            Some(spec) => Some(ShardMap::new(spec)?),
            None => None,
        };
        self.engine.set_shards(shards)?;
        self.dirty_shards.clear();
        self.mark_all_shards_dirty();
        Ok(())
    }

    /// The shard layout this state runs under, if sharded.
    pub fn shards(&self) -> Option<ShardSpec> {
        self.shard_map.map(|m| m.spec())
    }

    fn mark_shard_dirty(&mut self, el: &KeplerElements) {
        if let Some(map) = &self.shard_map {
            self.dirty_shards
                .insert(map.assign(el.semi_major_axis, el.inclination));
        }
    }

    fn mark_all_shards_dirty(&mut self) {
        if let Some(map) = &self.shard_map {
            self.dirty_shards.extend(0..map.shard_count());
        }
    }

    /// Called after a successful snapshot write (under the state lock):
    /// every dirtied shard now has a fresh chunk on disk.
    pub fn note_snapshot_written(&mut self) {
        self.dirty_shards.clear();
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn engine(&self) -> &DeltaEngine {
        &self.engine
    }

    /// Capture the complete state as a snapshot covering WAL records up to
    /// `wal_seq`.
    pub fn snapshot(&self, wal_seq: u64) -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            wal_seq,
            variant: self.engine.variant(),
            epoch: self.catalog.epoch(),
            ids: self.catalog.ids().to_vec(),
            elements: self
                .catalog
                .elements()
                .iter()
                .map(ElementsSpec::from_elements)
                .collect(),
            generations: self.catalog.generations().to_vec(),
            changed: self.changed.iter().copied().collect(),
            window_start: self.window_start,
            screened_n: self.engine.screened_n(),
            full_screens: self.engine.full_screens(),
            delta_screens: self.engine.delta_screens(),
            conjunctions: self.engine.conjunctions(),
            requests_served: self.requests,
            time: self.catalog.time(),
            base_elements: self
                .catalog
                .base_elements()
                .iter()
                .map(ElementsSpec::from_elements)
                .collect(),
            last_screen: self.last_screen_info(),
            dirty_shards: self
                .shard_map
                .as_ref()
                .map(|_| self.dirty_shards.iter().copied().collect()),
        }
    }

    /// Rebuild the state a [`ServiceState::snapshot`] captured, serving
    /// with the variant the snapshot was taken under.
    pub fn restore_from(
        config: ScreeningConfig,
        snapshot: &Snapshot,
    ) -> Result<ServiceState, ServiceError> {
        ServiceState::restore_with_variant(config, snapshot, snapshot.variant)
    }

    /// Rebuild with an explicit serving variant. When it matches the
    /// snapshot's, the warm maintained set restores as-is; otherwise the
    /// engine comes back cold (catalog and counters intact) because warm
    /// pairs from another variant's pipeline are not valid delta inputs —
    /// the first DELTA after restart falls back to a full screen.
    pub fn restore_with_variant(
        config: ScreeningConfig,
        snapshot: &Snapshot,
        variant: Variant,
    ) -> Result<ServiceState, ServiceError> {
        let mut elements = Vec::with_capacity(snapshot.elements.len());
        for spec in &snapshot.elements {
            elements.push(
                spec.into_elements()
                    .map_err(|e| ServiceError::Recovery(format!("snapshot elements: {e}")))?,
            );
        }
        let mut base_elements = Vec::with_capacity(snapshot.base_elements.len());
        for spec in &snapshot.base_elements {
            base_elements.push(
                spec.into_elements()
                    .map_err(|e| ServiceError::Recovery(format!("snapshot base elements: {e}")))?,
            );
        }
        let catalog = Catalog::restore(
            snapshot.epoch,
            snapshot.ids.clone(),
            elements,
            snapshot.generations.clone(),
            snapshot.time,
            base_elements,
        )?;
        let engine = if variant == snapshot.variant {
            let mut engine = DeltaEngine::restore_with_variant(
                config,
                variant,
                snapshot.screened_n,
                snapshot.full_screens,
                snapshot.delta_screens,
                &snapshot.conjunctions,
            )?;
            if let Some(last) = &snapshot.last_screen {
                engine.restore_last_screen(last.variant.clone(), last.timings, last.filter_stats);
            }
            engine
        } else {
            DeltaEngine::restore_with_variant(
                config,
                variant,
                None,
                snapshot.full_screens,
                snapshot.delta_screens,
                &[],
            )?
        };
        let changed: BTreeSet<u32> = snapshot
            .changed
            .iter()
            .copied()
            .filter(|&i| (i as usize) < catalog.len())
            .collect();
        Ok(ServiceState {
            // The snapshotted maintained set is current as of the
            // snapshotted epoch, with `changed` carrying the rest.
            warm_epoch: catalog.epoch(),
            catalog,
            engine,
            changed,
            window_start: snapshot.window_start,
            removals: Vec::new(),
            requests: snapshot.requests_served,
            started: Instant::now(),
            recovered: true,
            shard_map: None,
            dirty_shards: BTreeSet::new(),
        })
    }

    fn note_request(&mut self) {
        self.requests += 1;
    }

    /// Exact precheck of [`ServiceState::handle`]'s verdict for a
    /// mutation, without applying it — the write-ahead gate uses this to
    /// decide whether a WAL record is owed *before* touching state.
    /// Mirrors the catalog's validation (duplicate/unknown ids, capacity,
    /// element validity) bit for bit; drift between the two is a bug the
    /// matrix test below pins.
    pub fn mutation_would_apply(&self, request: &Request) -> bool {
        match request {
            Request::Add { id, elements } => {
                elements.into_elements().is_ok()
                    && !self.catalog.contains(*id)
                    && (self.catalog.len() as u32) < kessler_grid::pairset::MAX_ID
            }
            Request::Update { id, elements } => {
                elements.into_elements().is_ok() && self.catalog.contains(*id)
            }
            Request::Remove { id } => self.catalog.contains(*id),
            // Screens always produce a result; an inline ADVANCE holds the
            // lock from capture to commit, so only its dt can fail.
            Request::Screen | Request::Delta => true,
            Request::Advance { dt } => dt.is_finite() && *dt > 0.0,
            Request::Status
            | Request::Metrics
            | Request::Cancel { .. }
            | Request::Subscribe { .. }
            | Request::Unsubscribe { .. }
            | Request::Shutdown => false,
        }
    }

    /// Execute one request against the state. Pure request→response; all
    /// I/O lives in the connection handler. Screening requests run the
    /// same capture → run → commit sequence the worker pool does, inline.
    pub fn handle(&mut self, request: &Request) -> Response {
        self.note_request();
        match request {
            Request::Add { id, elements } => {
                let el = match elements.into_elements() {
                    Ok(el) => el,
                    Err(e) => return Response::error(e.to_string()),
                };
                match self.catalog.add(*id, el) {
                    Ok(index) => {
                        self.changed.insert(index);
                        self.mark_shard_dirty(&el);
                        Response::with_catalog(self.catalog_ack(*id, index))
                    }
                    Err(e) => Response::error(e.to_string()),
                }
            }
            Request::Update { id, elements } => {
                let el = match elements.into_elements() {
                    Ok(el) => el,
                    Err(e) => return Response::error(e.to_string()),
                };
                // An update can move the satellite between shards; both the
                // shard it leaves and the one it enters need new chunks.
                let old = self
                    .catalog
                    .index_of(*id)
                    .and_then(|i| self.catalog.elements_at(i))
                    .copied();
                match self.catalog.update(*id, el) {
                    Ok(index) => {
                        self.changed.insert(index);
                        if let Some(old) = old {
                            self.mark_shard_dirty(&old);
                        }
                        self.mark_shard_dirty(&el);
                        Response::with_catalog(self.catalog_ack(*id, index))
                    }
                    Err(e) => Response::error(e.to_string()),
                }
            }
            Request::Remove { id } => {
                let old = self
                    .catalog
                    .index_of(*id)
                    .and_then(|i| self.catalog.elements_at(i))
                    .copied();
                match self.catalog.remove(*id) {
                    Ok(removal) => {
                        if let Some(old) = old {
                            self.mark_shard_dirty(&old);
                        }
                        // The swap-removed mover keeps its elements but its
                        // dense index changes, so its chunk changes too.
                        if let Some(moved) =
                            self.catalog.elements_at(removal.removed_index).copied()
                        {
                            self.mark_shard_dirty(&moved);
                        }
                        let new_len = self.catalog.len();
                        self.engine.apply_removal(removal, new_len);
                        self.removals.push((self.catalog.epoch(), removal, new_len));
                        // The old last index no longer exists; if a satellite
                        // moved into the hole it now needs re-screening.
                        if let Some(last) = removal.moved_from {
                            self.changed.remove(&last);
                            self.changed.insert(removal.removed_index);
                        } else {
                            self.changed.remove(&removal.removed_index);
                        }
                        self.changed.retain(|&i| (i as usize) < new_len);
                        Response::with_catalog(self.catalog_ack(*id, removal.removed_index))
                    }
                    Err(e) => Response::error(e.to_string()),
                }
            }
            Request::Screen => self.screen_sync(ScreenKind::Full),
            Request::Delta => self.screen_sync(ScreenKind::Delta),
            Request::Advance { dt } => {
                if !dt.is_finite() || *dt <= 0.0 {
                    return Response::error(format!(
                        "advance dt must be positive and finite, got {dt}"
                    ));
                }
                self.screen_sync(ScreenKind::Advance { dt: *dt })
            }
            Request::Status => Response::with_status(self.status()),
            // Metrics and cancellation live with the daemon (`Shared`),
            // not the state: the registry/metrics span queue and worker
            // concerns the state never sees, and neither verb may cost the
            // state lock. Reaching these arms means a caller bypassed
            // `handle_and_persist`/the connection layer.
            Request::Metrics => Response::error("METRICS is served by the daemon layer"),
            Request::Cancel { .. } => Response::error("CANCEL is served by the daemon layer"),
            // Subscriptions are per-connection constructs; only the event
            // loop knows which connection is asking.
            Request::Subscribe { .. } => {
                Response::error("SUBSCRIBE is served by the connection layer")
            }
            Request::Unsubscribe { .. } => {
                Response::error("UNSUBSCRIBE is served by the connection layer")
            }
            Request::Shutdown => Response::ack(),
        }
    }

    /// Capture a screening job at the current epoch. Cheap: the snapshot
    /// shares storage with the catalog until the next mutation.
    fn capture(&self, kind: ScreenKind) -> ScreenJob {
        ScreenJob {
            kind,
            snapshot: self.catalog.snapshot(),
            changed: self.changed.iter().copied().collect(),
            warm: self.engine.is_warm().then(|| self.engine.warm_pairs()),
            pipeline: *self.engine.pipeline(),
        }
    }

    /// Capture a job for the worker pool, counting the request the way the
    /// inline [`ServiceState::handle`] path does.
    pub fn capture_screen_job(&mut self, kind: ScreenKind) -> ScreenJob {
        self.note_request();
        self.capture(kind)
    }

    /// The inline screening path: capture, run uncancellably, commit.
    /// Byte-identical to a pool worker running the same job at the same
    /// epoch — both go through [`run_screen_job`] and
    /// [`ServiceState::commit_screen_job`].
    fn screen_sync(&mut self, kind: ScreenKind) -> Response {
        let job = self.capture(kind);
        let output = run_screen_job(&job, None).expect("uncancellable screen cannot be cancelled");
        self.commit_screen_job(&job, output)
    }

    /// Merge a completed job back into live state, latest-epoch-wins.
    ///
    /// Screens: a job older than the adopted set answers `stale` without
    /// touching it; otherwise removals that landed after capture are
    /// replayed onto the result, it becomes the maintained set, and only
    /// satellites mutated *after* capture stay pending. Advances mutate the
    /// catalog, so they refuse to commit over any concurrent mutation.
    pub fn commit_screen_job(&mut self, job: &ScreenJob, output: ScreenOutput) -> Response {
        let epoch = job.epoch();
        match output {
            ScreenOutput::Screen {
                report,
                mut pairs,
                shards,
            } => {
                let mut summary = ScreenSummary::from_report(&report);
                summary.epoch = epoch;
                summary.shards = shards.as_ref().map(ShardSummary::from_stats);
                if epoch < self.warm_epoch {
                    summary.stale = true;
                    return Response::with_screen(summary);
                }
                for &(removed_at, removal, new_len) in &self.removals {
                    if removed_at > epoch {
                        apply_removal_to_pairs(&mut pairs, removal, new_len);
                    }
                }
                let n = self.catalog.len();
                if report.variant == DELTA_VARIANT || report.variant == HYBRID_DELTA_VARIANT {
                    self.engine
                        .adopt_delta(pairs, n, report.timings, report.filter_stats);
                } else {
                    self.engine
                        .adopt_full(pairs, n, report.timings, report.filter_stats);
                }
                self.warm_epoch = epoch;
                self.removals
                    .retain(|&(removed_at, _, _)| removed_at > epoch);
                // Indices mutated after capture (adds, updates, swap_remove
                // movers) were not covered by this screen and stay pending.
                self.changed
                    .retain(|&i| self.catalog.generation_at(i).is_some_and(|g| g > epoch));
                Response::with_screen(summary)
            }
            ScreenOutput::Advance {
                pairs,
                outcome,
                timings,
                filter_stats,
                dt,
                fold,
            } => {
                if self.catalog.epoch() != epoch {
                    return Response::error(format!(
                        "advance raced concurrent mutations (catalog at epoch {}, captured at \
                         {epoch}); retry",
                        self.catalog.epoch()
                    ));
                }
                // Identical propagation to the job's: absolute, from the
                // stored epoch-0 base elements.
                self.catalog.advance_all(dt);
                // Every satellite's stored elements just changed.
                self.mark_all_shards_dirty();
                self.engine
                    .adopt_advance(pairs, self.catalog.len(), timings, filter_stats, fold);
                self.changed.clear();
                self.warm_epoch = self.catalog.epoch();
                self.removals.clear();
                self.window_start += dt;
                Response::with_advance(AdvanceAck {
                    retired: outcome.retired,
                    discovered: outcome.discovered,
                    window: self.window(),
                })
            }
        }
    }

    fn catalog_ack(&self, id: u64, index: u32) -> CatalogAck {
        CatalogAck {
            id,
            index,
            n_satellites: self.catalog.len(),
            epoch: self.catalog.epoch(),
        }
    }

    fn window(&self) -> (f64, f64) {
        (
            self.window_start,
            self.window_start + self.engine.config().span_seconds,
        )
    }

    /// Variant + timings of the most recent *adopted* screen (STATUS and
    /// snapshots). The variant comes from the engine's record of what it
    /// last adopted, not from the counters — `delta_screens > 0` says a
    /// delta happened at some point, not that the last screen was one.
    fn last_screen_info(&self) -> Option<LastScreen> {
        self.engine.last_variant().map(|variant| LastScreen {
            variant: variant.to_string(),
            timings: *self.engine.last_timings(),
            filter_stats: self.engine.last_filter_stats(),
        })
    }

    pub fn status(&self) -> StatusInfo {
        let last_screen = self.last_screen_info();
        StatusInfo {
            n_satellites: self.catalog.len(),
            variant: self.engine.variant().label().to_string(),
            epoch: self.catalog.epoch(),
            pending_changes: self.changed.len(),
            live_conjunctions: self.engine.conjunction_count(),
            full_screens: self.engine.full_screens(),
            delta_screens: self.engine.delta_screens(),
            requests_served: self.requests,
            uptime_ms: self.started.elapsed().as_secs_f64() * 1e3,
            window: self.window(),
            last_screen,
            recovered: self.recovered,
            // The daemon layer overwrites this with the live health mode;
            // a bare state (tests, ephemeral daemons) is always normal.
            mode: "normal".to_string(),
            metrics: None, // the daemon layer fills this in
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    supervisors: Vec<JoinHandle<()>>,
    reporter: Option<JoinHandle<()>>,
    probe: Option<JoinHandle<()>>,
    workers: usize,
    recovery: Option<RecoverySummary>,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:7878"`, or port 0 for ephemeral)
    /// with default options (no persistence).
    pub fn bind(addr: &str, config: ScreeningConfig) -> Result<Server, ServiceError> {
        Server::bind_with(addr, config, ServerOptions::default())
    }

    /// Bind with explicit options. With [`ServerOptions::persist`] set,
    /// recovers state from the directory before accepting connections:
    /// newest valid snapshot, then WAL tail replayed through the normal
    /// request path, then a fresh snapshot folding the replay in.
    pub fn bind_with(
        addr: &str,
        config: ScreeningConfig,
        options: ServerOptions,
    ) -> Result<Server, ServiceError> {
        let mut persister = None;
        let mut recovery_summary = None;
        let state = match &options.persist {
            Some(persist_options) => {
                // The shard layout is a server-level choice; the persister
                // inherits it so snapshots chunk the same way.
                let mut persist_options = persist_options.clone();
                persist_options.shards = options.shards;
                let (mut p, recovery) =
                    Persister::open(&persist_options, Arc::clone(&options.faults))?;
                let mut state = match &recovery.snapshot {
                    Some(snapshot) => {
                        ServiceState::restore_with_variant(config, snapshot, options.variant)?
                    }
                    None => ServiceState::with_variant(config, options.variant)?,
                };
                state.set_shards(options.shards)?;
                for request in &recovery.tail {
                    let response = state.handle(request);
                    if !response.ok {
                        return Err(ServiceError::Recovery(format!(
                            "replaying wal record {request:?}: {}",
                            response.error.unwrap_or_default()
                        )));
                    }
                }
                if !recovery.tail.is_empty() {
                    state.recovered = true;
                    // Fold the replay into a fresh snapshot so the next
                    // restart starts from here.
                    let snapshot = state.snapshot(p.last_seq());
                    p.write_snapshot(&snapshot)?;
                    state.note_snapshot_written();
                }
                recovery_summary = Some(RecoverySummary {
                    snapshot_seq: recovery.snapshot.as_ref().map(|s| s.wal_seq),
                    replayed: recovery.tail.len(),
                    torn_tail: recovery.torn_tail.is_some(),
                    corrupt_snapshots: recovery.corrupt_snapshots,
                });
                persister = Some(p);
                state
            }
            None => {
                let mut state = ServiceState::with_variant(config, options.variant)?;
                state.set_shards(options.shards)?;
                state
            }
        };

        let listener = TcpListener::bind(addr).map_err(|e| ServiceError::Bind {
            addr: addr.to_string(),
            source: e,
        })?;
        let local = listener.local_addr().map_err(|e| ServiceError::Bind {
            addr: addr.to_string(),
            source: e,
        })?;
        let workers = resolve_workers(options.workers);
        let (jobs_tx, jobs_rx) = bounded::<Job>(options.queue_depth.max(1));
        // The wake pipe: workers and publishers write a byte to nudge the
        // event loop's poll; the loop drains the read end.
        let (wake_tx, wake_rx) = UnixStream::pair().map_err(|e| ServiceError::Spawn {
            what: "event-loop wake pipe",
            source: e,
        })?;
        wake_tx
            .set_nonblocking(true)
            .map_err(|e| ServiceError::Spawn {
                what: "event-loop wake pipe",
                source: e,
            })?;
        let subs = SubHub::new();
        if state.engine.is_warm() {
            // Prime the published baseline from the recovered warm set so
            // a restarted daemon's first screen doesn't replay every
            // pre-existing pair to subscribers as `new`.
            subs.prime(&state.engine.warm_pairs(), state.catalog.ids());
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            persist: persister.map(Mutex::new),
            health: Health {
                inner: Mutex::new(HealthInner::default()),
                probe_wake: Condvar::new(),
            },
            metrics: Mutex::new(MetricsRegistry::new()),
            registry: CancelRegistry::new(),
            subs,
            io: IoHub::new(wake_tx),
            shutdown: AtomicBool::new(false),
            jobs: jobs_tx,
            addr: local,
            faults: options.faults,
            read_timeout: options.read_timeout,
            max_line_bytes: options.max_line_bytes.max(1024),
            write_highwater: options.write_highwater.max(1),
        });
        let mut supervisors = Vec::with_capacity(workers);
        for index in 0..workers {
            supervisors.push(spawn_supervised_worker(
                Arc::clone(&shared),
                jobs_rx.clone(),
                index,
            )?);
        }
        let reporter = options
            .metrics_every
            .and_then(|every| spawn_metrics_reporter(Arc::clone(&shared), every));
        // Ephemeral daemons cannot lose persistence, so they get no probe.
        let probe = if shared.persist.is_some() {
            Some(spawn_persist_probe(
                Arc::clone(&shared),
                options.probe_initial,
                options.probe_max,
            )?)
        } else {
            None
        };
        Ok(Server {
            listener,
            wake_rx,
            shared,
            supervisors,
            reporter,
            probe,
            workers,
            recovery: recovery_summary,
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// What startup recovery found (`None` without persistence).
    pub fn recovery(&self) -> Option<&RecoverySummary> {
        self.recovery.as_ref()
    }

    /// Screening worker threads this server runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Current catalog size (used by the CLI to skip preloading over a
    /// recovered catalog).
    pub fn catalog_len(&self) -> usize {
        self.shared.state.lock().catalog.len()
    }

    /// Seed the catalog before serving, using dense indices as external
    /// ids. Goes through the normal request path so the WAL covers it.
    pub fn preload(&self, population: &[KeplerElements]) -> Result<usize, ServiceError> {
        for (i, el) in population.iter().enumerate() {
            let request = Request::Add {
                id: i as u64,
                elements: ElementsSpec::from_elements(el),
            };
            let response = handle_and_persist(&self.shared, &request);
            if !response.ok {
                return Err(ServiceError::Recovery(format!(
                    "preload of satellite {i} failed: {}",
                    response.error.unwrap_or_default()
                )));
            }
        }
        Ok(population.len())
    }

    /// Serve connections on the evented I/O loop until a SHUTDOWN request
    /// arrives and in-flight work drains. Blocks. On the way out: trips
    /// every live job's token, stops each worker, and joins the
    /// supervisors and the metrics reporter — no stray threads.
    pub fn run(mut self) {
        conn::event_loop(&self.listener, &self.wake_rx, &self.shared);
        self.shared.registry.cancel_all();
        for _ in 0..self.workers {
            let _ = self.shared.jobs.send(Job::Stop);
        }
        for supervisor in self.supervisors.drain(..) {
            let _ = supervisor.join();
        }
        if let Some(reporter) = self.reporter.take() {
            let _ = reporter.join();
        }
        if let Some(probe) = self.probe.take() {
            // Wake it if it is parked on the healthy-mode condvar so the
            // shutdown flag is seen immediately.
            self.shared.health.probe_wake.notify_all();
            let _ = probe.join();
        }
    }

    /// Run on a background thread; returns a handle for tests and the CLI.
    pub fn spawn(self) -> Result<ServerHandle, ServiceError> {
        let addr = self.local_addr();
        let join = thread::Builder::new()
            .name("kessler-serve".into())
            .spawn(move || self.run())
            .map_err(|e| ServiceError::Spawn {
                what: "server accept loop",
                source: e,
            })?;
        Ok(ServerHandle { addr, join })
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    join: JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop and wait for it to exit.
    pub fn shutdown(self) {
        let _ = request(self.addr, &Request::Shutdown);
        let _ = self.join.join();
    }
}

#[cfg(test)]
mod tests {
    use super::conn::{read_bounded_line, LineOutcome};
    use super::*;
    use crate::proto::ElementsSpec;

    fn spec(a: f64, incl: f64, m: f64) -> ElementsSpec {
        ElementsSpec {
            a,
            e: 0.001,
            incl,
            raan: 0.2,
            argp: 0.1,
            mean_anomaly: m,
        }
    }

    #[test]
    fn state_handles_catalog_lifecycle() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();

        let r = state.handle(&Request::Add {
            id: 7,
            elements: spec(7_000.0, 0.5, 0.0),
        });
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.catalog.unwrap().index, 0);

        let r = state.handle(&Request::Add {
            id: 7,
            elements: spec(7_000.0, 0.5, 0.0),
        });
        assert!(!r.ok, "duplicate add must fail");

        let r = state.handle(&Request::Update {
            id: 7,
            elements: spec(7_050.0, 0.6, 0.3),
        });
        assert!(r.ok);

        let r = state.handle(&Request::Status);
        let status = r.status.unwrap();
        assert_eq!(status.n_satellites, 1);
        assert_eq!(status.pending_changes, 1);
        assert_eq!(status.requests_served, 4);

        let r = state.handle(&Request::Remove { id: 7 });
        assert!(r.ok);
        let r = state.handle(&Request::Remove { id: 7 });
        assert!(!r.ok, "double remove must fail");
    }

    #[test]
    fn mutation_precheck_agrees_with_the_real_apply() {
        // WAL-before-apply leans on this: a request the precheck accepts
        // is logged *before* `handle` runs, so any case where the precheck
        // says yes but the apply says no (or vice versa) either writes a
        // phantom record or silently skips durability. Walk the failure
        // matrix and demand exact agreement.
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        assert!(
            state
                .handle(&Request::Add {
                    id: 1,
                    elements: spec(7_000.0, 0.5, 0.0)
                })
                .ok
        );
        assert!(
            state
                .handle(&Request::Add {
                    id: 2,
                    elements: spec(7_010.0, 0.6, 1.0)
                })
                .ok
        );

        let bad = ElementsSpec {
            a: -5.0,
            e: 0.0,
            incl: 0.0,
            raan: 0.0,
            argp: 0.0,
            mean_anomaly: 0.0,
        };
        let matrix: Vec<Request> = vec![
            Request::Add {
                id: 3,
                elements: spec(7_020.0, 0.7, 2.0),
            }, // fresh
            Request::Add {
                id: 1,
                elements: spec(7_020.0, 0.7, 2.0),
            }, // duplicate
            Request::Add {
                id: 9,
                elements: bad,
            }, // invalid elements
            Request::Update {
                id: 2,
                elements: spec(7_030.0, 0.8, 3.0),
            }, // known
            Request::Update {
                id: 99,
                elements: spec(7_030.0, 0.8, 3.0),
            }, // unknown
            Request::Update {
                id: 2,
                elements: bad,
            }, // invalid elements
            Request::Remove { id: 1 },         // known
            Request::Remove { id: 1 },         // double remove
            Request::Advance { dt: 30.0 },     // good dt
            Request::Advance { dt: -1.0 },     // bad dt
            Request::Advance { dt: f64::NAN }, // bad dt
        ];
        for request in &matrix {
            let predicted = state.mutation_would_apply(request);
            let applied = state.handle(request).ok;
            assert_eq!(
                predicted, applied,
                "precheck drifted from the apply on {request:?}"
            );
        }
        // Verbs the daemon layer answers without the WAL are never
        // "would apply".
        assert!(!state.mutation_would_apply(&Request::Status));
        assert!(!state.mutation_would_apply(&Request::Metrics));
        assert!(!state.mutation_would_apply(&Request::Shutdown));
        assert!(!state.mutation_would_apply(&Request::Subscribe {
            assets: vec![],
            all: true,
        }));
        assert!(!state.mutation_would_apply(&Request::Unsubscribe { sub_id: None }));
    }

    #[test]
    fn state_screens_and_clears_pending() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..12u64 {
            let r = state.handle(&Request::Add {
                id: i,
                elements: spec(
                    7_000.0 + i as f64 * 3.0,
                    0.4 + (i % 5) as f64 * 0.3,
                    i as f64 * 0.37,
                ),
            });
            assert!(r.ok);
        }
        let r = state.handle(&Request::Screen);
        let screen = r.screen.unwrap();
        assert_eq!(screen.n_satellites, 12);
        assert_eq!(screen.variant, "grid");
        assert!(!screen.stale);
        assert_eq!(screen.epoch, state.catalog().epoch());

        let r = state.handle(&Request::Status);
        assert_eq!(r.status.unwrap().pending_changes, 0);

        // A delta after one update agrees with the maintained set size.
        state.handle(&Request::Update {
            id: 3,
            elements: spec(7_009.5, 1.6, 2.0),
        });
        let r = state.handle(&Request::Delta);
        let delta = r.screen.unwrap();
        assert_eq!(delta.variant, crate::delta::DELTA_VARIANT);
        let r = state.handle(&Request::Status);
        let status = r.status.unwrap();
        assert_eq!(status.pending_changes, 0);
        assert_eq!(status.full_screens, 1);
        assert_eq!(status.delta_screens, 1);
        assert!(status.last_screen.is_some());
    }

    #[test]
    fn state_refuses_metrics_and_cancel_requests() {
        // METRICS and CANCEL are answered by the daemon layer without the
        // state lock; the state itself treating them as errors keeps them
        // out of the WAL (only ok mutations are appended).
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        let r = state.handle(&Request::Metrics);
        assert!(!r.ok);
        assert!(!Request::Metrics.is_mutation());
        let r = state.handle(&Request::Cancel {
            id: "job-1".to_string(),
        });
        assert!(!r.ok);
    }

    #[test]
    fn repeated_advances_do_not_drift_from_one_big_advance() {
        // Daemon-level version of the catalog drift regression: N small
        // ADVANCEs and one big ADVANCE must leave identical catalogs.
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut stepped = ServiceState::new(config).unwrap();
        let mut jumped = ServiceState::new(config).unwrap();
        for i in 0..6u64 {
            let s = spec(7_000.0 + i as f64 * 5.0, 0.4 + i as f64 * 0.2, i as f64);
            assert!(stepped.handle(&Request::Add { id: i, elements: s }).ok);
            assert!(jumped.handle(&Request::Add { id: i, elements: s }).ok);
        }
        let dt = 0.5;
        let steps = 1_000u32;
        for _ in 0..steps {
            assert!(stepped.handle(&Request::Advance { dt }).ok);
        }
        assert!(
            jumped
                .handle(&Request::Advance {
                    dt: dt * steps as f64
                })
                .ok
        );
        for (s, j) in stepped
            .catalog()
            .elements()
            .iter()
            .zip(jumped.catalog().elements())
        {
            let d = (s.mean_anomaly - j.mean_anomaly).abs() % std::f64::consts::TAU;
            let d = d.min(std::f64::consts::TAU - d);
            assert!(d <= 1e-9, "mean anomaly drifted {d} rad");
        }
        assert_eq!(
            stepped.status().window,
            jumped.status().window,
            "window bookkeeping must agree too"
        );
    }

    #[test]
    fn state_rejects_invalid_elements() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        let r = state.handle(&Request::Add {
            id: 1,
            elements: ElementsSpec {
                a: -5.0,
                e: 0.0,
                incl: 0.0,
                raan: 0.0,
                argp: 0.0,
                mean_anomaly: 0.0,
            },
        });
        assert!(!r.ok);
        assert!(r.error.is_some());
    }

    #[test]
    fn state_advances_window() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..6u64 {
            state.handle(&Request::Add {
                id: i,
                elements: spec(7_000.0 + i as f64 * 5.0, 0.4 + i as f64 * 0.2, i as f64),
            });
        }
        let r = state.handle(&Request::Advance { dt: 60.0 });
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.advance.unwrap().window, (60.0, 180.0));
        let r = state.handle(&Request::Advance { dt: -1.0 });
        assert!(!r.ok, "negative dt must fail");
    }

    #[test]
    fn state_snapshot_roundtrips() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..10u64 {
            state.handle(&Request::Add {
                id: i * 10,
                elements: spec(
                    7_000.0 + i as f64 * 3.0,
                    0.4 + (i % 5) as f64 * 0.3,
                    i as f64 * 0.37,
                ),
            });
        }
        state.handle(&Request::Screen);
        state.handle(&Request::Update {
            id: 30,
            elements: spec(7_009.5, 1.6, 2.0),
        });
        state.handle(&Request::Advance { dt: 30.0 });
        state.handle(&Request::Update {
            id: 50,
            elements: spec(7_020.0, 0.8, 1.0),
        });

        let snapshot = state.snapshot(17);
        assert_eq!(snapshot.wal_seq, 17);
        let restored = ServiceState::restore_from(config, &snapshot).unwrap();

        let a = state.status();
        let b = restored.status();
        assert_eq!(b.n_satellites, a.n_satellites);
        assert_eq!(b.epoch, a.epoch);
        assert_eq!(b.pending_changes, a.pending_changes);
        assert_eq!(b.live_conjunctions, a.live_conjunctions);
        assert_eq!(b.full_screens, a.full_screens);
        assert_eq!(b.delta_screens, a.delta_screens);
        assert_eq!(b.window, a.window);
        assert_eq!(
            restored.engine().conjunctions(),
            state.engine().conjunctions()
        );
        assert_eq!(restored.catalog().ids(), state.catalog().ids());

        // The request counter survives the round-trip instead of resetting,
        // recovery is flagged, and the catalog's absolute time (and thus
        // future ADVANCE propagation) is preserved.
        assert_eq!(b.requests_served, a.requests_served);
        assert!(a.requests_served > 0);
        assert!(!a.recovered);
        assert!(b.recovered);
        assert_eq!(restored.catalog().time(), state.catalog().time());
        assert_eq!(
            b.last_screen.as_ref().map(|l| l.variant.clone()),
            a.last_screen.as_ref().map(|l| l.variant.clone())
        );

        // A corrupted snapshot is rejected, not silently accepted.
        let mut bad = snapshot.clone();
        bad.generations.pop();
        assert!(ServiceState::restore_from(config, &bad).is_err());
    }

    #[test]
    fn stale_screen_results_answer_but_do_not_clobber_newer_adoptions() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..12u64 {
            state.handle(&Request::Add {
                id: i,
                elements: spec(
                    7_000.0 + i as f64 * 3.0,
                    0.4 + (i % 5) as f64 * 0.3,
                    i as f64 * 0.37,
                ),
            });
        }
        // Capture a job, then let the catalog move on and adopt a newer
        // screen before the old job commits.
        let old_job = state.capture_screen_job(ScreenKind::Full);
        let old_output = run_screen_job(&old_job, None).unwrap();
        state.handle(&Request::Update {
            id: 3,
            elements: spec(7_009.5, 1.6, 2.0),
        });
        assert!(state.handle(&Request::Screen).ok);
        let adopted = state.engine().conjunctions();
        let adopted_epoch = state.catalog().epoch();

        let r = state.commit_screen_job(&old_job, old_output);
        let summary = r.screen.unwrap();
        assert!(summary.stale, "older-epoch result must be flagged stale");
        assert_eq!(summary.epoch, old_job.epoch());
        assert_eq!(
            state.engine().conjunctions(),
            adopted,
            "stale commit must not touch the maintained set"
        );
        assert_eq!(state.catalog().epoch(), adopted_epoch);
    }

    #[test]
    fn commits_replay_removals_that_landed_after_capture() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        // Near-identical orbits so the screen finds plenty of pairs.
        for i in 0..10u64 {
            state.handle(&Request::Add {
                id: i,
                elements: spec(7_000.0 + i as f64 * 0.5, 0.9, i as f64 * 0.01),
            });
        }
        let job = state.capture_screen_job(ScreenKind::Full);
        let output = run_screen_job(&job, None).unwrap();
        assert!(state.handle(&Request::Remove { id: 4 }).ok);
        let new_len = state.catalog().len() as u32;

        let r = state.commit_screen_job(&job, output);
        assert!(r.ok && !r.screen.unwrap().stale);
        for c in state.engine().conjunctions() {
            assert!(
                c.id_lo < new_len && c.id_hi < new_len,
                "conjunction ({}, {}) references a removed index",
                c.id_lo,
                c.id_hi
            );
        }
    }

    #[test]
    fn advance_commits_refuse_to_race_mutations() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..6u64 {
            state.handle(&Request::Add {
                id: i,
                elements: spec(7_000.0 + i as f64 * 5.0, 0.4 + i as f64 * 0.2, i as f64),
            });
        }
        let job = state.capture_screen_job(ScreenKind::Advance { dt: 30.0 });
        let output = run_screen_job(&job, None).unwrap();
        state.handle(&Request::Update {
            id: 2,
            elements: spec(7_011.0, 0.7, 1.0),
        });
        let time_before = state.catalog().time();
        let window_before = state.status().window;

        let r = state.commit_screen_job(&job, output);
        assert!(!r.ok);
        assert!(
            r.error.unwrap().contains("advance raced"),
            "error names the race"
        );
        assert_eq!(
            state.catalog().time(),
            time_before,
            "catalog must not advance"
        );
        assert_eq!(state.status().window, window_before);
    }

    #[test]
    fn last_screen_variant_tracks_the_adopted_screen_not_the_counters() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..12u64 {
            state.handle(&Request::Add {
                id: i,
                elements: spec(
                    7_000.0 + i as f64 * 3.0,
                    0.4 + (i % 5) as f64 * 0.3,
                    i as f64 * 0.37,
                ),
            });
        }
        assert!(state.handle(&Request::Screen).ok);
        assert_eq!(state.status().last_screen.unwrap().variant, "grid");
        state.handle(&Request::Update {
            id: 3,
            elements: spec(7_009.5, 1.6, 2.0),
        });
        assert!(state.handle(&Request::Delta).ok);
        assert_eq!(state.status().last_screen.unwrap().variant, DELTA_VARIANT);
        // Regression: with delta_screens > 0 the old code kept reporting
        // `grid-delta` even after a later full screen.
        assert!(state.handle(&Request::Screen).ok);
        assert_eq!(state.status().last_screen.unwrap().variant, "grid");
        assert_eq!(state.status().variant, "grid");
    }

    #[test]
    fn hybrid_state_serves_screens_with_filter_stats() {
        let config = ScreeningConfig::hybrid_defaults(5.0, 120.0);
        let mut state = ServiceState::with_variant(config, Variant::Hybrid).unwrap();
        for i in 0..12u64 {
            state.handle(&Request::Add {
                id: i,
                elements: spec(
                    7_000.0 + i as f64 * 3.0,
                    0.4 + (i % 5) as f64 * 0.3,
                    i as f64 * 0.37,
                ),
            });
        }
        let r = state.handle(&Request::Screen);
        let screen = r.screen.unwrap();
        assert_eq!(screen.variant, "hybrid");
        assert!(
            screen.filter_stats.is_some(),
            "hybrid screens report filter-chain stats"
        );
        state.handle(&Request::Update {
            id: 3,
            elements: spec(7_009.5, 1.6, 2.0),
        });
        let r = state.handle(&Request::Delta);
        let delta = r.screen.unwrap();
        assert_eq!(delta.variant, HYBRID_DELTA_VARIANT);
        assert!(delta.filter_stats.is_some());
        let status = state.status();
        assert_eq!(status.variant, "hybrid");
        assert_eq!(status.last_screen.unwrap().variant, HYBRID_DELTA_VARIANT);
    }

    #[test]
    fn restore_under_a_different_variant_comes_back_cold() {
        let config = ScreeningConfig::grid_defaults(5.0, 120.0);
        let mut state = ServiceState::new(config).unwrap();
        for i in 0..12u64 {
            state.handle(&Request::Add {
                id: i,
                elements: spec(
                    7_000.0 + i as f64 * 3.0,
                    0.4 + (i % 5) as f64 * 0.3,
                    i as f64 * 0.37,
                ),
            });
        }
        assert!(state.handle(&Request::Screen).ok);
        let snapshot = state.snapshot(3);
        assert_eq!(snapshot.variant, Variant::Grid);

        let hybrid_config = ScreeningConfig::hybrid_defaults(5.0, 120.0);
        let mut restored =
            ServiceState::restore_with_variant(hybrid_config, &snapshot, Variant::Hybrid).unwrap();
        assert!(
            !restored.engine().is_warm(),
            "a foreign-variant warm set must be dropped on restore"
        );
        assert_eq!(restored.engine().full_screens(), 1, "counters survive");
        assert_eq!(restored.catalog().ids(), state.catalog().ids());
        assert_eq!(restored.status().variant, "hybrid");
        // A DELTA on the cold engine falls back to a full hybrid screen.
        let r = restored.handle(&Request::Delta);
        assert_eq!(r.screen.unwrap().variant, "hybrid");

        // Same variant restores warm, exactly as before.
        let warm = ServiceState::restore_from(config, &snapshot).unwrap();
        assert!(warm.engine().is_warm());
        assert_eq!(warm.engine().conjunctions(), state.engine().conjunctions());
    }

    #[test]
    fn worker_auto_sizing_stays_in_bounds() {
        assert_eq!(resolve_workers(3), 3);
        let auto = resolve_workers(0);
        assert!((1..=4).contains(&auto), "auto workers {auto} out of [1, 4]");
    }

    #[test]
    fn bounded_line_reader_enforces_the_cap() {
        use std::io::Cursor;
        let mut buf = Vec::new();

        let mut ok = Cursor::new(b"{\"cmd\":\"STATUS\"}\nrest\n".to_vec());
        assert!(matches!(
            read_bounded_line(&mut ok, &mut buf, 64).unwrap(),
            LineOutcome::Line
        ));
        assert_eq!(buf, b"{\"cmd\":\"STATUS\"}\n");

        // An oversized line is drained; the next line still parses.
        let mut big = Vec::new();
        big.extend(std::iter::repeat_n(b'x', 100));
        big.push(b'\n');
        big.extend_from_slice(b"after\n");
        let mut oversized = Cursor::new(big);
        assert!(matches!(
            read_bounded_line(&mut oversized, &mut buf, 64).unwrap(),
            LineOutcome::Oversized
        ));
        assert!(matches!(
            read_bounded_line(&mut oversized, &mut buf, 64).unwrap(),
            LineOutcome::Line
        ));
        assert_eq!(buf, b"after\n");
        assert!(matches!(
            read_bounded_line(&mut oversized, &mut buf, 64).unwrap(),
            LineOutcome::Eof
        ));

        // Exactly at the cap (plus newline) is still fine.
        let mut exact = Cursor::new([vec![b'y'; 64], vec![b'\n']].concat());
        assert!(matches!(
            read_bounded_line(&mut exact, &mut buf, 64).unwrap(),
            LineOutcome::Line
        ));
    }
}
