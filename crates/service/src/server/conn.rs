//! The wire layer: bounded line framing, the poll(2)-driven event loop
//! that fronts every connection, and the client helpers (`request`,
//! `request_with_timeout`, [`Client`]).
//!
//! One I/O thread owns every socket. Requests are framed by
//! [`LineFramer`] (1 MiB cap with drain-to-newline resync), screening
//! verbs are handed to the worker pool tagged with the connection id,
//! and completions plus subscription pushes come back through the
//! [`IoHub`](super::handlers::IoHub) queue, woken via a pipe. Responses
//! may complete out of order across pipelined worker-pool verbs — the
//! `req_id` echo is the correlation key.
//!
//! Backpressure is a bounded write buffer: push events are shed once a
//! connection's buffer crosses the high-water mark, and a consumer so
//! slow that even responses would exceed the mark plus two max-size
//! lines is disconnected outright.

use super::handlers::{enqueue_screen, handle_and_persist, Enqueued, IoMsg, Shared};
use super::poll::{poll_fds, PollFd, POLLIN, POLLOUT};
use super::MAX_LINE_BYTES;
use crate::proto::{Envelope, PushEvent, Request, Response};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// How long a shutdown drains in-flight jobs and unflushed buffers
/// before the loop exits regardless.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(2);

pub(crate) enum LineOutcome {
    /// A complete line is in the buffer (newline included if present).
    Line,
    /// The line blew past the cap; the remainder was drained.
    Oversized,
    Eof,
}

/// Read one newline-terminated line of at most `max` bytes. An oversized
/// line is drained to its newline so the connection can resync, and
/// reported as [`LineOutcome::Oversized`] rather than an error — the
/// client gets a protocol-level ERROR and keeps its connection.
pub(crate) fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
) -> io::Result<LineOutcome> {
    buf.clear();
    // UFCS so `take` borrows the reader (via `impl Read for &mut R`)
    // instead of consuming it — the caller reuses it across lines.
    let n = Read::take(&mut *reader, max as u64 + 1).read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineOutcome::Eof);
    }
    if buf.len() > max && !buf.ends_with(b"\n") {
        drain_line(reader)?;
        return Ok(LineOutcome::Oversized);
    }
    Ok(LineOutcome::Line)
}

/// Consume input up to and including the next newline (or EOF).
fn drain_line<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                reader.consume(len);
            }
        }
    }
}

/// A framed unit from the inbound byte stream.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Frame {
    Line(Vec<u8>),
    /// A line crossed the cap; one error is owed and the stream resyncs
    /// at the next newline.
    Oversized,
}

/// Incremental newline framer with the same cap-and-resync semantics as
/// [`read_bounded_line`], but fed from nonblocking reads: an oversized
/// line is reported once, immediately, and everything up to its newline
/// is discarded.
pub(crate) struct LineFramer {
    buf: Vec<u8>,
    max: usize,
    resync: bool,
}

impl LineFramer {
    pub(crate) fn new(max: usize) -> LineFramer {
        LineFramer {
            buf: Vec::new(),
            max,
            resync: false,
        }
    }

    /// Feed freshly read bytes; complete frames append to `frames`.
    pub(crate) fn feed(&mut self, mut data: &[u8], frames: &mut Vec<Frame>) {
        while !data.is_empty() {
            match data.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if self.resync {
                        self.resync = false;
                    } else {
                        self.buf.extend_from_slice(&data[..pos]);
                        if self.buf.len() > self.max {
                            frames.push(Frame::Oversized);
                            self.buf.clear();
                        } else {
                            frames.push(Frame::Line(std::mem::take(&mut self.buf)));
                        }
                    }
                    data = &data[pos + 1..];
                }
                None => {
                    if !self.resync {
                        self.buf.extend_from_slice(data);
                        if self.buf.len() > self.max {
                            frames.push(Frame::Oversized);
                            self.buf.clear();
                            self.resync = true;
                        }
                    }
                    data = &[];
                }
            }
        }
    }
}

/// Outbound byte queue for one connection: appended lines, a cursor for
/// partial nonblocking writes, and a high-water peak for the metrics
/// histogram.
pub(crate) struct WriteQueue {
    buf: Vec<u8>,
    start: usize,
    peak: usize,
}

impl WriteQueue {
    pub(crate) fn new() -> WriteQueue {
        WriteQueue {
            buf: Vec::new(),
            start: 0,
            peak: 0,
        }
    }

    pub(crate) fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Largest backlog this queue ever held, in bytes.
    pub(crate) fn peak(&self) -> usize {
        self.peak
    }

    pub(crate) fn push_line(&mut self, line: &str) {
        self.buf.extend_from_slice(line.as_bytes());
        self.buf.push(b'\n');
        self.peak = self.peak.max(self.pending());
    }

    /// Write as much as the sink takes right now. `Ok(true)` means the
    /// queue drained; `Ok(false)` means the sink would block.
    pub(crate) fn flush<W: Write>(&mut self, sink: &mut W) -> io::Result<bool> {
        while self.start < self.buf.len() {
            match sink.write(&self.buf[self.start..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.start += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Reclaim the consumed prefix once it dominates.
                    if self.start >= 4096 && self.start * 2 >= self.buf.len() {
                        self.buf.drain(..self.start);
                        self.start = 0;
                    }
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.start = 0;
        Ok(true)
    }
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    framer: LineFramer,
    out: WriteQueue,
    /// Worker-pool jobs whose responses are still owed to this client.
    inflight: usize,
    /// Client half-closed its write side; finish flushing, then close.
    eof: bool,
    /// Fatal: drop the connection without further flushing.
    dead: bool,
    last_read: Instant,
}

impl Conn {
    fn new(stream: TcpStream, max_line_bytes: usize) -> Conn {
        Conn {
            stream,
            framer: LineFramer::new(max_line_bytes),
            out: WriteQueue::new(),
            inflight: 0,
            eof: false,
            dead: false,
            last_read: Instant::now(),
        }
    }
}

/// The single-threaded event loop behind [`Server::run`](super::Server::run):
/// nonblocking accept, per-connection framing and dispatch, worker
/// completions and subscription pushes via the wake pipe, and a bounded
/// drain once the shutdown flag is raised.
pub(crate) fn event_loop(listener: &TcpListener, wake_rx: &UnixStream, shared: &Shared) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let _ = wake_rx.set_nonblocking(true);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    let mut scratch = vec![0u8; 16 * 1024];
    let mut next_id: u64 = 1;
    let mut drain_until: Option<Instant> = None;

    loop {
        let accepting = drain_until.is_none();
        fds.clear();
        order.clear();
        fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
        if accepting {
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        }
        let base = fds.len();
        for (&id, conn) in &conns {
            let mut events = 0i16;
            if accepting && !conn.eof && !conn.dead {
                events |= POLLIN;
            }
            if !conn.dead && conn.out.pending() > 0 {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            order.push(id);
        }

        // Ticks are only needed for idle reaping and the drain deadline;
        // everything else arrives through the wake pipe or a socket.
        let timeout_ms = if drain_until.is_some() {
            50
        } else if shared.read_timeout.is_some() {
            250
        } else {
            60_000
        };
        if let Err(err) = poll_fds(&mut fds, timeout_ms) {
            eprintln!("kessler-service: poll failed: {err}");
            std::thread::sleep(Duration::from_millis(50));
        }

        if fds[0].readable() {
            drain_wake(wake_rx);
        }
        if accepting && fds[1].readable() {
            accept_new(listener, shared, &mut conns, &mut next_id);
        }
        for (i, &id) in order.iter().enumerate() {
            if !fds[base + i].readable() {
                continue;
            }
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if accepting && !conn.eof && !conn.dead {
                service_reads(shared, id, conn, &mut scratch);
            }
        }

        route_io(shared, &mut conns);

        // Opportunistic flush: nonblocking writes usually complete
        // immediately; POLLOUT above only gates the wakeup.
        for conn in conns.values_mut() {
            if !conn.dead && conn.out.pending() > 0 && conn.out.flush(&mut conn.stream).is_err() {
                conn.dead = true;
            }
        }

        if drain_until.is_none() && shared.shutdown.load(Ordering::SeqCst) {
            drain_until = Some(Instant::now() + SHUTDOWN_DRAIN);
        }

        let now = Instant::now();
        let mut doomed: Vec<u64> = Vec::new();
        for (&id, conn) in &conns {
            let drained = conn.out.pending() == 0 && conn.inflight == 0;
            if conn.dead || (conn.eof && drained) {
                doomed.push(id);
            } else if let Some(idle) = shared.read_timeout {
                // Subscribers legitimately sit idle waiting for pushes;
                // everyone else gets reaped like the blocking server did.
                if drain_until.is_none()
                    && drained
                    && now.duration_since(conn.last_read) > idle
                    && !shared.subs.has_subs(id)
                {
                    doomed.push(id);
                }
            }
        }
        for id in doomed {
            close_conn(shared, &mut conns, id);
        }

        if let Some(deadline) = drain_until {
            let busy = conns
                .values()
                .any(|c| !c.dead && (c.out.pending() > 0 || c.inflight > 0));
            if !busy || now >= deadline {
                break;
            }
        }
    }

    let remaining: Vec<u64> = conns.keys().copied().collect();
    for id in remaining {
        close_conn(shared, &mut conns, id);
    }
}

fn drain_wake(wake_rx: &UnixStream) {
    let mut sink = [0u8; 256];
    let mut reader: &UnixStream = wake_rx;
    while matches!(reader.read(&mut sink), Ok(n) if n > 0) {}
}

fn accept_new(
    listener: &TcpListener,
    shared: &Shared,
    conns: &mut HashMap<u64, Conn>,
    next_id: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let id = *next_id;
                *next_id += 1;
                conns.insert(id, Conn::new(stream, shared.max_line_bytes));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Read everything the socket has, frame it, and dispatch the frames.
fn service_reads(shared: &Shared, id: u64, conn: &mut Conn, scratch: &mut [u8]) {
    let mut frames: Vec<Frame> = Vec::new();
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.last_read = Instant::now();
                conn.framer.feed(&scratch[..n], &mut frames);
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    for frame in frames {
        // Once shutdown is requested, later-pipelined requests are not
        // started; their connection closes after the drain.
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        handle_frame(shared, id, conn, frame);
        if conn.dead {
            break;
        }
    }
}

fn handle_frame(shared: &Shared, id: u64, conn: &mut Conn, frame: Frame) {
    let response = match frame {
        Frame::Oversized => Response::error(format!(
            "request line exceeds the {}-byte cap",
            shared.max_line_bytes
        )),
        Frame::Line(bytes) => {
            // Strict UTF-8: lossy U+FFFD replacement could silently turn a
            // string field (satellite name, req_id) into a different value
            // that still parses and gets applied.
            let Ok(text) = std::str::from_utf8(&bytes) else {
                queue_response(
                    shared,
                    conn,
                    &Response::error("bad request: request line is not valid UTF-8"),
                );
                return;
            };
            let line = text.trim();
            if line.is_empty() {
                return;
            }
            match serde_json::from_str::<Envelope>(line) {
                Err(e) => Response::error(format!("bad request: {e}")),
                Ok(Envelope { req_id, request }) => {
                    let mut response = match request {
                        req @ (Request::Screen | Request::Delta | Request::Advance { .. }) => {
                            // Screening runs on the worker pool against an
                            // enqueue-time snapshot; the response comes back
                            // through the io queue, possibly out of order.
                            match enqueue_screen(shared, req, req_id.clone(), id) {
                                Enqueued::Queued => {
                                    conn.inflight += 1;
                                    return;
                                }
                                Enqueued::Done(resp) => *resp,
                            }
                        }
                        Request::Cancel { id: job } => {
                            let hit = shared.registry.cancel(&job);
                            shared.metrics.lock().count_request("CANCEL", hit);
                            if hit {
                                Response::ack()
                            } else {
                                Response::error(format!(
                                    "no queued or running job with req_id \"{job}\""
                                ))
                            }
                        }
                        Request::Subscribe { assets, all } => {
                            let outcome =
                                shared.subs.subscribe(id, req_id.as_deref(), &assets, all);
                            shared
                                .metrics
                                .lock()
                                .count_request("SUBSCRIBE", outcome.is_ok());
                            match outcome {
                                Ok(ack) => Response::with_subscription(ack),
                                Err(e) => Response::error(e),
                            }
                        }
                        Request::Unsubscribe { sub_id } => {
                            let outcome = shared.subs.unsubscribe(id, sub_id.as_deref());
                            shared
                                .metrics
                                .lock()
                                .count_request("UNSUBSCRIBE", outcome.is_ok());
                            match outcome {
                                Ok(ack) => Response::with_subscription(ack),
                                Err(e) => Response::error(e),
                            }
                        }
                        req => {
                            if matches!(req, Request::Shutdown) {
                                shared.shutdown.store(true, Ordering::SeqCst);
                            }
                            handle_and_persist(shared, &req)
                        }
                    };
                    response.req_id = req_id;
                    response
                }
            }
        }
    };
    queue_response(shared, conn, &response);
}

fn queue_response(shared: &Shared, conn: &mut Conn, response: &Response) {
    let line = serde_json::to_string(response)
        .unwrap_or_else(|_| r#"{"ok":false,"error":"response serialization failed"}"#.to_string());
    queue_response_line(shared, conn, &line);
}

/// Responses always queue — unless the consumer is so far behind that the
/// buffer would cross the high-water mark plus two max-size lines, at
/// which point it is disconnected as unrecoverable.
fn queue_response_line(shared: &Shared, conn: &mut Conn, line: &str) {
    let hard_cap = shared.write_highwater + 2 * shared.max_line_bytes;
    if conn.out.pending() + line.len() + 1 > hard_cap {
        shared.metrics.lock().note_slow_consumer_disconnect();
        conn.dead = true;
        return;
    }
    conn.out.push_line(line);
}

/// Deliver worker completions and subscription pushes queued by other
/// threads. Push events are best-effort: past the high-water mark (or to
/// a vanished connection) they are shed and counted, never buffered
/// without bound.
fn route_io(shared: &Shared, conns: &mut HashMap<u64, Conn>) {
    let msgs = shared.io.drain();
    if msgs.is_empty() {
        return;
    }
    let mut pushed = 0u64;
    let mut dropped = 0u64;
    for msg in msgs {
        match msg {
            IoMsg::Respond { conn: id, line } => {
                let Some(conn) = conns.get_mut(&id) else {
                    continue;
                };
                conn.inflight = conn.inflight.saturating_sub(1);
                if !conn.dead {
                    queue_response_line(shared, conn, &line);
                }
            }
            IoMsg::Push { conn: id, line } => {
                match conns.get_mut(&id) {
                    Some(conn)
                        if !conn.dead
                            // +1 for the newline the push line will carry.
                            && conn.out.pending() + line.len() < shared.write_highwater =>
                    {
                        conn.out.push_line(&line);
                        pushed += 1;
                    }
                    _ => dropped += 1,
                }
            }
        }
    }
    if pushed > 0 || dropped > 0 {
        let mut metrics = shared.metrics.lock();
        metrics.note_events_pushed(pushed);
        metrics.note_events_dropped(dropped);
    }
}

fn close_conn(shared: &Shared, conns: &mut HashMap<u64, Conn>, id: u64) {
    if let Some(conn) = conns.remove(&id) {
        shared.subs.drop_conn(id);
        shared
            .metrics
            .lock()
            .record_write_buffer_peak(conn.out.peak() as u64);
    }
}

/// One-shot request/response over a fresh connection.
pub fn request<A: ToSocketAddrs>(addr: A, req: &Request) -> io::Result<Response> {
    let mut client = Client::connect(addr)?;
    client.send(req)
}

/// One-shot request/response with a single overall deadline covering
/// address resolution fan-out, connect, write, and read.
pub fn request_with_timeout<A: ToSocketAddrs>(
    addr: A,
    req: &Request,
    timeout: Duration,
) -> io::Result<Response> {
    let deadline = Instant::now() + timeout;
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    let stream = connect_by_deadline(&addrs, deadline)?;
    let budget = deadline
        .saturating_duration_since(Instant::now())
        .max(Duration::from_millis(1));
    stream.set_read_timeout(Some(budget))?;
    stream.set_write_timeout(Some(budget))?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut client = Client {
        reader,
        writer: stream,
        events: VecDeque::new(),
    };
    client.send(req)
}

/// Try each candidate address under one shared deadline. The budget
/// shrinks as candidates fail, so a multi-A-record hostname cannot block
/// for candidate-count × timeout.
pub(crate) fn connect_by_deadline(
    addrs: &[SocketAddr],
    deadline: Instant,
) -> io::Result<TcpStream> {
    connect_with(addrs, deadline, TcpStream::connect_timeout)
}

/// The deadline loop behind [`connect_by_deadline`], with the dial
/// injectable so the budget arithmetic is testable without a network
/// that honors timeouts.
fn connect_with<T>(
    addrs: &[SocketAddr],
    deadline: Instant,
    mut dial: impl FnMut(&SocketAddr, Duration) -> io::Result<T>,
) -> io::Result<T> {
    let mut last_err: Option<io::Error> = None;
    for candidate in addrs {
        let Some(budget) = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
        else {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                match last_err {
                    Some(err) => format!("connect deadline exhausted; last error: {err}"),
                    None => "connect deadline exhausted".to_string(),
                },
            ));
        };
        match dial(candidate, budget) {
            Ok(stream) => return Ok(stream),
            Err(err) => last_err = Some(err),
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no addresses to connect to")))
}

/// A persistent JSON-lines client connection. Push events that arrive
/// interleaved with responses (on subscribed connections) are queued and
/// handed out via [`Client::next_event`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    events: VecDeque<PushEvent>,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            events: VecDeque::new(),
        })
    }

    /// Apply read/write deadlines to the connection (`None` = blocking).
    pub fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(read)?;
        self.writer.set_write_timeout(write)
    }

    /// Send a request and block for its response.
    pub fn send(&mut self, req: &Request) -> io::Result<Response> {
        let line = serde_json::to_string(req)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        self.send_line(&line)
    }

    /// Send a request tagged with a `req_id` (echoed on the response; the
    /// handle `CANCEL` takes) and block for its response.
    pub fn send_tagged(&mut self, req: &Request, req_id: &str) -> io::Result<Response> {
        let envelope = Envelope {
            req_id: Some(req_id.to_string()),
            request: req.clone(),
        };
        let line = serde_json::to_string(&envelope)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        self.send_line(&line)
    }

    /// Send a raw line (not necessarily valid JSON) and read one response.
    /// Lines over [`MAX_LINE_BYTES`] are refused locally — the server
    /// would reject them anyway. Push events arriving first are queued.
    pub fn send_line(&mut self, line: &str) -> io::Result<Response> {
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte protocol cap",
                    line.len()
                ),
            ));
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        loop {
            let reply = self.read_wire_line()?;
            match serde_json::from_str::<Response>(&reply) {
                Ok(response) => return Ok(response),
                Err(_) => match serde_json::from_str::<PushEvent>(&reply) {
                    Ok(event) => self.events.push_back(event),
                    Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
                },
            }
        }
    }

    /// Next push event: queued ones first, otherwise block on the socket
    /// (honouring any read deadline from [`Client::set_timeouts`]).
    pub fn next_event(&mut self) -> io::Result<PushEvent> {
        if let Some(event) = self.events.pop_front() {
            return Ok(event);
        }
        let line = self.read_wire_line()?;
        serde_json::from_str::<PushEvent>(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Push events already received and waiting in the local queue.
    pub fn queued_events(&self) -> usize {
        self.events.len()
    }

    fn read_wire_line(&mut self) -> io::Result<String> {
        let mut buf = Vec::new();
        match read_bounded_line(&mut self.reader, &mut buf, MAX_LINE_BYTES)? {
            LineOutcome::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            LineOutcome::Oversized => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "server line exceeds the protocol cap",
            )),
            LineOutcome::Line => {
                String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn lines(frames: &[Frame]) -> Vec<String> {
        frames
            .iter()
            .map(|f| match f {
                Frame::Line(bytes) => String::from_utf8(bytes.clone()).unwrap(),
                Frame::Oversized => "<oversized>".to_string(),
            })
            .collect()
    }

    #[test]
    fn framer_splits_pipelined_lines_across_reads() {
        let mut framer = LineFramer::new(64);
        let mut frames = Vec::new();
        framer.feed(b"one\ntw", &mut frames);
        framer.feed(b"o\nthree\n", &mut frames);
        assert_eq!(lines(&frames), ["one", "two", "three"]);
    }

    #[test]
    fn framer_reports_oversized_once_and_resyncs() {
        let mut framer = LineFramer::new(8);
        let mut frames = Vec::new();
        // Crosses the cap mid-read: reported immediately, once.
        framer.feed(b"0123456789", &mut frames);
        assert_eq!(frames, [Frame::Oversized]);
        // The rest of the doomed line is discarded silently...
        framer.feed(b"garbage-without-newline", &mut frames);
        assert_eq!(frames.len(), 1);
        // ...up to its newline, after which framing resumes.
        framer.feed(b"tail\nok\n", &mut frames);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1], Frame::Line(b"ok".to_vec()));
    }

    #[test]
    fn framer_cap_is_exclusive_of_the_newline() {
        let mut framer = LineFramer::new(8);
        let mut frames = Vec::new();
        framer.feed(b"12345678\n123456789\n12\n", &mut frames);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], Frame::Line(b"12345678".to_vec()));
        assert_eq!(frames[1], Frame::Oversized);
        assert_eq!(frames[2], Frame::Line(b"12".to_vec()));
    }

    /// A sink that accepts a fixed number of bytes, then would block.
    struct Throttled {
        accepted: Vec<u8>,
        budget: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.budget);
            self.accepted.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_tracks_partial_writes_and_peak() {
        let mut queue = WriteQueue::new();
        queue.push_line("hello");
        queue.push_line("world");
        assert_eq!(queue.pending(), 12);
        assert_eq!(queue.peak(), 12);

        let mut sink = Throttled {
            accepted: Vec::new(),
            budget: 7,
        };
        assert!(!queue.flush(&mut sink).unwrap());
        assert_eq!(queue.pending(), 5);
        // Peak reflects the high-water mark, not the current backlog.
        assert_eq!(queue.peak(), 12);

        let mut sink = Throttled {
            accepted: Vec::new(),
            budget: 100,
        };
        assert!(queue.flush(&mut sink).unwrap());
        assert_eq!(sink.accepted, b"orld\n");
        assert_eq!(queue.pending(), 0);
        assert_eq!(queue.peak(), 12);
    }

    #[test]
    fn connect_deadline_is_shared_across_candidates() {
        // A dial that burns 40ms per attempt and never connects stands in
        // for a black-holed address (real unrouted targets are unreliable
        // behind NATs and transparent proxies). The shared deadline must
        // cut the loop off after ~one budget, where the old per-candidate
        // logic allowed candidate-count × budget.
        let addrs: Vec<SocketAddr> = (1..=16)
            .map(|i| format!("192.0.2.{i}:9").parse().unwrap())
            .collect();
        let budget = Duration::from_millis(100);
        let deadline = Instant::now() + budget;
        let mut budgets: Vec<Duration> = Vec::new();
        let err = connect_with(&addrs, deadline, |_, remaining| -> io::Result<TcpStream> {
            budgets.push(remaining);
            std::thread::sleep(Duration::from_millis(40).min(remaining));
            Err(io::ErrorKind::TimedOut.into())
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(
            budgets.len() < addrs.len(),
            "deadline should stop the loop long before all {} candidates; dialed {}",
            addrs.len(),
            budgets.len()
        );
        // Every attempt sees only what is left of the one shared budget,
        // strictly shrinking as earlier candidates consume it.
        assert!(budgets.iter().all(|b| *b <= budget), "budgets {budgets:?}");
        assert!(
            budgets.windows(2).all(|w| w[1] < w[0]),
            "budgets {budgets:?}"
        );
    }

    #[test]
    fn connect_succeeds_within_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_by_deadline(&[addr], Instant::now() + Duration::from_secs(5)).unwrap();
        assert_eq!(stream.peer_addr().unwrap(), addr);
    }

    #[test]
    fn connect_refuses_an_exhausted_deadline_without_dialing() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let err =
            connect_by_deadline(&[addr], Instant::now() - Duration::from_millis(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}
