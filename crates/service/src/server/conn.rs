//! The wire layer: bounded line reading, the per-connection request loop,
//! and the client helpers (`request`, `request_with_timeout`, [`Client`]).

use super::handlers::{enqueue_screen, handle_and_persist, Shared};
use super::MAX_LINE_BYTES;
use crate::proto::{Envelope, Request, Response};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

pub(crate) enum LineOutcome {
    /// A complete line is in the buffer (newline included if present).
    Line,
    /// The line blew past the cap; the remainder was drained.
    Oversized,
    Eof,
}

/// Read one newline-terminated line of at most `max` bytes. An oversized
/// line is drained to its newline so the connection can resync, and
/// reported as [`LineOutcome::Oversized`] rather than an error — the
/// client gets a protocol-level ERROR and keeps its connection.
pub(crate) fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
) -> io::Result<LineOutcome> {
    buf.clear();
    // UFCS so `take` borrows the reader (via `impl Read for &mut R`)
    // instead of consuming it — the caller reuses it across lines.
    let n = Read::take(&mut *reader, max as u64 + 1).read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineOutcome::Eof);
    }
    if buf.len() > max && !buf.ends_with(b"\n") {
        drain_line(reader)?;
        return Ok(LineOutcome::Oversized);
    }
    Ok(LineOutcome::Line)
}

/// Consume input up to and including the next newline (or EOF).
fn drain_line<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                reader.consume(len);
            }
        }
    }
}

pub(crate) fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(shared.read_timeout);
    let _ = stream.set_write_timeout(shared.write_timeout);
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    // A read error covers timeouts (idle connections get reaped) and
    // resets; nothing to answer on a broken socket, so the loop just ends.
    while let Ok(outcome) = read_bounded_line(&mut reader, &mut buf, shared.max_line_bytes) {
        let mut is_shutdown = false;
        let response = match outcome {
            LineOutcome::Eof => break,
            LineOutcome::Oversized => Response::error(format!(
                "request line exceeds the {}-byte cap",
                shared.max_line_bytes
            )),
            LineOutcome::Line => {
                let text = String::from_utf8_lossy(&buf);
                let line = text.trim();
                if line.is_empty() {
                    continue;
                }
                match serde_json::from_str::<Envelope>(line) {
                    Err(e) => Response::error(format!("bad request: {e}")),
                    Ok(Envelope { req_id, request }) => {
                        is_shutdown = matches!(request, Request::Shutdown);
                        let mut response = match request {
                            req @ (Request::Screen | Request::Delta | Request::Advance { .. }) => {
                                // Screening runs on the worker pool against
                                // an enqueue-time snapshot; the bounded
                                // queue sheds load explicitly.
                                enqueue_screen(&shared, req, req_id.clone())
                            }
                            Request::Cancel { id } => {
                                let hit = shared.registry.cancel(&id);
                                shared.metrics.lock().count_request("CANCEL", hit);
                                if hit {
                                    Response::ack()
                                } else {
                                    Response::error(format!(
                                        "no queued or running job with req_id \"{id}\""
                                    ))
                                }
                            }
                            req => {
                                if is_shutdown {
                                    shared.shutdown.store(true, Ordering::SeqCst);
                                }
                                handle_and_persist(&shared, &req)
                            }
                        };
                        response.req_id = req_id;
                        response
                    }
                }
            }
        };
        let mut payload = match serde_json::to_string(&response) {
            Ok(p) => p,
            Err(_) => r#"{"ok":false,"error":"response serialization failed"}"#.to_string(),
        };
        payload.push('\n');
        if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if is_shutdown {
            // Poke the accept loop so it observes the shutdown flag.
            let _ = TcpStream::connect(shared.addr);
            break;
        }
    }
}

/// One-shot request/response over a fresh connection.
pub fn request<A: ToSocketAddrs>(addr: A, req: &Request) -> io::Result<Response> {
    let mut client = Client::connect(addr)?;
    client.send(req)
}

/// One-shot request/response with a deadline on connect, write, and read.
pub fn request_with_timeout<A: ToSocketAddrs>(
    addr: A,
    req: &Request,
    timeout: Duration,
) -> io::Result<Response> {
    let mut last_err = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                let reader = BufReader::new(stream.try_clone()?);
                let mut client = Client {
                    reader,
                    writer: stream,
                };
                return client.send(req);
            }
            Err(err) => last_err = Some(err),
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("no addresses to connect to")))
}

/// A persistent JSON-lines client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Apply read/write deadlines to the connection (`None` = blocking).
    pub fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(read)?;
        self.writer.set_write_timeout(write)
    }

    /// Send a request and block for its response.
    pub fn send(&mut self, req: &Request) -> io::Result<Response> {
        let line = serde_json::to_string(req)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        self.send_line(&line)
    }

    /// Send a request tagged with a `req_id` (echoed on the response; the
    /// handle `CANCEL` takes) and block for its response.
    pub fn send_tagged(&mut self, req: &Request, req_id: &str) -> io::Result<Response> {
        let envelope = Envelope {
            req_id: Some(req_id.to_string()),
            request: req.clone(),
        };
        let line = serde_json::to_string(&envelope)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        self.send_line(&line)
    }

    /// Send a raw line (not necessarily valid JSON) and read one response.
    /// Lines over [`MAX_LINE_BYTES`] are refused locally — the server
    /// would reject them anyway.
    pub fn send_line(&mut self, line: &str) -> io::Result<Response> {
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte protocol cap",
                    line.len()
                ),
            ));
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(&reply).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
