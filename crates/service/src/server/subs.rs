//! Subscription hub: SUBSCRIBE registrations and conjunction push fan-out.
//!
//! The hub keeps the last *published* pair set, keyed by external asset
//! ids, and diffs each committed screen against it to produce
//! `new`/`updated`/`retired` [`PushEvent`]s. Keying by external ids (not
//! dense catalog indices) makes the baseline survive the index churn
//! that `swap_remove` removals cause between commits.
//!
//! Each pair is summarised by its closest-approach conjunction (minimum
//! PCA) plus the conjunction count; the delta engine's invariant that a
//! warm screen is bit-identical to a cold one means unchanged pairs
//! compare exactly equal, so exact `f64` comparison never fires a
//! spurious `updated`.
//!
//! Lock order: the hub's mutex sits *after* the state lock and *before*
//! `IoHub::queue` and the metrics lock (publishers hold state while
//! fanning out; the event loop takes the hub alone).

use std::collections::{HashMap, HashSet};

use parking_lot::Mutex;

use super::handlers::IoMsg;
use crate::delta::PairMap;
use crate::proto::{EventKind, PushEvent, SubscriptionAck, PUSH_CONJUNCTION};

/// Closest-approach summary for one maintained pair.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PairInfo {
    tca: f64,
    pca_km: f64,
    count: usize,
}

enum Filter {
    All,
    Assets(HashSet<u64>),
}

impl Filter {
    fn matches(&self, lo: u64, hi: u64) -> bool {
        match self {
            Filter::All => true,
            Filter::Assets(set) => set.contains(&lo) || set.contains(&hi),
        }
    }
}

struct Subscription {
    sub_id: String,
    all: bool,
    filter: Filter,
}

#[derive(Default)]
struct HubInner {
    /// Pair set as of the last publish (or prime), by external-id pair.
    published: HashMap<(u64, u64), PairInfo>,
    /// Connection id → its active subscriptions.
    subs: HashMap<u64, Vec<Subscription>>,
    next_sub: u64,
}

/// Registry of push subscriptions plus the published-pair baseline.
#[derive(Default)]
pub(crate) struct SubHub {
    inner: Mutex<HubInner>,
}

/// Translate a dense-index pair map into external-id pair summaries.
/// Pairs whose indices fall outside `ids` (stale beyond repair) are
/// skipped rather than published under a wrong identity.
fn pair_summaries(pairs: &PairMap, ids: &[u64]) -> HashMap<(u64, u64), PairInfo> {
    let mut out = HashMap::with_capacity(pairs.len());
    for (&(lo, hi), conjunctions) in pairs {
        if conjunctions.is_empty() {
            continue;
        }
        let (Some(&a), Some(&b)) = (ids.get(lo as usize), ids.get(hi as usize)) else {
            continue;
        };
        let key = if a <= b { (a, b) } else { (b, a) };
        let mut best = &conjunctions[0];
        for c in &conjunctions[1..] {
            if c.pca_km < best.pca_km {
                best = c;
            }
        }
        out.insert(
            key,
            PairInfo {
                tca: best.tca,
                pca_km: best.pca_km,
                count: conjunctions.len(),
            },
        );
    }
    out
}

impl SubHub {
    pub(crate) fn new() -> SubHub {
        SubHub::default()
    }

    /// Register a subscription for `conn`. The ack's `sub_id` is the
    /// request's `req_id` when one was supplied, else a generated name.
    pub(crate) fn subscribe(
        &self,
        conn: u64,
        req_id: Option<&str>,
        assets: &[u64],
        all: bool,
    ) -> Result<SubscriptionAck, String> {
        if !all && assets.is_empty() {
            return Err("SUBSCRIBE needs an asset list or \"all\": true".to_string());
        }
        let mut inner = self.inner.lock();
        let sub_id = match req_id {
            Some(id) => id.to_string(),
            None => {
                inner.next_sub += 1;
                format!("sub-{}", inner.next_sub)
            }
        };
        let subs = inner.subs.entry(conn).or_default();
        if subs.iter().any(|s| s.sub_id == sub_id) {
            return Err(format!(
                "subscription \"{sub_id}\" is already active on this connection"
            ));
        }
        let filter = if all {
            Filter::All
        } else {
            Filter::Assets(assets.iter().copied().collect())
        };
        let tracked = match &filter {
            Filter::All => 0,
            Filter::Assets(set) => set.len(),
        };
        subs.push(Subscription {
            sub_id: sub_id.clone(),
            all,
            filter,
        });
        let active = subs.len();
        Ok(SubscriptionAck {
            sub_id,
            all,
            assets: tracked,
            active,
        })
    }

    /// Drop one subscription by id, or every subscription on the
    /// connection when `sub_id` is `None`.
    pub(crate) fn unsubscribe(
        &self,
        conn: u64,
        sub_id: Option<&str>,
    ) -> Result<SubscriptionAck, String> {
        let mut inner = self.inner.lock();
        let Some(subs) = inner.subs.get_mut(&conn) else {
            return Err("no subscriptions are active on this connection".to_string());
        };
        match sub_id {
            None => {
                inner.subs.remove(&conn);
                Ok(SubscriptionAck {
                    sub_id: "all".to_string(),
                    all: false,
                    assets: 0,
                    active: 0,
                })
            }
            Some(id) => {
                let Some(pos) = subs.iter().position(|s| s.sub_id == id) else {
                    return Err(format!("no subscription \"{id}\" on this connection"));
                };
                let removed = subs.remove(pos);
                let tracked = match &removed.filter {
                    Filter::All => 0,
                    Filter::Assets(set) => set.len(),
                };
                let active = subs.len();
                if subs.is_empty() {
                    inner.subs.remove(&conn);
                }
                Ok(SubscriptionAck {
                    sub_id: removed.sub_id,
                    all: removed.all,
                    assets: tracked,
                    active,
                })
            }
        }
    }

    /// Tear down every subscription a disconnecting client held.
    pub(crate) fn drop_conn(&self, conn: u64) {
        self.inner.lock().subs.remove(&conn);
    }

    /// Total active subscriptions across all connections.
    pub(crate) fn active(&self) -> usize {
        self.inner.lock().subs.values().map(Vec::len).sum()
    }

    /// Whether a connection holds any subscription (subscribers are
    /// exempt from the idle-read reap).
    pub(crate) fn has_subs(&self, conn: u64) -> bool {
        self.inner.lock().subs.contains_key(&conn)
    }

    /// Set the baseline without emitting events — used after recovery so
    /// a restarted daemon's first screen doesn't replay every
    /// pre-existing pair as `new`.
    pub(crate) fn prime(&self, pairs: &PairMap, ids: &[u64]) {
        self.inner.lock().published = pair_summaries(pairs, ids);
    }

    /// Diff `pairs` against the published baseline, advance the baseline,
    /// and return one serialized push line per (matching subscription ×
    /// event). The baseline advances even with zero subscribers so a
    /// late subscriber only sees deltas from that point on — and so
    /// repeated degraded screens don't re-announce the same pairs.
    pub(crate) fn publish(
        &self,
        pairs: &PairMap,
        ids: &[u64],
        epoch: u64,
        ephemeral: bool,
    ) -> Vec<IoMsg> {
        let fresh = pair_summaries(pairs, ids);
        let mut inner = self.inner.lock();
        let mut events: Vec<(EventKind, (u64, u64), PairInfo)> = Vec::new();
        if inner.subs.values().any(|subs| !subs.is_empty()) {
            for (key, info) in &fresh {
                match inner.published.get(key) {
                    None => events.push((EventKind::New, *key, *info)),
                    Some(old) if old != info => events.push((EventKind::Updated, *key, *info)),
                    Some(_) => {}
                }
            }
            for (key, old) in &inner.published {
                if !fresh.contains_key(key) {
                    events.push((EventKind::Retired, *key, PairInfo { count: 0, ..*old }));
                }
            }
            events.sort_by_key(|(_, key, _)| *key);
        }
        inner.published = fresh;
        if events.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (&conn, subs) in &inner.subs {
            for sub in subs {
                for (kind, (lo, hi), info) in &events {
                    if !sub.filter.matches(*lo, *hi) {
                        continue;
                    }
                    let event = PushEvent {
                        push: PUSH_CONJUNCTION.to_string(),
                        sub_id: sub.sub_id.clone(),
                        kind: *kind,
                        id_lo: *lo,
                        id_hi: *hi,
                        tca: info.tca,
                        pca_km: info.pca_km,
                        conjunctions: info.count,
                        epoch,
                        ephemeral,
                    };
                    if let Ok(line) = serde_json::to_string(&event) {
                        out.push(IoMsg::Push { conn, line });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kessler_core::Conjunction;

    fn conj(lo: u32, hi: u32, tca: f64, pca_km: f64) -> Conjunction {
        Conjunction {
            id_lo: lo,
            id_hi: hi,
            tca,
            pca_km,
        }
    }

    fn pairs(entries: &[(u32, u32, f64, f64)]) -> PairMap {
        let mut map = PairMap::new();
        for &(lo, hi, tca, pca) in entries {
            map.entry((lo, hi))
                .or_default()
                .push(conj(lo, hi, tca, pca));
        }
        map
    }

    fn decode(msgs: &[IoMsg]) -> Vec<(u64, PushEvent)> {
        msgs.iter()
            .map(|msg| match msg {
                IoMsg::Push { conn, line } => (*conn, serde_json::from_str(line).unwrap()),
                IoMsg::Respond { .. } => panic!("publish only emits pushes"),
            })
            .collect()
    }

    #[test]
    fn diff_emits_new_updated_retired_in_external_ids() {
        let hub = SubHub::new();
        let ids = [100_u64, 200, 300];
        hub.subscribe(7, None, &[], true).unwrap();

        let first = hub.publish(
            &pairs(&[(0, 1, 5.0, 1.0), (1, 2, 6.0, 2.0)]),
            &ids,
            3,
            false,
        );
        let mut got = decode(&first);
        got.sort_by_key(|(_, e)| (e.id_lo, e.id_hi));
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|(conn, e)| {
            *conn == 7 && e.kind == EventKind::New && e.epoch == 3 && !e.ephemeral
        }));
        assert_eq!((got[0].1.id_lo, got[0].1.id_hi), (100, 200));
        assert_eq!((got[1].1.id_lo, got[1].1.id_hi), (200, 300));

        // Pair (0,1) tightens, (1,2) vanishes, (0,2) appears.
        let second = hub.publish(
            &pairs(&[(0, 1, 5.0, 0.5), (0, 2, 9.0, 4.0)]),
            &ids,
            4,
            false,
        );
        let mut got = decode(&second);
        got.sort_by_key(|(_, e)| (e.id_lo, e.id_hi));
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].1.kind, EventKind::Updated);
        assert_eq!((got[0].1.id_lo, got[0].1.id_hi), (100, 200));
        assert_eq!(got[0].1.pca_km, 0.5);
        assert_eq!(got[1].1.kind, EventKind::New);
        assert_eq!((got[1].1.id_lo, got[1].1.id_hi), (100, 300));
        assert_eq!(got[2].1.kind, EventKind::Retired);
        assert_eq!((got[2].1.id_lo, got[2].1.id_hi), (200, 300));
        assert_eq!(got[2].1.conjunctions, 0);

        // Identical set again: nothing fires.
        assert!(hub
            .publish(
                &pairs(&[(0, 1, 5.0, 0.5), (0, 2, 9.0, 4.0)]),
                &ids,
                5,
                false
            )
            .is_empty());
    }

    #[test]
    fn asset_filters_select_and_priming_suppresses_replay() {
        let hub = SubHub::new();
        let ids = [10_u64, 20, 30];
        hub.prime(&pairs(&[(0, 1, 1.0, 1.0)]), &ids);

        let ack = hub.subscribe(1, Some("watch-30"), &[30], false).unwrap();
        assert_eq!(ack.sub_id, "watch-30");
        assert_eq!(ack.assets, 1);

        // (0,1) was primed — only the new pair involving asset 30 pushes.
        let msgs = hub.publish(&pairs(&[(0, 1, 1.0, 1.0), (1, 2, 2.0, 0.2)]), &ids, 9, true);
        let got = decode(&msgs);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].1.id_lo, got[0].1.id_hi), (20, 30));
        assert_eq!(got[0].1.kind, EventKind::New);
        assert!(got[0].1.ephemeral);

        // Retirement of an unwatched pair stays filtered out.
        let msgs = hub.publish(&pairs(&[(1, 2, 2.0, 0.2)]), &ids, 10, false);
        assert!(decode(&msgs).is_empty());
    }

    #[test]
    fn subscribe_validates_and_unsubscribe_tears_down() {
        let hub = SubHub::new();
        assert!(hub.subscribe(1, None, &[], false).is_err());
        assert!(hub.unsubscribe(1, None).is_err());

        let a = hub.subscribe(1, None, &[5], false).unwrap();
        let b = hub.subscribe(1, None, &[], true).unwrap();
        assert_ne!(a.sub_id, b.sub_id);
        assert_eq!(b.active, 2);
        assert_eq!(hub.active(), 2);
        assert!(hub.has_subs(1));

        // Duplicate explicit id on the same connection is rejected.
        hub.subscribe(1, Some("dup"), &[], true).unwrap();
        assert!(hub.subscribe(1, Some("dup"), &[], true).is_err());
        // ...but is fine on another connection.
        hub.subscribe(2, Some("dup"), &[], true).unwrap();

        let gone = hub.unsubscribe(1, Some(&a.sub_id)).unwrap();
        assert_eq!(gone.sub_id, a.sub_id);
        assert!(hub.unsubscribe(1, Some("missing")).is_err());
        let all = hub.unsubscribe(1, None).unwrap();
        assert_eq!(all.active, 0);
        assert!(!hub.has_subs(1));
        assert_eq!(hub.active(), 1);

        hub.drop_conn(2);
        assert_eq!(hub.active(), 0);
    }

    #[test]
    fn baseline_advances_without_subscribers() {
        let hub = SubHub::new();
        let ids = [1_u64, 2];
        assert!(hub
            .publish(&pairs(&[(0, 1, 1.0, 1.0)]), &ids, 1, false)
            .is_empty());
        hub.subscribe(3, None, &[], true).unwrap();
        // The pair predates the subscription, so an unchanged set is quiet.
        assert!(hub
            .publish(&pairs(&[(0, 1, 1.0, 1.0)]), &ids, 2, false)
            .is_empty());
    }
}
