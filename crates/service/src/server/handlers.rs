//! The daemon's request-handling core: the [`Shared`] hub the I/O event
//! loop, workers, and probes all hang off; the WAL-before-apply gate;
//! the inline mutation path; the screening enqueue/commit path; the
//! [`IoHub`] queue that carries worker completions and subscription
//! pushes back to the event loop; and the supervised worker pool.

use super::degraded::Health;
use super::subs::SubHub;
use super::ServiceState;
use crate::error::ServiceError;
use crate::exec::{run_screen_job, CancelRegistry, ScreenJob, ScreenKind, ScreenOutput};
use crate::fault::FaultPlan;
use crate::metrics::MetricsRegistry;
use crate::persist::Persister;
use crate::proto::{Request, Response, ScreenSummary};
use crossbeam::channel::{Receiver, Sender, TrySendError};
use kessler_core::CancelToken;
use parking_lot::Mutex;
use std::io::Write;
use std::net::SocketAddr;
use std::os::unix::net::UnixStream;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// A screening request captured for the worker pool: the immutable job,
/// the connection owed the response, and the cancellation bookkeeping.
pub(crate) struct ScreenTask {
    pub(crate) request: Request,
    pub(crate) job: ScreenJob,
    /// Event-loop connection id the response is owed to.
    pub(crate) conn: u64,
    pub(crate) req_id: Option<String>,
    pub(crate) token: CancelToken,
    pub(crate) seq: u64,
}

/// Work the event loop hands to the screening workers.
pub(crate) enum Job {
    Screen(Box<ScreenTask>),
    Stop,
}

/// Messages other threads hand to the I/O event loop.
pub(crate) enum IoMsg {
    /// A serialized response owed to connection `conn`; always delivered
    /// unless the consumer is hopelessly behind (then it's disconnected).
    Respond { conn: u64, line: String },
    /// A serialized push event for `conn`; shed past the write-buffer
    /// high-water mark rather than buffered without bound.
    Push { conn: u64, line: String },
}

/// The queue into the event loop plus the pipe that wakes its poll.
/// Lock order: after `subs`, before `metrics`.
pub(crate) struct IoHub {
    queue: Mutex<Vec<IoMsg>>,
    wake: UnixStream,
}

impl IoHub {
    pub(crate) fn new(wake: UnixStream) -> IoHub {
        IoHub {
            queue: Mutex::new(Vec::new()),
            wake,
        }
    }

    /// Serialize and enqueue a worker's response for `conn`.
    pub(crate) fn respond(&self, conn: u64, response: &Response) {
        let line = serde_json::to_string(response).unwrap_or_else(|_| {
            r#"{"ok":false,"error":"response serialization failed"}"#.to_string()
        });
        self.queue.lock().push(IoMsg::Respond { conn, line });
        self.wake();
    }

    /// Enqueue a batch of push events (no-op when empty).
    pub(crate) fn push_events(&self, msgs: Vec<IoMsg>) {
        if msgs.is_empty() {
            return;
        }
        self.queue.lock().extend(msgs);
        self.wake();
    }

    /// Take everything queued — the event loop's side.
    pub(crate) fn drain(&self) -> Vec<IoMsg> {
        std::mem::take(&mut *self.queue.lock())
    }

    /// Nudge the poll loop. A full (would-block) pipe is fine: a wake is
    /// already pending, which is all a wake byte means.
    fn wake(&self) {
        let _ = (&self.wake).write(&[1]);
    }
}

pub(crate) struct Shared {
    pub(crate) state: Mutex<ServiceState>,
    pub(crate) persist: Option<Mutex<Persister>>,
    /// Operating mode (normal/degraded); see [`Health`] for lock order.
    pub(crate) health: Health,
    /// Rolling observability counters/histograms. Lock order: always last
    /// (after `state`, `persist`, `health`, `subs`, and the io queue) —
    /// the METRICS fast path takes only this.
    pub(crate) metrics: Mutex<MetricsRegistry>,
    /// Live screening jobs' cancel tokens, keyed by req_id for CANCEL.
    pub(crate) registry: CancelRegistry,
    /// Subscription registry + published-pair baseline for push fan-out.
    pub(crate) subs: SubHub,
    /// Worker completions and pushes bound for the event loop.
    pub(crate) io: IoHub,
    pub(crate) shutdown: AtomicBool,
    pub(crate) jobs: Sender<Job>,
    pub(crate) addr: SocketAddr,
    pub(crate) faults: Arc<FaultPlan>,
    pub(crate) read_timeout: Option<Duration>,
    pub(crate) max_line_bytes: usize,
    /// Per-connection write-buffer high-water mark (bytes): pushes are
    /// shed above it, and responses disconnect the consumer at the mark
    /// plus two max-size lines.
    pub(crate) write_highwater: usize,
}

impl Shared {
    pub(crate) fn is_degraded(&self) -> bool {
        self.health.inner.lock().degraded
    }

    pub(crate) fn mode_label(&self) -> &'static str {
        if self.is_degraded() {
            "degraded"
        } else {
            "normal"
        }
    }

    pub(crate) fn degraded_reason(&self) -> String {
        self.health.inner.lock().reason.clone()
    }

    /// Flip into degraded (read-only) mode and wake the probe thread.
    /// Idempotent: re-entering while already degraded changes nothing.
    pub(crate) fn enter_degraded(&self, reason: &str) {
        let mut health = self.health.inner.lock();
        if health.degraded {
            return;
        }
        health.degraded = true;
        health.reason = reason.to_string();
        drop(health);
        self.health.probe_wake.notify_all();
        self.metrics.lock().note_degraded_entry();
        eprintln!(
            "kessler-service: entering degraded (read-only) mode, mutations rejected: {reason}"
        );
    }

    /// Return to normal mode (the probe calls this after a successful
    /// emergency snapshot).
    pub(crate) fn exit_degraded(&self) {
        let mut health = self.health.inner.lock();
        if !health.degraded {
            return;
        }
        health.degraded = false;
        health.reason.clear();
        drop(health);
        self.metrics.lock().note_degraded_recovery();
        eprintln!("kessler-service: persistence recovered; back to normal mode");
    }
}

/// WAL-before-apply gate: log the mutation *before* it touches in-memory
/// state. Returns `None` when the caller may proceed with the apply (the
/// record is durable, or the daemon is ephemeral), or `Some(rejection)`
/// when the mutation must not happen — either the daemon is already
/// degraded, or this append just failed (which flips it into degraded
/// mode). Because nothing was applied yet, a rejection leaves state
/// byte-identical to never having seen the request: `not_applied` in the
/// rejection is a hard guarantee, and the client may retry safely.
///
/// Callers own the metrics `count_request` for the rejection; this
/// function only touches the failure counters, so the ephemeral-screen
/// path can reuse it without double-counting.
pub(crate) fn ensure_logged(shared: &Shared, request: &Request) -> Option<Response> {
    let persist = shared.persist.as_ref()?;
    if shared.is_degraded() {
        let reason = shared.degraded_reason();
        return Some(Response::rejected(
            ServiceError::Degraded { reason }.to_string(),
        ));
    }
    let mut persister = persist.lock();
    let append_started = Instant::now();
    match persister.append(request) {
        Ok(()) => {
            drop(persister);
            shared
                .metrics
                .lock()
                .record_wal_fsync(append_started.elapsed());
            None
        }
        Err(err) => {
            drop(persister);
            shared.metrics.lock().note_wal_append_failure();
            shared.enter_degraded(&format!("wal append failed: {err}"));
            Some(Response::rejected(format!(
                "not applied: wal append failed: {err}"
            )))
        }
    }
}

/// Metrics + snapshot tail shared by the inline path and the worker
/// commit path. `logged` says whether [`ensure_logged`] wrote a WAL
/// record for this request; `adopted` (computed here) says whether the
/// apply actually changed the maintained set. The two disagree only when
/// a precheck drifted from the real apply — then the logged record is a
/// phantom and an emergency snapshot covering current state supersedes
/// it (degrading if even that fails). Stale and ephemeral screen results
/// are never adopted: they did not change the maintained set, and WAL
/// order must match commit order.
pub(crate) fn finish_record(
    shared: &Shared,
    request: &Request,
    state: &mut ServiceState,
    mut response: Response,
    logged: bool,
) -> Response {
    let adopted = response.ok
        && request.is_mutation()
        && !response
            .screen
            .as_ref()
            .is_some_and(|s| s.stale || s.ephemeral);
    if let Some(persist) = &shared.persist {
        if logged && !adopted {
            // Precheck drift: a record is on disk for a mutation that did
            // not stick. Replaying it on restart would diverge, so pin a
            // snapshot at (or past) its seq — replay then starts after it.
            let mut persister = persist.lock();
            let snapshot = state.snapshot(persister.last_seq());
            match persister.write_snapshot(&snapshot) {
                Ok(_) => {
                    drop(persister);
                    state.note_snapshot_written();
                }
                Err(err) => {
                    drop(persister);
                    shared.metrics.lock().note_snapshot_failure();
                    shared.enter_degraded(&format!(
                        "logged-but-unapplied record could not be covered by a snapshot: {err}"
                    ));
                }
            }
        } else if adopted && !shared.is_degraded() {
            let mut persister = persist.lock();
            if persister.should_snapshot() {
                let snapshot = state.snapshot(persister.last_seq());
                let snapshot_started = Instant::now();
                match persister.write_snapshot(&snapshot) {
                    Ok(bytes) => {
                        drop(persister);
                        let dirtied = snapshot.dirty_shards.as_ref().map(|d| d.len());
                        state.note_snapshot_written();
                        let mut metrics = shared.metrics.lock();
                        metrics.record_snapshot(snapshot_started.elapsed(), bytes);
                        if let Some(dirtied) = dirtied {
                            metrics.record_dirty_shards(dirtied);
                        }
                    }
                    Err(err) => {
                        let wal_bytes = persister.wal_size();
                        drop(persister);
                        shared.metrics.lock().note_snapshot_failure();
                        eprintln!(
                            "kessler-service: snapshot failed (wal still intact at {wal_bytes} \
                             bytes, compaction starved; retrying on the next mutation): {err}"
                        );
                    }
                }
            }
        }
    }
    if adopted && (response.screen.is_some() || response.advance.is_some()) {
        // An adopted commit changed the maintained pair set: fan delta
        // events out to subscribers now, while the state lock still
        // guarantees the dense→external id translation matches the set.
        // (subs and the io queue sit before metrics in the lock order.)
        let epoch = response
            .screen
            .as_ref()
            .map(|s| s.epoch)
            .unwrap_or_else(|| state.catalog().epoch());
        let pairs = state.engine.warm_pairs();
        let msgs = shared
            .subs
            .publish(&pairs, state.catalog().ids(), epoch, false);
        shared.io.push_events(msgs);
    }
    // Mode is read before the metrics lock: health sits *before* metrics
    // in the lock order.
    let mode = shared.mode_label();
    let mut metrics = shared.metrics.lock();
    metrics.count_request(request.kind(), response.ok);
    if response.ok {
        if let Some(screen) = &response.screen {
            metrics.record_screen(&screen.variant, &screen.timings);
            if let Some(stats) = &screen.filter_stats {
                metrics.record_filter_chain(stats);
            }
        }
        if response.advance.is_some() {
            // ADVANCE's reply has no timings; the tail screen it ran left
            // them (and, under hybrid, its filter stats) on the engine.
            metrics.record_advance_tail(state.engine.last_timings());
            if let Some(stats) = state.engine.last_filter_stats() {
                metrics.record_filter_chain(&stats);
            }
        }
    }
    if let Some(status) = &mut response.status {
        status.metrics = Some(metrics.one_line());
        status.mode = mode.to_string();
    }
    response
}

/// Execute a non-screening request inline: WAL-before-apply gate, state
/// mutation under the lock, then the shared metrics tail. METRICS
/// short-circuits without ever touching the state lock.
pub(crate) fn handle_and_persist(shared: &Shared, request: &Request) -> Response {
    if matches!(request, Request::Metrics) {
        // Served entirely at this layer: never touches the state lock,
        // never enters the WAL. The subscriber gauge is read before the
        // metrics lock (subs sits earlier in the lock order).
        let subscribers = shared.subs.active();
        let mut metrics = shared.metrics.lock();
        metrics.count_request(request.kind(), true);
        let mut snapshot = metrics.snapshot();
        snapshot.subscribers = subscribers;
        return Response::with_metrics(snapshot);
    }
    let state = &mut *shared.state.lock();
    let mut logged = false;
    if request.is_mutation() && state.mutation_would_apply(request) {
        if let Some(rejection) = ensure_logged(shared, request) {
            shared.metrics.lock().count_request(request.kind(), false);
            return rejection;
        }
        logged = true;
    }
    let response = state.handle(request);
    finish_record(shared, request, state, response, logged)
}

/// Outcome of handing a screening verb to the worker pool.
pub(crate) enum Enqueued {
    /// Queued: the response reaches the connection later through the io
    /// queue, tagged with the task's `req_id`.
    Queued,
    /// Settled immediately (validation error, degraded, busy, shutdown).
    /// Boxed: a [`Response`] is two orders of magnitude bigger than the
    /// empty `Queued` arm this enum usually is.
    Done(Box<Response>),
}

impl Enqueued {
    fn done(response: Response) -> Enqueued {
        Enqueued::Done(Box::new(response))
    }
}

/// Register, capture, and enqueue one screening request without blocking:
/// the worker answers through the io queue. The snapshot is captured *at
/// enqueue time*, so the job screens the catalog as the client saw it,
/// whatever lands in between.
pub(crate) fn enqueue_screen(
    shared: &Shared,
    request: Request,
    req_id: Option<String>,
    conn: u64,
) -> Enqueued {
    let kind = match &request {
        Request::Screen => ScreenKind::Full,
        Request::Delta => ScreenKind::Delta,
        Request::Advance { dt } => {
            if !dt.is_finite() || *dt <= 0.0 {
                shared.metrics.lock().count_request(request.kind(), false);
                return Enqueued::done(Response::error(format!(
                    "advance dt must be positive and finite, got {dt}"
                )));
            }
            if shared.is_degraded() {
                // ADVANCE only means anything if it mutates the catalog, so
                // there is no ephemeral fallback — reject before burning a
                // worker on a propagation that could never commit.
                shared.metrics.lock().count_request(request.kind(), false);
                let reason = shared.degraded_reason();
                return Enqueued::done(Response::rejected(
                    ServiceError::Degraded { reason }.to_string(),
                ));
            }
            ScreenKind::Advance { dt: *dt }
        }
        _ => unreachable!("only screening verbs are enqueued"),
    };
    let (seq, token) = match shared.registry.register(req_id.as_deref()) {
        Ok(registered) => registered,
        Err(err) => {
            shared.metrics.lock().count_request(request.kind(), false);
            return Enqueued::done(Response::error(err.to_string()));
        }
    };
    let capture_started = Instant::now();
    let job = shared.state.lock().capture_screen_job(kind);
    shared
        .metrics
        .lock()
        .record_snapshot_build(capture_started.elapsed());
    let task = ScreenTask {
        request,
        job,
        conn,
        req_id,
        token,
        seq,
    };
    match shared.jobs.try_send(Job::Screen(Box::new(task))) {
        Ok(()) => {
            // The enqueue itself proves a depth of ≥ 1 even if a worker
            // drains it instantly.
            shared
                .metrics
                .lock()
                .note_queue_depth(shared.jobs.len().max(1));
            Enqueued::Queued
        }
        Err(TrySendError::Full(_)) => {
            shared.registry.unregister(seq);
            Enqueued::done(Response::rejected(
                "server busy: screening queue is full, retry later",
            ))
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.registry.unregister(seq);
            Enqueued::done(Response::rejected("server is shutting down"))
        }
    }
}

/// Commit one finished screening job with the same WAL-before-apply
/// discipline as the inline path. The adoption decision is made under the
/// state lock *before* logging, with exactly the test
/// [`ServiceState::commit_screen_job`] will apply, so a logged record
/// always corresponds to a real commit. When the record cannot be logged,
/// full/delta screens are still answered from the completed computation —
/// marked `ephemeral` and *not* adopted, so the served result never
/// diverges from the replayable history — while ADVANCE (which must
/// mutate the catalog to mean anything) is rejected outright.
pub(crate) fn commit_with_wal(
    shared: &Shared,
    request: &Request,
    state: &mut ServiceState,
    job: &ScreenJob,
    output: ScreenOutput,
) -> Response {
    let adopts = match &output {
        ScreenOutput::Screen { .. } => job.epoch() >= state.warm_epoch,
        ScreenOutput::Advance { .. } => state.catalog().epoch() == job.epoch(),
    };
    let mut logged = false;
    if adopts {
        if let Some(rejection) = ensure_logged(shared, request) {
            return match output {
                ScreenOutput::Screen { report, pairs, .. } => {
                    let mut summary = ScreenSummary::from_report(&report);
                    summary.epoch = job.epoch();
                    summary.ephemeral = true;
                    // Ephemeral results are served but never adopted; push
                    // them to subscribers too, tagged, as long as the
                    // dense→external translation is still exact (degraded
                    // mode rejects mutations, so the epoch normally holds).
                    if state.catalog().epoch() == job.epoch() {
                        let msgs =
                            shared
                                .subs
                                .publish(&pairs, state.catalog().ids(), job.epoch(), true);
                        shared.io.push_events(msgs);
                    }
                    finish_record(
                        shared,
                        request,
                        state,
                        Response::with_screen(summary),
                        false,
                    )
                }
                ScreenOutput::Advance { .. } => {
                    shared.metrics.lock().count_request(request.kind(), false);
                    rejection
                }
            };
        }
        logged = true;
    }
    // Sharded screens carry per-shard extraction stats; fold them into the
    // registry before the commit consumes the output. Recorded even for
    // stale results — the extraction work happened either way.
    if let ScreenOutput::Screen {
        shards: Some(stats),
        report,
        ..
    } = &output
    {
        let is_delta = report.variant == crate::delta::DELTA_VARIANT
            || report.variant == crate::delta::HYBRID_DELTA_VARIANT;
        shared.metrics.lock().record_shard_screen(is_delta, stats);
    }
    let response = state.commit_screen_job(job, output);
    finish_record(shared, request, state, response, logged)
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Owed-response guard: exactly one response reaches the client's
/// connection per dequeued task, even if the worker thread dies mid-job
/// (fault injection, un-caught panic) — the drop handler then answers
/// with the same "worker unavailable" error the old blocking reply
/// channel produced when its sender was dropped.
struct Reply<'a> {
    shared: &'a Shared,
    conn: u64,
    req_id: Option<String>,
    sent: bool,
}

impl Reply<'_> {
    fn send(mut self, mut response: Response) {
        response.req_id = self.req_id.take();
        self.shared.io.respond(self.conn, &response);
        self.sent = true;
    }
}

impl Drop for Reply<'_> {
    fn drop(&mut self) {
        if !self.sent {
            let mut response = Response::error("screening worker unavailable, retry");
            response.req_id = self.req_id.take();
            self.shared.io.respond(self.conn, &response);
        }
    }
}

/// One screening worker: drains jobs, runs each against its captured
/// snapshot (lock-free), commits the result under the state lock, and
/// isolates panics inside `catch_unwind` so a panicking screen answers
/// that one request with an ERROR instead of killing the thread.
pub(crate) fn worker_loop(shared: &Shared, jobs: &Receiver<Job>, worker: &str) {
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Screen(task) => {
                let ScreenTask {
                    request,
                    job,
                    conn,
                    req_id,
                    token,
                    seq,
                } = *task;
                let reply = Reply {
                    shared,
                    conn,
                    req_id,
                    sent: false,
                };
                if shared.faults.take_kill_worker() {
                    // Outside the guard: the thread dies and the supervisor
                    // must respawn it. Unregister first so the req_id is
                    // not blocked forever; `reply` unwinds into the
                    // "unavailable" answer.
                    shared.registry.unregister(seq);
                    panic!("fault injection: kill worker");
                }
                if token.is_cancelled() {
                    // Cancelled while still queued: never ran.
                    shared.registry.unregister(seq);
                    let mut metrics = shared.metrics.lock();
                    metrics.note_cancelled();
                    metrics.count_request(request.kind(), false);
                    drop(metrics);
                    reply.send(Response::error("cancelled while queued"));
                    continue;
                }
                let started = Instant::now();
                let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                    if shared.faults.take_panic_screen() {
                        panic!("fault injection: screening panic");
                    }
                    run_screen_job(&job, Some(&token))
                }));
                let response = match outcome {
                    Ok(Ok(output)) => {
                        let state = &mut *shared.state.lock();
                        commit_with_wal(shared, &request, state, &job, output)
                    }
                    Ok(Err(_cancelled)) => {
                        let mut metrics = shared.metrics.lock();
                        metrics.note_cancelled();
                        metrics.count_request(request.kind(), false);
                        Response::error("cancelled mid-screen at a phase boundary")
                    }
                    Err(payload) => {
                        Response::error(format!("screening panicked: {}", panic_message(&*payload)))
                    }
                };
                shared
                    .metrics
                    .lock()
                    .record_worker_job(worker, started.elapsed());
                shared.registry.unregister(seq);
                reply.send(response);
            }
            Job::Stop => break,
        }
    }
}

/// Spawn worker `index` under a supervisor that respawns it if it ever
/// dies from an un-caught panic (graceful `Job::Stop` exits both).
pub(crate) fn spawn_supervised_worker(
    shared: Arc<Shared>,
    jobs: Receiver<Job>,
    index: usize,
) -> Result<JoinHandle<()>, ServiceError> {
    thread::Builder::new()
        .name(format!("kessler-screen-supervisor-{index}"))
        .spawn(move || loop {
            let worker_shared = Arc::clone(&shared);
            let worker_jobs = jobs.clone();
            let worker = match thread::Builder::new()
                .name(format!("kessler-screen-{index}"))
                .spawn(move || {
                    worker_loop(&worker_shared, &worker_jobs, &format!("worker-{index}"))
                }) {
                Ok(handle) => handle,
                Err(err) => {
                    eprintln!("kessler-service: could not respawn screening worker: {err}");
                    return;
                }
            };
            match worker.join() {
                Ok(()) => return,
                Err(_) if shared.shutdown.load(Ordering::SeqCst) => return,
                Err(_) => {
                    shared.metrics.lock().note_respawn();
                    eprintln!("kessler-service: screening worker died; respawning");
                }
            }
        })
        .map_err(|e| ServiceError::Spawn {
            what: "screening supervisor",
            source: e,
        })
}

/// Periodically log the one-line metrics digest to stderr. Sleeps in
/// short steps so the thread notices shutdown within ~250 ms instead of
/// lingering a full interval; failure to spawn just disables the log. The
/// handle is joined at shutdown so the daemon exits with no stray threads.
pub(crate) fn spawn_metrics_reporter(
    shared: Arc<Shared>,
    every: Duration,
) -> Option<JoinHandle<()>> {
    let spawned = thread::Builder::new()
        .name("kessler-metrics".into())
        .spawn(move || {
            let step = Duration::from_millis(250).min(every);
            let mut elapsed = Duration::ZERO;
            loop {
                thread::sleep(step);
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                elapsed += step;
                if elapsed >= every {
                    elapsed = Duration::ZERO;
                    eprintln!(
                        "kessler-service metrics: {}",
                        shared.metrics.lock().one_line()
                    );
                }
            }
        });
    match spawned {
        Ok(handle) => Some(handle),
        Err(err) => {
            eprintln!("kessler-service: could not spawn metrics reporter: {err}");
            None
        }
    }
}
