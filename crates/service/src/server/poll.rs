//! Minimal poll(2) binding for the evented connection front end.
//!
//! The workspace deliberately carries no async runtime and no `libc`
//! crate; on every unix target the C library is linked anyway, so a
//! one-line `extern "C"` declaration is all the event loop needs. The
//! struct layout and constants are fixed by POSIX.

use std::ffi::{c_int, c_ulong};
use std::io;
use std::os::fd::RawFd;

pub(crate) const POLLIN: i16 = 0x001;
pub(crate) const POLLOUT: i16 = 0x004;
pub(crate) const POLLERR: i16 = 0x008;
pub(crate) const POLLHUP: i16 = 0x010;
pub(crate) const POLLNVAL: i16 = 0x020;

/// `struct pollfd` from poll(2).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollFd {
    pub(crate) fd: RawFd,
    pub(crate) events: i16,
    pub(crate) revents: i16,
}

impl PollFd {
    pub(crate) fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Something to read — or a hangup/error, which a read will surface
    /// as EOF or an io error, so the read path handles all of them.
    pub(crate) fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0
    }
}

// POSIX leaves nfds_t's width to the platform: unsigned long on Linux,
// unsigned int on the BSDs and macOS.
#[cfg(target_os = "linux")]
type NfdsT = c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = std::ffi::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
}

/// Block until an fd in `fds` is ready or `timeout_ms` elapses (`-1` =
/// forever). EINTR is retried; the return value is how many fds have
/// nonzero `revents`.
pub(crate) fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poll_reports_readiness_and_timeouts() {
        let (a, b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        // Nothing written yet: a zero-timeout poll reports nothing ready.
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].readable());

        (&b).write_all(&[1]).unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());

        // A socket with buffer space is immediately writable.
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLOUT, 0, "revents {:#x}", fds[0].revents);
    }

    #[test]
    fn hangup_counts_as_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable(), "revents {:#x}", fds[0].revents);
    }
}
