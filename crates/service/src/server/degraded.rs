//! Degraded (read-only) mode: the health flag, the jittered-backoff
//! persistence probe, and the emergency-snapshot recovery attempt that
//! brings the daemon back to normal service.

use super::handlers::Shared;
use crate::error::{PersistError, ServiceError};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Degraded-mode flag plus the condvar that wakes the persistence probe.
/// Lock order: after `state` and `persist`, before `subs`, `io.queue`,
/// and `metrics`. Holders
/// never acquire another lock while holding `inner` (enter/exit drop it
/// before touching metrics), so it cannot participate in a cycle.
pub(crate) struct Health {
    pub(crate) inner: Mutex<HealthInner>,
    /// Signalled on entry into degraded mode; the probe thread waits here.
    pub(crate) probe_wake: Condvar,
}

#[derive(Default)]
pub(crate) struct HealthInner {
    pub(crate) degraded: bool,
    /// The persistence failure that triggered degradation (for rejections
    /// and logs).
    pub(crate) reason: String,
}

/// Sleep in ~50 ms steps, bailing out early at shutdown so the probe
/// never pins the process open through a long backoff interval.
pub(crate) fn sleep_with_shutdown(shared: &Shared, total: Duration) {
    let step = Duration::from_millis(50).min(total);
    let mut slept = Duration::ZERO;
    while slept < total {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        thread::sleep(step);
        slept += step;
    }
}

/// Equal-jitter backoff: half the nominal delay guaranteed, the other
/// half uniformly random, so probes from daemons degraded by the same
/// outage do not hammer the disk in lockstep.
pub(crate) fn jittered(delay: Duration, rng: &mut u64) -> Duration {
    *rng = rng
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let half = delay.as_micros() as u64 / 2;
    Duration::from_micros(half + (*rng >> 33) % (half + 1))
}

/// One recovery attempt: prove the disk accepts writes again, then make
/// every in-memory mutation durable at once with an emergency snapshot.
/// The snapshot covers the full current state at the persister's last
/// seq, so any record the WAL missed while degraded (there are none — but
/// also any phantom logged-not-applied record) is superseded. Lock order:
/// state before persist, matching every other path.
pub(crate) fn attempt_recovery(shared: &Shared) -> Result<(), PersistError> {
    let Some(persist) = &shared.persist else {
        return Ok(());
    };
    let mut state = shared.state.lock();
    let mut persister = persist.lock();
    persister.probe()?;
    let snapshot = state.snapshot(persister.last_seq());
    let started = Instant::now();
    let bytes = persister.write_snapshot(&snapshot)?;
    drop(persister);
    state.note_snapshot_written();
    drop(state);
    shared
        .metrics
        .lock()
        .record_snapshot(started.elapsed(), bytes);
    Ok(())
}

/// The persistence probe: parked on a condvar while the daemon is
/// healthy, and once degraded, re-tries the disk under jittered
/// exponential backoff until an emergency snapshot lands — at which point
/// the daemon leaves degraded mode and the probe parks again.
pub(crate) fn persist_probe_loop(shared: &Shared, initial: Duration, max: Duration) {
    let mut rng = (shared as *const Shared as usize as u64) ^ 0x9e37_79b9_7f4a_7c15;
    loop {
        {
            let mut health = shared.health.inner.lock();
            while !health.degraded {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                shared
                    .health
                    .probe_wake
                    .wait_for(&mut health, Duration::from_millis(250));
            }
        }
        let mut delay = initial.max(Duration::from_millis(1));
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            sleep_with_shutdown(shared, jittered(delay, &mut rng));
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match attempt_recovery(shared) {
                Ok(()) => {
                    shared.exit_degraded();
                    break;
                }
                Err(err) => {
                    shared.metrics.lock().note_probe_failure();
                    eprintln!(
                        "kessler-service: persistence probe failed (retrying in ~{:?}): {err}",
                        (delay * 2).min(max)
                    );
                    delay = (delay * 2).min(max);
                }
            }
        }
    }
}

pub(crate) fn spawn_persist_probe(
    shared: Arc<Shared>,
    initial: Duration,
    max: Duration,
) -> Result<JoinHandle<()>, ServiceError> {
    thread::Builder::new()
        .name("kessler-persist-probe".into())
        .spawn(move || persist_probe_loop(&shared, initial, max))
        .map_err(|e| ServiceError::Spawn {
            what: "persistence probe",
            source: e,
        })
}
