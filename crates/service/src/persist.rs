//! Snapshot + WAL durability layer.
//!
//! State directory layout:
//!
//! ```text
//! <state-dir>/
//!   wal.log                        append-only mutation log (see `wal`)
//!   snapshot-00000000000000000042.json   full state at WAL seq 42
//!   snapshot-00000000000000000038.json   previous snapshot (fallback)
//! ```
//!
//! A snapshot is one checksummed frame line holding the entire daemon
//! state (catalog, pending-change set, window, warm conjunction set,
//! screen counters) as of a WAL sequence number. Snapshots are written to
//! a `.tmp` file, fsynced, then atomically renamed into place, so a crash
//! mid-snapshot leaves the previous one intact.
//!
//! Recovery loads the *newest valid* snapshot — a corrupt newest snapshot
//! falls back to the one before it — then replays WAL records with
//! `seq > snapshot.wal_seq`. To keep that fallback sound, WAL compaction
//! after a snapshot retains every record newer than the *oldest kept*
//! snapshot, not just the newest one.

use crate::error::PersistError;
use crate::fault::FaultPlan;
use crate::proto::{ElementsSpec, LastScreen, Request};
use crate::wal::{self, WalWriter};
use kessler_core::{Conjunction, Variant};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bump when the snapshot schema changes incompatibly.
pub const SNAPSHOT_VERSION: u32 = 1;

/// WAL file name inside the state directory.
pub const WAL_FILE: &str = "wal.log";

/// Where and how often to persist.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// State directory (created if missing).
    pub dir: PathBuf,
    /// Mutations between snapshots (and WAL compactions).
    pub snapshot_every: u64,
    /// Snapshots retained on disk; at least 2 so a corrupt newest
    /// snapshot has a fallback.
    pub keep_snapshots: usize,
}

impl PersistOptions {
    pub fn new(dir: impl Into<PathBuf>) -> PersistOptions {
        PersistOptions {
            dir: dir.into(),
            snapshot_every: 256,
            keep_snapshots: 2,
        }
    }
}

/// Complete daemon state at one WAL sequence number.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    pub version: u32,
    /// WAL records up to and including this sequence number are folded in.
    pub wal_seq: u64,
    /// Catalog epoch.
    pub epoch: u64,
    /// External ids by dense index.
    pub ids: Vec<u64>,
    /// Elements by dense index (wire representation: km / rad).
    pub elements: Vec<ElementsSpec>,
    /// Per-satellite generation counters by dense index.
    pub generations: Vec<u64>,
    /// Dense indices changed since the last screen.
    pub changed: Vec<u32>,
    /// Absolute start of the screening window, s.
    pub window_start: f64,
    /// Population size of the engine's last adopted screen.
    pub screened_n: Option<usize>,
    pub full_screens: u64,
    pub delta_screens: u64,
    /// The warm conjunction set (window-relative TCAs).
    pub conjunctions: Vec<Conjunction>,
    /// Requests served when the snapshot was written, so a recovered
    /// daemon's STATUS does not restart the counter at the replayed tail.
    /// Defaults keep pre-metrics snapshots readable (version stays 1).
    #[serde(default)]
    pub requests_served: u64,
    /// Seconds the catalog has been advanced past its base epoch.
    #[serde(default)]
    pub time: f64,
    /// Epoch-0 elements by dense index; empty in old snapshots (the
    /// catalog then derives them by de-propagating `elements` by `-time`).
    #[serde(default)]
    pub base_elements: Vec<ElementsSpec>,
    /// Variant and timings of the most recent screen, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub last_screen: Option<LastScreen>,
    /// Screening variant the daemon served with when the snapshot was
    /// taken. Snapshots from before the field existed were always grid.
    #[serde(default = "default_snapshot_variant")]
    pub variant: Variant,
}

fn default_snapshot_variant() -> Variant {
    Variant::Grid
}

impl Snapshot {
    fn validate(&self) -> Result<(), PersistError> {
        let corrupt = |detail: String| PersistError::corrupt("snapshot", detail);
        if self.version != SNAPSHOT_VERSION {
            return Err(corrupt(format!(
                "snapshot version {} (this build reads {SNAPSHOT_VERSION})",
                self.version
            )));
        }
        if self.ids.len() != self.elements.len() || self.ids.len() != self.generations.len() {
            return Err(corrupt(format!(
                "inconsistent catalog arrays: {} ids, {} element sets, {} generations",
                self.ids.len(),
                self.elements.len(),
                self.generations.len()
            )));
        }
        if !self.base_elements.is_empty() && self.base_elements.len() != self.ids.len() {
            return Err(corrupt(format!(
                "inconsistent catalog arrays: {} ids, {} base element sets",
                self.ids.len(),
                self.base_elements.len()
            )));
        }
        if !self.time.is_finite() {
            return Err(corrupt(format!("non-finite catalog time {}", self.time)));
        }
        Ok(())
    }
}

/// What [`Persister::open`] recovered from the state directory.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Newest snapshot that passed validation, if any.
    pub snapshot: Option<Snapshot>,
    /// WAL records newer than the snapshot, in order.
    pub tail: Vec<Request>,
    /// `Some(detail)` when the WAL ended in a damaged record (tolerated).
    pub torn_tail: Option<String>,
    /// Snapshot files that failed validation and were skipped.
    pub corrupt_snapshots: usize,
}

/// Owns the state directory: appends WAL records, writes snapshots,
/// rotates and compacts.
#[derive(Debug)]
pub struct Persister {
    dir: PathBuf,
    wal: WalWriter,
    /// Last assigned WAL sequence number.
    seq: u64,
    snapshot_every: u64,
    keep_snapshots: usize,
    since_snapshot: u64,
    /// Sequence numbers of snapshot files on disk, ascending.
    snapshots: Vec<u64>,
    faults: Arc<FaultPlan>,
    /// Set when a failed append could not be rolled back off disk (the
    /// truncate after a failed fsync also failed): the WAL tail may hold
    /// a record for a mutation the caller was told failed. Cleared by the
    /// next successful snapshot, whose compaction rewrites the WAL from
    /// committed records only.
    dirty: bool,
}

impl Persister {
    /// Open (or initialise) a state directory and recover its contents.
    pub fn open(
        options: &PersistOptions,
        faults: Arc<FaultPlan>,
    ) -> Result<(Persister, Recovery), PersistError> {
        let dir = options.dir.clone();
        std::fs::create_dir_all(&dir)
            .map_err(|e| PersistError::io(format!("create state dir {}", dir.display()), e))?;

        let mut listed = list_snapshots(&dir)?;
        let mut recovery = Recovery::default();
        for (seq, path) in listed.iter().rev() {
            match load_snapshot(path) {
                Ok(snapshot) => {
                    debug_assert_eq!(snapshot.wal_seq, *seq);
                    recovery.snapshot = Some(snapshot);
                    break;
                }
                Err(err) => {
                    eprintln!("kessler-service: skipping corrupt snapshot: {err}");
                    recovery.corrupt_snapshots += 1;
                }
            }
        }

        let wal_path = dir.join(WAL_FILE);
        let replay = wal::read_wal(&wal_path)?;
        let base_seq = recovery.snapshot.as_ref().map_or(0, |s| s.wal_seq);
        let mut last_seq = base_seq;
        for (seq, request) in replay.records {
            last_seq = last_seq.max(seq);
            if seq > base_seq {
                recovery.tail.push(request);
            }
        }
        recovery.torn_tail = replay.torn;

        let mut persister = Persister {
            dir,
            wal: WalWriter::open_append_with(&wal_path, Arc::clone(&faults))?,
            seq: last_seq,
            snapshot_every: options.snapshot_every.max(1),
            keep_snapshots: options.keep_snapshots.max(2),
            since_snapshot: recovery.tail.len() as u64,
            snapshots: {
                listed.sort_by_key(|(seq, _)| *seq);
                listed.into_iter().map(|(seq, _)| seq).collect()
            },
            faults,
            dirty: false,
        };
        if recovery.torn_tail.is_some() {
            // Drop the damaged tail bytes now: appending after a partial
            // record would glue new frames onto the torn line and lose
            // them too.
            let keep_after = persister.snapshots.first().copied().unwrap_or(0);
            persister.compact_wal(keep_after)?;
        }
        Ok((persister, recovery))
    }

    /// Last assigned WAL sequence number.
    pub fn last_seq(&self) -> u64 {
        self.seq
    }

    /// Durably append one mutation. The sequence number is committed only
    /// on success: a failed append leaves `last_seq()` unchanged and rolls
    /// any partially written bytes back off the log, so the caller can
    /// treat `Err` as "nothing happened" and reject the request.
    pub fn append(&mut self, request: &Request) -> Result<(), PersistError> {
        if let Some(err) = self.faults.take_wal_append_error() {
            return Err(PersistError::io("append wal record", err));
        }
        let seq = self.seq + 1;
        let pre_len = self.wal.len()?;
        let written = if self.faults.take_torn_wal() {
            self.wal.append_torn(seq, request)
        } else {
            self.wal.append(seq, request)
        };
        match written {
            Ok(()) => {
                self.seq = seq;
                self.since_snapshot += 1;
                Ok(())
            }
            Err(err) => {
                // A failed fsync may still have landed the record's bytes;
                // chop them off so an unacknowledged mutation cannot
                // replay after a crash. If even the truncate fails, flag
                // the log dirty — the next successful snapshot's
                // compaction rewrites it from committed records only.
                if self.wal.truncate_to(pre_len).is_err() {
                    self.dirty = true;
                }
                Err(err)
            }
        }
    }

    /// `true` while a failed append's bytes may still be on disk.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Current WAL size in bytes (0 if unreadable); used when warning
    /// that failed snapshots are starving compaction.
    pub fn wal_size(&self) -> u64 {
        self.wal.len().unwrap_or(0)
    }

    /// Cheap liveness check of the state directory: create, sync, and
    /// remove a probe file. Used by the degraded-mode recovery loop to
    /// decide whether the disk is worth an emergency snapshot attempt.
    pub fn probe(&self) -> Result<(), PersistError> {
        if self.faults.wal_is_broken() {
            return Err(PersistError::io(
                "probe state dir",
                std::io::Error::from_raw_os_error(5),
            ));
        }
        let path = self.dir.join(".probe.tmp");
        let context = || format!("probe {}", path.display());
        let mut file = File::create(&path).map_err(|e| PersistError::io(context(), e))?;
        file.write_all(b"probe")
            .map_err(|e| PersistError::io(context(), e))?;
        file.sync_all()
            .map_err(|e| PersistError::io(context(), e))?;
        drop(file);
        std::fs::remove_file(&path).map_err(|e| PersistError::io(context(), e))
    }

    /// `true` once enough mutations accumulated to warrant a snapshot.
    pub fn should_snapshot(&self) -> bool {
        self.since_snapshot >= self.snapshot_every
    }

    /// Write a snapshot atomically, rotate old ones, compact the WAL.
    /// Returns the snapshot's size on disk in bytes (for metrics).
    pub fn write_snapshot(&mut self, snapshot: &Snapshot) -> Result<u64, PersistError> {
        snapshot.validate()?;
        let seq = snapshot.wal_seq;
        let body = serde_json::to_string(snapshot)
            .map_err(|e| PersistError::corrupt("snapshot", format!("unserializable: {e}")))?;
        let mut line = wal::encode_frame(seq, &body);
        line.push('\n');

        let final_path = self.snapshot_path(seq);
        let tmp_path = self.dir.join(format!("snapshot-{seq:020}.json.tmp"));
        if let Some(err) = self.faults.take_snapshot_write_error() {
            return Err(PersistError::io(
                format!("write {}", tmp_path.display()),
                err,
            ));
        }
        {
            let mut file = File::create(&tmp_path)
                .map_err(|e| PersistError::io(format!("create {}", tmp_path.display()), e))?;
            file.write_all(line.as_bytes())
                .map_err(|e| PersistError::io(format!("write {}", tmp_path.display()), e))?;
            file.sync_all()
                .map_err(|e| PersistError::io(format!("sync {}", tmp_path.display()), e))?;
        }
        if let Some(err) = self.faults.take_snapshot_rename_error() {
            // Leave the tmp file behind, as a real failed rename would;
            // recovery ignores `.tmp` files so it is harmless debris.
            return Err(PersistError::io(
                format!("rename {} into place", tmp_path.display()),
                err,
            ));
        }
        std::fs::rename(&tmp_path, &final_path).map_err(|e| {
            PersistError::io(format!("rename {} into place", tmp_path.display()), e)
        })?;
        sync_dir(&self.dir);

        if !self.snapshots.contains(&seq) {
            self.snapshots.push(seq);
            self.snapshots.sort_unstable();
        }
        while self.snapshots.len() > self.keep_snapshots {
            let old = self.snapshots.remove(0);
            let _ = std::fs::remove_file(self.snapshot_path(old));
        }

        // Keep every WAL record the *oldest kept* snapshot does not cover,
        // so falling back past a corrupt newest snapshot still replays to
        // the present.
        let keep_after = self.snapshots.first().copied().unwrap_or(0);
        self.compact_wal(keep_after)?;
        self.since_snapshot = 0;
        // Compaction rewrote the WAL from committed records only, so any
        // residue of a failed append is gone.
        self.dirty = false;
        Ok(line.len() as u64)
    }

    fn snapshot_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snapshot-{seq:020}.json"))
    }

    /// Rewrite the WAL keeping only valid records with `seq > keep_after`,
    /// via tmp-file + atomic rename, then reopen the append handle.
    fn compact_wal(&mut self, keep_after: u64) -> Result<(), PersistError> {
        let wal_path = self.dir.join(WAL_FILE);
        let replay = wal::read_wal(&wal_path)?;
        let tmp_path = self.dir.join("wal.log.tmp");
        {
            let mut file = File::create(&tmp_path)
                .map_err(|e| PersistError::io(format!("create {}", tmp_path.display()), e))?;
            for (seq, request) in &replay.records {
                // Drop records outside (keep_after, last committed seq]:
                // below are covered by the oldest kept snapshot, above are
                // residue of a failed append that was never acknowledged.
                if *seq <= keep_after || *seq > self.seq {
                    continue;
                }
                let body = serde_json::to_string(request).map_err(|e| {
                    PersistError::corrupt("wal record", format!("unserializable: {e}"))
                })?;
                let mut line = wal::encode_frame(*seq, &body);
                line.push('\n');
                file.write_all(line.as_bytes())
                    .map_err(|e| PersistError::io(format!("write {}", tmp_path.display()), e))?;
            }
            file.sync_all()
                .map_err(|e| PersistError::io(format!("sync {}", tmp_path.display()), e))?;
        }
        std::fs::rename(&tmp_path, &wal_path)
            .map_err(|e| PersistError::io("rename compacted wal into place".to_string(), e))?;
        sync_dir(&self.dir);
        self.wal = WalWriter::open_append_with(&wal_path, Arc::clone(&self.faults))?;
        Ok(())
    }
}

fn sync_dir(dir: &Path) {
    // Directory fsync is best-effort (not all platforms support it).
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut found = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| PersistError::io(format!("list state dir {}", dir.display()), e))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| PersistError::io(format!("list state dir {}", dir.display()), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(seq) = stem.parse::<u64>() else {
            continue;
        };
        found.push((seq, entry.path()));
    }
    found.sort_by_key(|(seq, _)| *seq);
    Ok(found)
}

fn load_snapshot(path: &Path) -> Result<Snapshot, PersistError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| PersistError::io(format!("read {}", path.display()), e))?;
    let line = text
        .lines()
        .find(|l| !l.is_empty())
        .ok_or_else(|| PersistError::corrupt(path.display().to_string(), "empty file"))?;
    let (_, body) = wal::decode_frame(line)
        .map_err(|e| PersistError::corrupt(path.display().to_string(), e.to_string()))?;
    let snapshot: Snapshot = serde_json::from_str(&body)
        .map_err(|e| PersistError::corrupt(path.display().to_string(), e.to_string()))?;
    snapshot
        .validate()
        .map_err(|e| PersistError::corrupt(path.display().to_string(), e.to_string()))?;
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        let dir =
            std::env::temp_dir().join(format!("kessler-persist-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(id: u64) -> ElementsSpec {
        ElementsSpec {
            a: 7_000.0 + id as f64,
            e: 0.001,
            incl: 0.9,
            raan: 1.0,
            argp: 0.3,
            mean_anomaly: 0.2,
        }
    }

    fn add(id: u64) -> Request {
        Request::Add {
            id,
            elements: spec(id),
        }
    }

    fn snapshot_at(wal_seq: u64, n: u64) -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            wal_seq,
            epoch: n,
            ids: (0..n).collect(),
            elements: (0..n).map(spec).collect(),
            generations: (1..=n).collect(),
            changed: (0..n as u32).collect(),
            window_start: 0.0,
            screened_n: None,
            full_screens: 0,
            delta_screens: 0,
            conjunctions: Vec::new(),
            requests_served: n,
            time: 0.0,
            base_elements: (0..n).map(spec).collect(),
            last_screen: None,
            variant: Variant::Grid,
        }
    }

    fn options(dir: &Path) -> PersistOptions {
        PersistOptions {
            dir: dir.to_path_buf(),
            snapshot_every: 1_000_000, // tests snapshot explicitly
            keep_snapshots: 2,
        }
    }

    #[test]
    fn fresh_dir_recovers_nothing_and_replays_appends() {
        let dir = temp_dir("fresh");
        let (mut persister, recovery) =
            Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert!(recovery.snapshot.is_none());
        assert!(recovery.tail.is_empty());

        for id in 0..5 {
            persister.append(&add(id)).unwrap();
        }
        assert_eq!(persister.last_seq(), 5);
        drop(persister);

        let (persister, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert!(recovery.snapshot.is_none());
        assert_eq!(recovery.tail.len(), 5);
        assert_eq!(recovery.tail[3], add(3));
        assert_eq!(persister.last_seq(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_covers_wal_and_rotation_keeps_two() {
        let dir = temp_dir("rotate");
        let (mut persister, _) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        for round in 0..4u64 {
            for j in 0..3u64 {
                persister.append(&add(round * 3 + j)).unwrap();
            }
            persister
                .write_snapshot(&snapshot_at(persister.last_seq(), (round + 1) * 3))
                .unwrap();
        }
        let listed = list_snapshots(&dir).unwrap();
        assert_eq!(listed.len(), 2, "rotation keeps two snapshots");
        assert_eq!(listed[0].0, 9);
        assert_eq!(listed[1].0, 12);

        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        let snapshot = recovery.snapshot.expect("newest snapshot");
        assert_eq!(snapshot.wal_seq, 12);
        assert_eq!(snapshot.ids.len(), 12);
        assert!(recovery.tail.is_empty(), "snapshot covers the whole wal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_with_full_tail() {
        let dir = temp_dir("fallback");
        let (mut persister, _) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        // Snapshot at seq 2, then at seq 4; then two more appends.
        persister.append(&add(0)).unwrap();
        persister.append(&add(1)).unwrap();
        persister.write_snapshot(&snapshot_at(2, 2)).unwrap();
        persister.append(&add(2)).unwrap();
        persister.append(&add(3)).unwrap();
        persister.write_snapshot(&snapshot_at(4, 4)).unwrap();
        persister.append(&add(4)).unwrap();
        drop(persister);

        // Vandalise the newest snapshot.
        let newest = dir.join(format!("snapshot-{:020}.json", 4));
        std::fs::write(&newest, "XXXX not a snapshot XXXX").unwrap();

        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(recovery.corrupt_snapshots, 1);
        let snapshot = recovery.snapshot.expect("fallback snapshot");
        assert_eq!(snapshot.wal_seq, 2);
        // Records 3, 4, 5 must still be in the WAL (fallback-safe
        // compaction), so state reaches the present.
        assert_eq!(recovery.tail, vec![add(2), add(3), add(4)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_wal_repaired() {
        let dir = temp_dir("torn");
        let faults = Arc::new(FaultPlan::default());
        let (mut persister, _) = Persister::open(&options(&dir), Arc::clone(&faults)).unwrap();
        persister.append(&add(0)).unwrap();
        persister.append(&add(1)).unwrap();
        faults.arm_torn_wal();
        persister.append(&add(2)).unwrap(); // torn on disk
        drop(persister);

        let (mut persister, recovery) =
            Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(recovery.tail, vec![add(0), add(1)]);
        assert!(recovery.torn_tail.is_some());

        // The repaired WAL accepts and replays new appends.
        persister.append(&add(3)).unwrap();
        drop(persister);
        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert!(recovery.torn_tail.is_none());
        assert_eq!(recovery.tail, vec![add(0), add(1), add(3)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_with_absurd_millis_is_corrupt_not_a_crash() {
        let dir = temp_dir("hugems");
        let (mut persister, _) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        persister.append(&add(0)).unwrap();
        persister.append(&add(1)).unwrap();
        persister.write_snapshot(&snapshot_at(2, 2)).unwrap();
        persister.append(&add(2)).unwrap();
        drop(persister);

        // Forge a newer snapshot whose last-screen total is 1e300 ms:
        // finite, non-negative, checksummed — but past what Duration can
        // hold. Recovery must reject the body (not panic in serde) and
        // fall back to the snapshot at seq 2.
        let mut forged = snapshot_at(3, 2);
        forged.last_screen = Some(LastScreen {
            variant: "grid".to_string(),
            timings: Default::default(),
            filter_stats: None,
        });
        let body = serde_json::to_string(&forged)
            .unwrap()
            .replace("\"total\":0.0", "\"total\":1e300");
        assert!(body.contains("1e300"), "forgery target moved: {body}");
        let mut line = wal::encode_frame(3, &body);
        line.push('\n');
        std::fs::write(dir.join(format!("snapshot-{:020}.json", 3)), line).unwrap();

        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(recovery.corrupt_snapshots, 1);
        let snapshot = recovery.snapshot.expect("fallback snapshot");
        assert_eq!(snapshot.wal_seq, 2);
        assert_eq!(recovery.tail, vec![add(2)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_metrics_snapshots_read_with_defaulted_fields() {
        // A body without requests_served/time/base_elements/last_screen —
        // what every snapshot before this schema extension looks like.
        let old_body = format!(
            r#"{{"version":{SNAPSHOT_VERSION},"wal_seq":1,"epoch":1,"ids":[7],"elements":[{}],"generations":[1],"changed":[],"window_start":0.0,"screened_n":null,"full_screens":0,"delta_screens":0,"conjunctions":[]}}"#,
            serde_json::to_string(&spec(7)).unwrap()
        );
        let snapshot: Snapshot = serde_json::from_str(&old_body).unwrap();
        assert_eq!(snapshot.requests_served, 0);
        assert_eq!(snapshot.time, 0.0);
        assert!(snapshot.base_elements.is_empty());
        assert!(snapshot.last_screen.is_none());
        assert_eq!(
            snapshot.variant,
            Variant::Grid,
            "pre-variant snapshots recover as grid"
        );
        assert!(snapshot.validate().is_ok());
    }

    #[test]
    fn snapshot_variant_roundtrips_and_rejects_garbage() {
        let mut snapshot = snapshot_at(1, 1);
        snapshot.variant = Variant::Hybrid;
        let body = serde_json::to_string(&snapshot).unwrap();
        let back: Snapshot = serde_json::from_str(&body).unwrap();
        assert_eq!(back.variant, Variant::Hybrid);

        // An unknown variant tag is a deserialization error — recovery
        // treats the snapshot as corrupt and falls back, it does not guess.
        let forged = body.replace("\"Hybrid\"", "\"Bogus\"");
        assert!(forged.contains("Bogus"), "forgery target moved: {forged}");
        assert!(serde_json::from_str::<Snapshot>(&forged).is_err());
    }

    #[test]
    fn failed_append_commits_nothing_and_the_next_one_succeeds() {
        let dir = temp_dir("appendfail");
        let faults = Arc::new(FaultPlan::default());
        let (mut persister, _) = Persister::open(&options(&dir), Arc::clone(&faults)).unwrap();
        persister.append(&add(0)).unwrap();
        assert_eq!(persister.last_seq(), 1);

        faults.arm_wal_append_eio();
        let err = persister.append(&add(1)).expect_err("injected EIO");
        assert!(err.to_string().contains("append wal record"), "{err}");
        assert_eq!(persister.last_seq(), 1, "seq must not advance on failure");
        assert!(!persister.is_dirty());

        // The retry gets the same sequence number the failure burned.
        persister.append(&add(1)).unwrap();
        assert_eq!(persister.last_seq(), 2);
        drop(persister);
        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert!(recovery.torn_tail.is_none());
        assert_eq!(recovery.tail, vec![add(0), add(1)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_fsync_rolls_the_record_bytes_back_off_disk() {
        let dir = temp_dir("fsyncroll");
        let faults = Arc::new(FaultPlan::default());
        let (mut persister, _) = Persister::open(&options(&dir), Arc::clone(&faults)).unwrap();
        persister.append(&add(0)).unwrap();
        let clean_len = persister.wal_size();

        faults.arm_wal_fsync_fail();
        persister
            .append(&add(1))
            .expect_err("injected fsync failure");
        assert_eq!(persister.last_seq(), 1);
        assert_eq!(
            persister.wal_size(),
            clean_len,
            "failed record's bytes must be truncated away"
        );
        drop(persister);
        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(
            recovery.tail,
            vec![add(0)],
            "phantom record must not replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_faults_fail_cleanly_and_the_retry_lands() {
        let dir = temp_dir("snapfault");
        let faults = Arc::new(FaultPlan::default());
        let (mut persister, _) = Persister::open(&options(&dir), Arc::clone(&faults)).unwrap();
        persister.append(&add(0)).unwrap();

        faults.arm_snapshot_write_fail();
        persister
            .write_snapshot(&snapshot_at(1, 1))
            .expect_err("injected tmp-write failure");
        faults.arm_snapshot_rename_fail();
        persister
            .write_snapshot(&snapshot_at(1, 1))
            .expect_err("injected rename failure");
        assert!(
            list_snapshots(&dir).unwrap().is_empty(),
            "no snapshot may appear from a failed write"
        );

        // Un-faulted retry succeeds, and recovery reads it.
        persister.write_snapshot(&snapshot_at(1, 1)).unwrap();
        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(recovery.snapshot.expect("snapshot").wal_seq, 1);
        assert!(recovery.tail.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_detects_a_broken_disk_and_leaves_no_debris() {
        let dir = temp_dir("probe");
        let faults = Arc::new(FaultPlan::default());
        let (persister, _) = Persister::open(&options(&dir), Arc::clone(&faults)).unwrap();
        persister.probe().expect("healthy dir probes clean");
        assert!(!dir.join(".probe.tmp").exists());

        faults.set_wal_broken(true);
        persister.probe().expect_err("broken disk must fail probe");
        faults.set_wal_broken(false);
        persister.probe().expect("probe recovers with the disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_snapshot_reports_its_size_on_disk() {
        let dir = temp_dir("size");
        let (mut persister, _) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        persister.append(&add(0)).unwrap();
        let bytes = persister.write_snapshot(&snapshot_at(1, 1)).unwrap();
        let on_disk = std::fs::metadata(dir.join(format!("snapshot-{:020}.json", 1)))
            .unwrap()
            .len();
        assert_eq!(bytes, on_disk);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
