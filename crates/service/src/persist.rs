//! Snapshot + WAL durability layer.
//!
//! State directory layout (flat, unsharded daemon):
//!
//! ```text
//! <state-dir>/
//!   wal.log                        append-only mutation log (see `wal`)
//!   snapshot-00000000000000000042.json   full state at WAL seq 42
//!   snapshot-00000000000000000038.json   previous snapshot (fallback)
//! ```
//!
//! A snapshot is one checksummed frame line holding the entire daemon
//! state (catalog, pending-change set, window, warm conjunction set,
//! screen counters) as of a WAL sequence number. Snapshots are written to
//! a `.tmp` file, fsynced, then atomically renamed into place, so a crash
//! mid-snapshot leaves the previous one intact.
//!
//! With sharding enabled ([`PersistOptions::shards`]), snapshots become
//! *incremental*: the catalog is chunked by static shard assignment and a
//! write rewrites only the chunks of shards dirtied since the previous
//! snapshot, plus a small manifest tying a consistent set together:
//!
//! ```text
//! <state-dir>/
//!   wal.log
//!   manifest-00000000000000000042.json   manifest: global state + chunk refs
//!   shard-00000000000000000042-0003.json chunk rewritten at seq 42
//!   shard-00000000000000000030-0001.json older chunk still referenced
//! ```
//!
//! The manifest's `chunk_seqs[s]` names the sequence number of the chunk
//! file holding shard `s`, so recovery reads the manifest plus
//! `shard_count` chunk files directly — no chain walk. Chunks are written
//! before the manifest (each tmp + fsync + rename), so a crash mid-write
//! leaves the previous manifest's set fully intact. A full chunk set is
//! forced periodically so retention can reclaim old chunks.
//!
//! Recovery loads the *newest materializable* recovery point — v1
//! snapshot files and v2 manifests are merged into one seq-ordered list,
//! and a manifest with a missing or corrupt chunk is skipped whole — then
//! replays WAL records with `seq > point.wal_seq`. To keep fallback
//! sound, retention keeps every recovery point at or after the
//! `keep_snapshots`-th-newest *full* point (a v1 file, or a manifest
//! whose chunks were all written at its own seq), deletes the rest, and
//! WAL compaction retains every record newer than the oldest kept point.

use crate::error::PersistError;
use crate::fault::FaultPlan;
use crate::proto::{ElementsSpec, LastScreen, Request};
use crate::shard::{ShardMap, ShardSpec};
use crate::wal::{self, WalWriter};
use kessler_core::{Conjunction, Variant};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Bump when the snapshot schema changes incompatibly.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Schema version of the sharded manifest format.
pub const MANIFEST_VERSION: u32 = 2;

/// WAL file name inside the state directory.
pub const WAL_FILE: &str = "wal.log";

/// Force a full chunk set after this many incremental manifests, so the
/// chain of still-referenced old chunks stays short and retention can
/// reclaim disk.
const FULL_MANIFEST_EVERY: u64 = 8;

/// Where and how often to persist.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// State directory (created if missing).
    pub dir: PathBuf,
    /// Mutations between snapshots (and WAL compactions).
    pub snapshot_every: u64,
    /// Snapshots retained on disk; at least 2 so a corrupt newest
    /// snapshot has a fallback. Under sharding this counts *full*
    /// recovery points; incrementals in between ride along.
    pub keep_snapshots: usize,
    /// Chunk snapshots by this shard layout (incremental v2 manifests).
    /// `None` writes flat v1 snapshot files. Either mode *reads* both.
    pub shards: Option<ShardSpec>,
}

impl PersistOptions {
    pub fn new(dir: impl Into<PathBuf>) -> PersistOptions {
        PersistOptions {
            dir: dir.into(),
            snapshot_every: 256,
            keep_snapshots: 2,
            shards: None,
        }
    }
}

/// Complete daemon state at one WAL sequence number.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    pub version: u32,
    /// WAL records up to and including this sequence number are folded in.
    pub wal_seq: u64,
    /// Catalog epoch.
    pub epoch: u64,
    /// External ids by dense index.
    pub ids: Vec<u64>,
    /// Elements by dense index (wire representation: km / rad).
    pub elements: Vec<ElementsSpec>,
    /// Per-satellite generation counters by dense index.
    pub generations: Vec<u64>,
    /// Dense indices changed since the last screen.
    pub changed: Vec<u32>,
    /// Absolute start of the screening window, s.
    pub window_start: f64,
    /// Population size of the engine's last adopted screen.
    pub screened_n: Option<usize>,
    pub full_screens: u64,
    pub delta_screens: u64,
    /// The warm conjunction set (window-relative TCAs).
    pub conjunctions: Vec<Conjunction>,
    /// Requests served when the snapshot was written, so a recovered
    /// daemon's STATUS does not restart the counter at the replayed tail.
    /// Defaults keep pre-metrics snapshots readable (version stays 1).
    #[serde(default)]
    pub requests_served: u64,
    /// Seconds the catalog has been advanced past its base epoch.
    #[serde(default)]
    pub time: f64,
    /// Epoch-0 elements by dense index; empty in old snapshots (the
    /// catalog then derives them by de-propagating `elements` by `-time`).
    #[serde(default)]
    pub base_elements: Vec<ElementsSpec>,
    /// Variant and timings of the most recent screen, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub last_screen: Option<LastScreen>,
    /// Screening variant the daemon served with when the snapshot was
    /// taken. Snapshots from before the field existed were always grid.
    #[serde(default = "default_snapshot_variant")]
    pub variant: Variant,
    /// Shards dirtied since the last successful snapshot write, when the
    /// daemon runs sharded. A transient hand-off from the state to the
    /// persister — never serialized; the manifest encodes the same
    /// information as chunk seqs. `None` means "not tracking" and makes a
    /// sharded write rewrite every chunk.
    #[serde(skip)]
    pub dirty_shards: Option<Vec<u32>>,
}

fn default_snapshot_variant() -> Variant {
    Variant::Grid
}

impl Snapshot {
    fn validate(&self) -> Result<(), PersistError> {
        let corrupt = |detail: String| PersistError::corrupt("snapshot", detail);
        if self.version != SNAPSHOT_VERSION {
            return Err(corrupt(format!(
                "snapshot version {} (this build reads {SNAPSHOT_VERSION})",
                self.version
            )));
        }
        if self.ids.len() != self.elements.len() || self.ids.len() != self.generations.len() {
            return Err(corrupt(format!(
                "inconsistent catalog arrays: {} ids, {} element sets, {} generations",
                self.ids.len(),
                self.elements.len(),
                self.generations.len()
            )));
        }
        if !self.base_elements.is_empty() && self.base_elements.len() != self.ids.len() {
            return Err(corrupt(format!(
                "inconsistent catalog arrays: {} ids, {} base element sets",
                self.ids.len(),
                self.base_elements.len()
            )));
        }
        if !self.time.is_finite() {
            return Err(corrupt(format!("non-finite catalog time {}", self.time)));
        }
        Ok(())
    }
}

/// What [`Persister::open`] recovered from the state directory.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Newest recovery point (v1 snapshot or v2 manifest + chunks) that
    /// materialized and passed validation, if any.
    pub snapshot: Option<Snapshot>,
    /// WAL records newer than the snapshot, in order.
    pub tail: Vec<Request>,
    /// `Some(detail)` when the WAL ended in a damaged record (tolerated).
    pub torn_tail: Option<String>,
    /// Recovery points that failed to materialize and were skipped — a
    /// corrupt v1 file, or a manifest with a missing/corrupt chunk.
    pub corrupt_snapshots: usize,
}

/// Global (non-catalog) state of a sharded snapshot, plus the references
/// that stitch its chunk files into one consistent catalog. Small —
/// catalog payload lives in the chunks; the warm conjunction set rides
/// here and is rewritten every time (it has no shard locality).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    wal_seq: u64,
    shard_count: u32,
    /// `chunk_seqs[s]` = wal_seq of the chunk file holding shard `s`.
    chunk_seqs: Vec<u64>,
    /// Total satellites across all chunks (cross-checked on load).
    n_satellites: usize,
    epoch: u64,
    changed: Vec<u32>,
    window_start: f64,
    screened_n: Option<usize>,
    full_screens: u64,
    delta_screens: u64,
    conjunctions: Vec<Conjunction>,
    requests_served: u64,
    time: f64,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    last_screen: Option<LastScreen>,
    variant: Variant,
}

impl Manifest {
    fn is_full(&self) -> bool {
        self.chunk_seqs.iter().all(|&s| s == self.wal_seq)
    }
}

/// One shard's complete membership at one sequence number. Entries carry
/// the dense index so the union of chunks reassembles the catalog's
/// arrays exactly, and both current and epoch-0 elements, because
/// propagation is not invertible from the current elements alone.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ShardChunk {
    shard: u32,
    entries: Vec<ChunkEntry>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ChunkEntry {
    index: u32,
    id: u64,
    elements: ElementsSpec,
    base: ElementsSpec,
    generation: u64,
}

/// One restartable point in the state directory, for the merged
/// newest-first recovery scan.
#[derive(Debug)]
enum PointFile {
    /// Flat v1 `snapshot-<seq>.json`.
    V1(PathBuf),
    /// Sharded v2 `manifest-<seq>.json`.
    V2(PathBuf),
}

/// Owns the state directory: appends WAL records, writes snapshots,
/// rotates and compacts.
#[derive(Debug)]
pub struct Persister {
    dir: PathBuf,
    wal: WalWriter,
    /// Last assigned WAL sequence number.
    seq: u64,
    snapshot_every: u64,
    keep_snapshots: usize,
    since_snapshot: u64,
    /// Shard layout for chunked v2 snapshots; `None` writes flat v1.
    shards: Option<ShardMap>,
    /// Incremental manifests written since the last full chunk set; at
    /// [`FULL_MANIFEST_EVERY`] the next write is forced full.
    incrementals_since_full: u64,
    faults: Arc<FaultPlan>,
    /// Set when a failed append could not be rolled back off disk (the
    /// truncate after a failed fsync also failed): the WAL tail may hold
    /// a record for a mutation the caller was told failed. Cleared by the
    /// next successful snapshot, whose compaction rewrites the WAL from
    /// committed records only.
    dirty: bool,
}

impl Persister {
    /// Open (or initialise) a state directory and recover its contents.
    pub fn open(
        options: &PersistOptions,
        faults: Arc<FaultPlan>,
    ) -> Result<(Persister, Recovery), PersistError> {
        let dir = options.dir.clone();
        std::fs::create_dir_all(&dir)
            .map_err(|e| PersistError::io(format!("create state dir {}", dir.display()), e))?;
        let shards = match options.shards {
            Some(spec) => Some(ShardMap::new(spec).map_err(|e| {
                PersistError::corrupt("persist options", format!("invalid shard spec: {e}"))
            })?),
            None => None,
        };

        // Both formats are always *readable*, whatever we write: a daemon
        // switching sharding on or off must still recover what the
        // previous configuration persisted.
        let points = list_points(&dir)?;
        let mut recovery = Recovery::default();
        for (seq, point) in points.iter().rev() {
            match materialize_point(&dir, point) {
                Ok(snapshot) => {
                    debug_assert_eq!(snapshot.wal_seq, *seq);
                    recovery.snapshot = Some(snapshot);
                    break;
                }
                Err(err) => {
                    eprintln!("kessler-service: skipping corrupt snapshot: {err}");
                    recovery.corrupt_snapshots += 1;
                }
            }
        }

        let wal_path = dir.join(WAL_FILE);
        let replay = wal::read_wal(&wal_path)?;
        let base_seq = recovery.snapshot.as_ref().map_or(0, |s| s.wal_seq);
        let mut last_seq = base_seq;
        for (seq, request) in replay.records {
            last_seq = last_seq.max(seq);
            if seq > base_seq {
                recovery.tail.push(request);
            }
        }
        recovery.torn_tail = replay.torn;

        let mut persister = Persister {
            dir,
            wal: WalWriter::open_append_with(&wal_path, Arc::clone(&faults))?,
            seq: last_seq,
            snapshot_every: options.snapshot_every.max(1),
            keep_snapshots: options.keep_snapshots.max(2),
            since_snapshot: recovery.tail.len() as u64,
            shards,
            incrementals_since_full: 0,
            faults,
            dirty: false,
        };
        if recovery.torn_tail.is_some() {
            // Drop the damaged tail bytes now: appending after a partial
            // record would glue new frames onto the torn line and lose
            // them too.
            let keep_after = points.first().map_or(0, |(seq, _)| *seq);
            persister.compact_wal(keep_after)?;
        }
        Ok((persister, recovery))
    }

    /// Last assigned WAL sequence number.
    pub fn last_seq(&self) -> u64 {
        self.seq
    }

    /// Durably append one mutation. The sequence number is committed only
    /// on success: a failed append leaves `last_seq()` unchanged and rolls
    /// any partially written bytes back off the log, so the caller can
    /// treat `Err` as "nothing happened" and reject the request.
    pub fn append(&mut self, request: &Request) -> Result<(), PersistError> {
        if let Some(err) = self.faults.take_wal_append_error() {
            return Err(PersistError::io("append wal record", err));
        }
        let seq = self.seq + 1;
        let pre_len = self.wal.len()?;
        let written = if self.faults.take_torn_wal() {
            self.wal.append_torn(seq, request)
        } else {
            self.wal.append(seq, request)
        };
        match written {
            Ok(()) => {
                self.seq = seq;
                self.since_snapshot += 1;
                Ok(())
            }
            Err(err) => {
                // A failed fsync may still have landed the record's bytes;
                // chop them off so an unacknowledged mutation cannot
                // replay after a crash. If even the truncate fails, flag
                // the log dirty — the next successful snapshot's
                // compaction rewrites it from committed records only.
                if self.wal.truncate_to(pre_len).is_err() {
                    self.dirty = true;
                }
                Err(err)
            }
        }
    }

    /// `true` while a failed append's bytes may still be on disk.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Current WAL size in bytes (0 if unreadable); used when warning
    /// that failed snapshots are starving compaction.
    pub fn wal_size(&self) -> u64 {
        self.wal.len().unwrap_or(0)
    }

    /// Cheap liveness check of the state directory: create, sync, and
    /// remove a probe file. Used by the degraded-mode recovery loop to
    /// decide whether the disk is worth an emergency snapshot attempt.
    pub fn probe(&self) -> Result<(), PersistError> {
        if self.faults.wal_is_broken() {
            return Err(PersistError::io(
                "probe state dir",
                std::io::Error::from_raw_os_error(5),
            ));
        }
        let path = self.dir.join(".probe.tmp");
        let context = || format!("probe {}", path.display());
        let mut file = File::create(&path).map_err(|e| PersistError::io(context(), e))?;
        file.write_all(b"probe")
            .map_err(|e| PersistError::io(context(), e))?;
        file.sync_all()
            .map_err(|e| PersistError::io(context(), e))?;
        drop(file);
        std::fs::remove_file(&path).map_err(|e| PersistError::io(context(), e))
    }

    /// `true` once enough mutations accumulated to warrant a snapshot.
    pub fn should_snapshot(&self) -> bool {
        self.since_snapshot >= self.snapshot_every
    }

    /// Write a snapshot atomically (flat v1, or dirty chunks + manifest
    /// under sharding), apply retention, compact the WAL. Returns the
    /// bytes written to disk by *this* call (for metrics — under sharding
    /// that is the manifest plus only the rewritten chunks).
    pub fn write_snapshot(&mut self, snapshot: &Snapshot) -> Result<u64, PersistError> {
        snapshot.validate()?;
        let bytes = match self.shards {
            Some(map) => self.write_snapshot_v2(snapshot, &map)?,
            None => self.write_snapshot_v1(snapshot)?,
        };

        // Keep every WAL record the *oldest kept* recovery point does not
        // cover, so falling back past a corrupt newest point still
        // replays to the present.
        let keep_after = self.apply_retention();
        self.compact_wal(keep_after)?;
        self.since_snapshot = 0;
        // Compaction rewrote the WAL from committed records only, so any
        // residue of a failed append is gone.
        self.dirty = false;
        Ok(bytes)
    }

    /// The flat format: the whole state as one frame-encoded file.
    fn write_snapshot_v1(&mut self, snapshot: &Snapshot) -> Result<u64, PersistError> {
        let seq = snapshot.wal_seq;
        let body = serde_json::to_string(snapshot)
            .map_err(|e| PersistError::corrupt("snapshot", format!("unserializable: {e}")))?;
        self.write_frame_file(seq, &body, &self.snapshot_path(seq))
    }

    /// The sharded format: rewrite chunks for dirty shards, then a
    /// manifest referencing the rest from their previous chunks. Chunks
    /// land before the manifest, so a crash anywhere leaves the previous
    /// manifest's set fully intact; orphaned new chunks are reclaimed by
    /// the next retention pass.
    fn write_snapshot_v2(
        &mut self,
        snapshot: &Snapshot,
        map: &ShardMap,
    ) -> Result<u64, PersistError> {
        let seq = snapshot.wal_seq;
        let shard_count = map.shard_count();

        // The previous manifest tells us which chunks can be reused. No
        // usable predecessor (fresh dir, v1 history, relaid shards) or an
        // overdue full forces a complete chunk set.
        let prev = newest_manifest(&self.dir);
        let prev = prev.filter(|m| m.shard_count == shard_count && m.wal_seq <= seq);
        let dirty: BTreeSet<u32> = match (&prev, &snapshot.dirty_shards) {
            (Some(_), Some(dirtied)) if self.incrementals_since_full < FULL_MANIFEST_EVERY => {
                dirtied
                    .iter()
                    .copied()
                    .filter(|&s| s < shard_count)
                    .collect()
            }
            _ => (0..shard_count).collect(),
        };

        // Chunk the catalog by static assignment on the stored elements
        // (position-independent, stable under ADVANCE rebasing).
        let mut members: Vec<Vec<ChunkEntry>> = vec![Vec::new(); shard_count as usize];
        for (i, spec) in snapshot.elements.iter().enumerate() {
            let shard = map.assign(spec.a, spec.incl);
            if !dirty.contains(&shard) {
                continue;
            }
            let base = snapshot
                .base_elements
                .get(i)
                .copied()
                .unwrap_or(snapshot.elements[i]);
            members[shard as usize].push(ChunkEntry {
                index: i as u32,
                id: snapshot.ids[i],
                elements: *spec,
                base,
                generation: snapshot.generations[i],
            });
        }

        let mut bytes = 0u64;
        for &shard in &dirty {
            let chunk = ShardChunk {
                shard,
                entries: std::mem::take(&mut members[shard as usize]),
            };
            let body = serde_json::to_string(&chunk).map_err(|e| {
                PersistError::corrupt("shard chunk", format!("unserializable: {e}"))
            })?;
            bytes += self.write_frame_file(seq, &body, &chunk_path(&self.dir, seq, shard))?;
        }

        let chunk_seqs: Vec<u64> = (0..shard_count)
            .map(|s| {
                if dirty.contains(&s) {
                    seq
                } else {
                    prev.as_ref()
                        .expect("non-dirty shard implies a predecessor")
                        .chunk_seqs[s as usize]
                }
            })
            .collect();
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            wal_seq: seq,
            shard_count,
            chunk_seqs,
            n_satellites: snapshot.ids.len(),
            epoch: snapshot.epoch,
            changed: snapshot.changed.clone(),
            window_start: snapshot.window_start,
            screened_n: snapshot.screened_n,
            full_screens: snapshot.full_screens,
            delta_screens: snapshot.delta_screens,
            conjunctions: snapshot.conjunctions.clone(),
            requests_served: snapshot.requests_served,
            time: snapshot.time,
            last_screen: snapshot.last_screen.clone(),
            variant: snapshot.variant,
        };
        let full = manifest.is_full();
        let body = serde_json::to_string(&manifest)
            .map_err(|e| PersistError::corrupt("manifest", format!("unserializable: {e}")))?;
        bytes += self.write_frame_file(seq, &body, &manifest_path(&self.dir, seq))?;
        self.incrementals_since_full = if full {
            0
        } else {
            self.incrementals_since_full + 1
        };
        Ok(bytes)
    }

    /// Write one frame-encoded body durably: tmp file, fsync, atomic
    /// rename, directory sync. Fault-injection hooks fire per file, so
    /// the chaos tests exercise multi-file sharded writes too.
    fn write_frame_file(&self, seq: u64, body: &str, path: &Path) -> Result<u64, PersistError> {
        let mut line = wal::encode_frame(seq, body);
        line.push('\n');
        let tmp_path = path.with_extension("json.tmp");
        if let Some(err) = self.faults.take_snapshot_write_error() {
            return Err(PersistError::io(
                format!("write {}", tmp_path.display()),
                err,
            ));
        }
        {
            let mut file = File::create(&tmp_path)
                .map_err(|e| PersistError::io(format!("create {}", tmp_path.display()), e))?;
            file.write_all(line.as_bytes())
                .map_err(|e| PersistError::io(format!("write {}", tmp_path.display()), e))?;
            file.sync_all()
                .map_err(|e| PersistError::io(format!("sync {}", tmp_path.display()), e))?;
        }
        if let Some(err) = self.faults.take_snapshot_rename_error() {
            // Leave the tmp file behind, as a real failed rename would;
            // recovery ignores `.tmp` files so it is harmless debris.
            return Err(PersistError::io(
                format!("rename {} into place", tmp_path.display()),
                err,
            ));
        }
        std::fs::rename(&tmp_path, path).map_err(|e| {
            PersistError::io(format!("rename {} into place", tmp_path.display()), e)
        })?;
        sync_dir(&self.dir);
        Ok(line.len() as u64)
    }

    fn snapshot_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snapshot-{seq:020}.json"))
    }

    /// Delete recovery points older than the `keep_snapshots`-th-newest
    /// *full* point, plus any chunk file no kept manifest references.
    /// Stateless by design — it re-lists the directory, so it also mops
    /// up debris from crashed writes. Best-effort: a file that refuses to
    /// die costs disk, not correctness. Returns the oldest kept seq (the
    /// WAL compaction floor).
    fn apply_retention(&self) -> u64 {
        let Ok(points) = list_points(&self.dir) else {
            return 0;
        };
        let manifests: Vec<(u64, Option<Manifest>)> = points
            .iter()
            .filter_map(|(seq, point)| match point {
                PointFile::V1(_) => None,
                PointFile::V2(path) => Some((*seq, load_manifest(path).ok())),
            })
            .collect();
        // A v1 file is self-contained, hence full. An unreadable manifest
        // is nothing (and will age out below).
        let full_seqs: Vec<u64> = points
            .iter()
            .filter(|(seq, point)| match point {
                PointFile::V1(_) => true,
                PointFile::V2(_) => manifests
                    .iter()
                    .any(|(mseq, m)| mseq == seq && m.as_ref().is_some_and(Manifest::is_full)),
            })
            .map(|(seq, _)| *seq)
            .collect();
        if full_seqs.len() < self.keep_snapshots {
            return points.first().map_or(0, |(seq, _)| *seq);
        }
        let cutoff = full_seqs[full_seqs.len() - self.keep_snapshots];

        for (seq, point) in &points {
            if *seq >= cutoff {
                continue;
            }
            let path = match point {
                PointFile::V1(path) => path,
                PointFile::V2(path) => path,
            };
            let _ = std::fs::remove_file(path);
        }
        // Chunks referenced by no kept manifest — superseded, orphaned by
        // a crash, or belonging to a deleted manifest — go too.
        let referenced: BTreeSet<(u64, u32)> = manifests
            .iter()
            .filter(|(seq, _)| *seq >= cutoff)
            .filter_map(|(_, m)| m.as_ref())
            .flat_map(|m| {
                m.chunk_seqs
                    .iter()
                    .enumerate()
                    .map(|(shard, &seq)| (seq, shard as u32))
                    .collect::<Vec<_>>()
            })
            .collect();
        if let Ok(chunks) = list_chunks(&self.dir) {
            for (seq, shard, path) in chunks {
                if !referenced.contains(&(seq, shard)) {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        cutoff
    }

    /// Rewrite the WAL keeping only valid records with `seq > keep_after`,
    /// via tmp-file + atomic rename, then reopen the append handle.
    fn compact_wal(&mut self, keep_after: u64) -> Result<(), PersistError> {
        let wal_path = self.dir.join(WAL_FILE);
        let replay = wal::read_wal(&wal_path)?;
        let tmp_path = self.dir.join("wal.log.tmp");
        {
            let mut file = File::create(&tmp_path)
                .map_err(|e| PersistError::io(format!("create {}", tmp_path.display()), e))?;
            for (seq, request) in &replay.records {
                // Drop records outside (keep_after, last committed seq]:
                // below are covered by the oldest kept snapshot, above are
                // residue of a failed append that was never acknowledged.
                if *seq <= keep_after || *seq > self.seq {
                    continue;
                }
                let body = serde_json::to_string(request).map_err(|e| {
                    PersistError::corrupt("wal record", format!("unserializable: {e}"))
                })?;
                let mut line = wal::encode_frame(*seq, &body);
                line.push('\n');
                file.write_all(line.as_bytes())
                    .map_err(|e| PersistError::io(format!("write {}", tmp_path.display()), e))?;
            }
            file.sync_all()
                .map_err(|e| PersistError::io(format!("sync {}", tmp_path.display()), e))?;
        }
        std::fs::rename(&tmp_path, &wal_path)
            .map_err(|e| PersistError::io("rename compacted wal into place".to_string(), e))?;
        sync_dir(&self.dir);
        self.wal = WalWriter::open_append_with(&wal_path, Arc::clone(&self.faults))?;
        Ok(())
    }
}

fn sync_dir(dir: &Path) {
    // Directory fsync is best-effort (not all platforms support it).
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut found = Vec::new();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| PersistError::io(format!("list state dir {}", dir.display()), e))?;
    for entry in entries {
        let entry =
            entry.map_err(|e| PersistError::io(format!("list state dir {}", dir.display()), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("snapshot-")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(seq) = stem.parse::<u64>() else {
            continue;
        };
        found.push((seq, entry.path()));
    }
    found.sort_by_key(|(seq, _)| *seq);
    Ok(found)
}

/// Read the checksummed frame line a snapshot/manifest/chunk file holds.
fn read_frame_body(path: &Path) -> Result<String, PersistError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| PersistError::io(format!("read {}", path.display()), e))?;
    let line = text
        .lines()
        .find(|l| !l.is_empty())
        .ok_or_else(|| PersistError::corrupt(path.display().to_string(), "empty file"))?;
    let (_, body) = wal::decode_frame(line)
        .map_err(|e| PersistError::corrupt(path.display().to_string(), e.to_string()))?;
    Ok(body)
}

fn load_snapshot(path: &Path) -> Result<Snapshot, PersistError> {
    let body = read_frame_body(path)?;
    let snapshot: Snapshot = serde_json::from_str(&body)
        .map_err(|e| PersistError::corrupt(path.display().to_string(), e.to_string()))?;
    snapshot
        .validate()
        .map_err(|e| PersistError::corrupt(path.display().to_string(), e.to_string()))?;
    Ok(snapshot)
}

fn load_manifest(path: &Path) -> Result<Manifest, PersistError> {
    let body = read_frame_body(path)?;
    let manifest: Manifest = serde_json::from_str(&body)
        .map_err(|e| PersistError::corrupt(path.display().to_string(), e.to_string()))?;
    let corrupt = |detail: String| PersistError::corrupt(path.display().to_string(), detail);
    if manifest.version != MANIFEST_VERSION {
        return Err(corrupt(format!(
            "manifest version {} (this build reads {MANIFEST_VERSION})",
            manifest.version
        )));
    }
    if manifest.chunk_seqs.len() != manifest.shard_count as usize {
        return Err(corrupt(format!(
            "{} chunk refs for {} shards",
            manifest.chunk_seqs.len(),
            manifest.shard_count
        )));
    }
    if manifest.chunk_seqs.iter().any(|&s| s > manifest.wal_seq) {
        return Err(corrupt("chunk ref newer than the manifest".to_string()));
    }
    Ok(manifest)
}

fn load_chunk(path: &Path) -> Result<ShardChunk, PersistError> {
    let body = read_frame_body(path)?;
    serde_json::from_str(&body)
        .map_err(|e| PersistError::corrupt(path.display().to_string(), e.to_string()))
}

fn manifest_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("manifest-{seq:020}.json"))
}

fn chunk_path(dir: &Path, seq: u64, shard: u32) -> PathBuf {
    dir.join(format!("shard-{seq:020}-{shard:04}.json"))
}

/// Newest manifest in the directory that parses, if any.
fn newest_manifest(dir: &Path) -> Option<Manifest> {
    let points = list_points(dir).ok()?;
    points.iter().rev().find_map(|(_, point)| match point {
        PointFile::V2(path) => load_manifest(path).ok(),
        PointFile::V1(_) => None,
    })
}

/// All recovery points (v1 snapshot files and v2 manifests) in the
/// directory, ascending by seq.
fn list_points(dir: &Path) -> Result<Vec<(u64, PointFile)>, PersistError> {
    let mut found: Vec<(u64, PointFile)> = list_snapshots(dir)?
        .into_iter()
        .map(|(seq, path)| (seq, PointFile::V1(path)))
        .collect();
    for entry in read_dir_entries(dir)? {
        let Some(name) = entry.file_name().to_str().map(str::to_string) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("manifest-")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(seq) = stem.parse::<u64>() else {
            continue;
        };
        found.push((seq, PointFile::V2(entry.path())));
    }
    found.sort_by_key(|(seq, _)| *seq);
    Ok(found)
}

/// All shard chunk files in the directory as `(seq, shard, path)`.
fn list_chunks(dir: &Path) -> Result<Vec<(u64, u32, PathBuf)>, PersistError> {
    let mut found = Vec::new();
    for entry in read_dir_entries(dir)? {
        let Some(name) = entry.file_name().to_str().map(str::to_string) else {
            continue;
        };
        let Some(stem) = name
            .strip_prefix("shard-")
            .and_then(|s| s.strip_suffix(".json"))
        else {
            continue;
        };
        let Some((seq, shard)) = stem.split_once('-') else {
            continue;
        };
        let (Ok(seq), Ok(shard)) = (seq.parse::<u64>(), shard.parse::<u32>()) else {
            continue;
        };
        found.push((seq, shard, entry.path()));
    }
    Ok(found)
}

fn read_dir_entries(dir: &Path) -> Result<Vec<std::fs::DirEntry>, PersistError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| PersistError::io(format!("list state dir {}", dir.display()), e))?;
    entries
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| PersistError::io(format!("list state dir {}", dir.display()), e))
}

/// Load one recovery point into a full [`Snapshot`], whichever format it
/// is. A manifest materializes by reading every referenced chunk and
/// reassembling the catalog's dense arrays; any missing or corrupt chunk
/// fails the whole point.
fn materialize_point(dir: &Path, point: &PointFile) -> Result<Snapshot, PersistError> {
    match point {
        PointFile::V1(path) => load_snapshot(path),
        PointFile::V2(path) => {
            let manifest = load_manifest(path)?;
            materialize_manifest(dir, &manifest)
        }
    }
}

fn materialize_manifest(dir: &Path, manifest: &Manifest) -> Result<Snapshot, PersistError> {
    let corrupt = |detail: String| PersistError::corrupt("manifest", detail);
    let mut entries: Vec<ChunkEntry> = Vec::with_capacity(manifest.n_satellites);
    for (shard, &chunk_seq) in manifest.chunk_seqs.iter().enumerate() {
        let path = chunk_path(dir, chunk_seq, shard as u32);
        let chunk = load_chunk(&path)?;
        if chunk.shard != shard as u32 {
            return Err(corrupt(format!(
                "chunk {} claims shard {}, expected {shard}",
                path.display(),
                chunk.shard
            )));
        }
        entries.extend(chunk.entries);
    }
    if entries.len() != manifest.n_satellites {
        return Err(corrupt(format!(
            "chunk union holds {} satellites, manifest says {}",
            entries.len(),
            manifest.n_satellites
        )));
    }
    entries.sort_by_key(|e| e.index);
    if let Some((i, entry)) = entries
        .iter()
        .enumerate()
        .find(|(i, e)| e.index as usize != *i)
    {
        return Err(corrupt(format!(
            "chunk union does not cover dense indices: slot {i} holds index {}",
            entry.index
        )));
    }
    let snapshot = Snapshot {
        version: SNAPSHOT_VERSION,
        wal_seq: manifest.wal_seq,
        epoch: manifest.epoch,
        ids: entries.iter().map(|e| e.id).collect(),
        elements: entries.iter().map(|e| e.elements).collect(),
        generations: entries.iter().map(|e| e.generation).collect(),
        changed: manifest.changed.clone(),
        window_start: manifest.window_start,
        screened_n: manifest.screened_n,
        full_screens: manifest.full_screens,
        delta_screens: manifest.delta_screens,
        conjunctions: manifest.conjunctions.clone(),
        requests_served: manifest.requests_served,
        time: manifest.time,
        base_elements: entries.iter().map(|e| e.base).collect(),
        last_screen: manifest.last_screen.clone(),
        variant: manifest.variant,
        dirty_shards: None,
    };
    snapshot.validate()?;
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::SeqCst);
        let dir =
            std::env::temp_dir().join(format!("kessler-persist-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(id: u64) -> ElementsSpec {
        ElementsSpec {
            a: 7_000.0 + id as f64,
            e: 0.001,
            incl: 0.9,
            raan: 1.0,
            argp: 0.3,
            mean_anomaly: 0.2,
        }
    }

    fn add(id: u64) -> Request {
        Request::Add {
            id,
            elements: spec(id),
        }
    }

    fn snapshot_at(wal_seq: u64, n: u64) -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            wal_seq,
            epoch: n,
            ids: (0..n).collect(),
            elements: (0..n).map(spec).collect(),
            generations: (1..=n).collect(),
            changed: (0..n as u32).collect(),
            window_start: 0.0,
            screened_n: None,
            full_screens: 0,
            delta_screens: 0,
            conjunctions: Vec::new(),
            requests_served: n,
            time: 0.0,
            base_elements: (0..n).map(spec).collect(),
            last_screen: None,
            variant: Variant::Grid,
            dirty_shards: None,
        }
    }

    fn options(dir: &Path) -> PersistOptions {
        PersistOptions {
            dir: dir.to_path_buf(),
            snapshot_every: 1_000_000, // tests snapshot explicitly
            keep_snapshots: 2,
            shards: None,
        }
    }

    #[test]
    fn fresh_dir_recovers_nothing_and_replays_appends() {
        let dir = temp_dir("fresh");
        let (mut persister, recovery) =
            Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert!(recovery.snapshot.is_none());
        assert!(recovery.tail.is_empty());

        for id in 0..5 {
            persister.append(&add(id)).unwrap();
        }
        assert_eq!(persister.last_seq(), 5);
        drop(persister);

        let (persister, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert!(recovery.snapshot.is_none());
        assert_eq!(recovery.tail.len(), 5);
        assert_eq!(recovery.tail[3], add(3));
        assert_eq!(persister.last_seq(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_covers_wal_and_rotation_keeps_two() {
        let dir = temp_dir("rotate");
        let (mut persister, _) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        for round in 0..4u64 {
            for j in 0..3u64 {
                persister.append(&add(round * 3 + j)).unwrap();
            }
            persister
                .write_snapshot(&snapshot_at(persister.last_seq(), (round + 1) * 3))
                .unwrap();
        }
        let listed = list_snapshots(&dir).unwrap();
        assert_eq!(listed.len(), 2, "rotation keeps two snapshots");
        assert_eq!(listed[0].0, 9);
        assert_eq!(listed[1].0, 12);

        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        let snapshot = recovery.snapshot.expect("newest snapshot");
        assert_eq!(snapshot.wal_seq, 12);
        assert_eq!(snapshot.ids.len(), 12);
        assert!(recovery.tail.is_empty(), "snapshot covers the whole wal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_with_full_tail() {
        let dir = temp_dir("fallback");
        let (mut persister, _) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        // Snapshot at seq 2, then at seq 4; then two more appends.
        persister.append(&add(0)).unwrap();
        persister.append(&add(1)).unwrap();
        persister.write_snapshot(&snapshot_at(2, 2)).unwrap();
        persister.append(&add(2)).unwrap();
        persister.append(&add(3)).unwrap();
        persister.write_snapshot(&snapshot_at(4, 4)).unwrap();
        persister.append(&add(4)).unwrap();
        drop(persister);

        // Vandalise the newest snapshot.
        let newest = dir.join(format!("snapshot-{:020}.json", 4));
        std::fs::write(&newest, "XXXX not a snapshot XXXX").unwrap();

        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(recovery.corrupt_snapshots, 1);
        let snapshot = recovery.snapshot.expect("fallback snapshot");
        assert_eq!(snapshot.wal_seq, 2);
        // Records 3, 4, 5 must still be in the WAL (fallback-safe
        // compaction), so state reaches the present.
        assert_eq!(recovery.tail, vec![add(2), add(3), add(4)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_wal_repaired() {
        let dir = temp_dir("torn");
        let faults = Arc::new(FaultPlan::default());
        let (mut persister, _) = Persister::open(&options(&dir), Arc::clone(&faults)).unwrap();
        persister.append(&add(0)).unwrap();
        persister.append(&add(1)).unwrap();
        faults.arm_torn_wal();
        persister.append(&add(2)).unwrap(); // torn on disk
        drop(persister);

        let (mut persister, recovery) =
            Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(recovery.tail, vec![add(0), add(1)]);
        assert!(recovery.torn_tail.is_some());

        // The repaired WAL accepts and replays new appends.
        persister.append(&add(3)).unwrap();
        drop(persister);
        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert!(recovery.torn_tail.is_none());
        assert_eq!(recovery.tail, vec![add(0), add(1), add(3)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_with_absurd_millis_is_corrupt_not_a_crash() {
        let dir = temp_dir("hugems");
        let (mut persister, _) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        persister.append(&add(0)).unwrap();
        persister.append(&add(1)).unwrap();
        persister.write_snapshot(&snapshot_at(2, 2)).unwrap();
        persister.append(&add(2)).unwrap();
        drop(persister);

        // Forge a newer snapshot whose last-screen total is 1e300 ms:
        // finite, non-negative, checksummed — but past what Duration can
        // hold. Recovery must reject the body (not panic in serde) and
        // fall back to the snapshot at seq 2.
        let mut forged = snapshot_at(3, 2);
        forged.last_screen = Some(LastScreen {
            variant: "grid".to_string(),
            timings: Default::default(),
            filter_stats: None,
        });
        let body = serde_json::to_string(&forged)
            .unwrap()
            .replace("\"total\":0.0", "\"total\":1e300");
        assert!(body.contains("1e300"), "forgery target moved: {body}");
        let mut line = wal::encode_frame(3, &body);
        line.push('\n');
        std::fs::write(dir.join(format!("snapshot-{:020}.json", 3)), line).unwrap();

        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(recovery.corrupt_snapshots, 1);
        let snapshot = recovery.snapshot.expect("fallback snapshot");
        assert_eq!(snapshot.wal_seq, 2);
        assert_eq!(recovery.tail, vec![add(2)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_metrics_snapshots_read_with_defaulted_fields() {
        // A body without requests_served/time/base_elements/last_screen —
        // what every snapshot before this schema extension looks like.
        let old_body = format!(
            r#"{{"version":{SNAPSHOT_VERSION},"wal_seq":1,"epoch":1,"ids":[7],"elements":[{}],"generations":[1],"changed":[],"window_start":0.0,"screened_n":null,"full_screens":0,"delta_screens":0,"conjunctions":[]}}"#,
            serde_json::to_string(&spec(7)).unwrap()
        );
        let snapshot: Snapshot = serde_json::from_str(&old_body).unwrap();
        assert_eq!(snapshot.requests_served, 0);
        assert_eq!(snapshot.time, 0.0);
        assert!(snapshot.base_elements.is_empty());
        assert!(snapshot.last_screen.is_none());
        assert_eq!(
            snapshot.variant,
            Variant::Grid,
            "pre-variant snapshots recover as grid"
        );
        assert!(snapshot.validate().is_ok());
    }

    #[test]
    fn snapshot_variant_roundtrips_and_rejects_garbage() {
        let mut snapshot = snapshot_at(1, 1);
        snapshot.variant = Variant::Hybrid;
        let body = serde_json::to_string(&snapshot).unwrap();
        let back: Snapshot = serde_json::from_str(&body).unwrap();
        assert_eq!(back.variant, Variant::Hybrid);

        // An unknown variant tag is a deserialization error — recovery
        // treats the snapshot as corrupt and falls back, it does not guess.
        let forged = body.replace("\"Hybrid\"", "\"Bogus\"");
        assert!(forged.contains("Bogus"), "forgery target moved: {forged}");
        assert!(serde_json::from_str::<Snapshot>(&forged).is_err());
    }

    #[test]
    fn failed_append_commits_nothing_and_the_next_one_succeeds() {
        let dir = temp_dir("appendfail");
        let faults = Arc::new(FaultPlan::default());
        let (mut persister, _) = Persister::open(&options(&dir), Arc::clone(&faults)).unwrap();
        persister.append(&add(0)).unwrap();
        assert_eq!(persister.last_seq(), 1);

        faults.arm_wal_append_eio();
        let err = persister.append(&add(1)).expect_err("injected EIO");
        assert!(err.to_string().contains("append wal record"), "{err}");
        assert_eq!(persister.last_seq(), 1, "seq must not advance on failure");
        assert!(!persister.is_dirty());

        // The retry gets the same sequence number the failure burned.
        persister.append(&add(1)).unwrap();
        assert_eq!(persister.last_seq(), 2);
        drop(persister);
        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert!(recovery.torn_tail.is_none());
        assert_eq!(recovery.tail, vec![add(0), add(1)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_fsync_rolls_the_record_bytes_back_off_disk() {
        let dir = temp_dir("fsyncroll");
        let faults = Arc::new(FaultPlan::default());
        let (mut persister, _) = Persister::open(&options(&dir), Arc::clone(&faults)).unwrap();
        persister.append(&add(0)).unwrap();
        let clean_len = persister.wal_size();

        faults.arm_wal_fsync_fail();
        persister
            .append(&add(1))
            .expect_err("injected fsync failure");
        assert_eq!(persister.last_seq(), 1);
        assert_eq!(
            persister.wal_size(),
            clean_len,
            "failed record's bytes must be truncated away"
        );
        drop(persister);
        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(
            recovery.tail,
            vec![add(0)],
            "phantom record must not replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_faults_fail_cleanly_and_the_retry_lands() {
        let dir = temp_dir("snapfault");
        let faults = Arc::new(FaultPlan::default());
        let (mut persister, _) = Persister::open(&options(&dir), Arc::clone(&faults)).unwrap();
        persister.append(&add(0)).unwrap();

        faults.arm_snapshot_write_fail();
        persister
            .write_snapshot(&snapshot_at(1, 1))
            .expect_err("injected tmp-write failure");
        faults.arm_snapshot_rename_fail();
        persister
            .write_snapshot(&snapshot_at(1, 1))
            .expect_err("injected rename failure");
        assert!(
            list_snapshots(&dir).unwrap().is_empty(),
            "no snapshot may appear from a failed write"
        );

        // Un-faulted retry succeeds, and recovery reads it.
        persister.write_snapshot(&snapshot_at(1, 1)).unwrap();
        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(recovery.snapshot.expect("snapshot").wal_seq, 1);
        assert!(recovery.tail.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_detects_a_broken_disk_and_leaves_no_debris() {
        let dir = temp_dir("probe");
        let faults = Arc::new(FaultPlan::default());
        let (persister, _) = Persister::open(&options(&dir), Arc::clone(&faults)).unwrap();
        persister.probe().expect("healthy dir probes clean");
        assert!(!dir.join(".probe.tmp").exists());

        faults.set_wal_broken(true);
        persister.probe().expect_err("broken disk must fail probe");
        faults.set_wal_broken(false);
        persister.probe().expect("probe recovers with the disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Two altitude bands (edge at 7750 km), one |z| shell: shard 0 holds
    /// everything below the edge, shard 1 everything above.
    fn sharded_options(dir: &Path) -> PersistOptions {
        PersistOptions {
            dir: dir.to_path_buf(),
            snapshot_every: 1_000_000,
            keep_snapshots: 2,
            shards: Some(ShardSpec {
                alt_bands: 2,
                z_shells: 1,
                r_min_km: 6_500.0,
                r_max_km: 9_000.0,
            }),
        }
    }

    fn spec_a(a: f64) -> ElementsSpec {
        ElementsSpec {
            a,
            e: 0.001,
            incl: 0.9,
            raan: 1.0,
            argp: 0.3,
            mean_anomaly: 0.2,
        }
    }

    fn sharded_snapshot(wal_seq: u64, alts: &[f64], dirty: Option<Vec<u32>>) -> Snapshot {
        let n = alts.len() as u64;
        Snapshot {
            version: SNAPSHOT_VERSION,
            wal_seq,
            epoch: n,
            ids: (0..n).collect(),
            elements: alts.iter().map(|&a| spec_a(a)).collect(),
            generations: (1..=n).collect(),
            changed: Vec::new(),
            window_start: 0.0,
            screened_n: None,
            full_screens: 0,
            delta_screens: 0,
            conjunctions: Vec::new(),
            requests_served: n,
            time: 0.0,
            base_elements: alts.iter().map(|&a| spec_a(a)).collect(),
            last_screen: None,
            variant: Variant::Grid,
            dirty_shards: dirty,
        }
    }

    #[test]
    fn sharded_write_is_incremental_and_recovers_exactly() {
        let dir = temp_dir("sharded");
        let (mut persister, _) =
            Persister::open(&sharded_options(&dir), FaultPlan::inert()).unwrap();
        // Three satellites in shard 0, one in shard 1. First write has no
        // predecessor, so it must produce a full chunk set.
        let alts = [7_000.0, 7_100.0, 7_200.0, 8_000.0];
        for id in 0..4 {
            persister.append(&add(id)).unwrap();
        }
        let full_bytes = persister
            .write_snapshot(&sharded_snapshot(4, &alts, Some(vec![0, 1])))
            .unwrap();
        assert!(dir.join(format!("manifest-{:020}.json", 4)).exists());
        assert!(dir.join(format!("shard-{:020}-0000.json", 4)).exists());
        assert!(dir.join(format!("shard-{:020}-0001.json", 4)).exists());

        // One more satellite lands in shard 1; the incremental write must
        // rewrite only that shard's chunk (plus the manifest).
        let alts = [7_000.0, 7_100.0, 7_200.0, 8_000.0, 8_200.0];
        persister.append(&add(4)).unwrap();
        let incr_bytes = persister
            .write_snapshot(&sharded_snapshot(5, &alts, Some(vec![1])))
            .unwrap();
        assert!(dir.join(format!("shard-{:020}-0001.json", 5)).exists());
        assert!(
            !dir.join(format!("shard-{:020}-0000.json", 5)).exists(),
            "clean shard 0 must reuse its seq-4 chunk"
        );
        assert!(
            incr_bytes < full_bytes,
            "incremental ({incr_bytes} B) should undercut full ({full_bytes} B)"
        );

        let (_, recovery) = Persister::open(&sharded_options(&dir), FaultPlan::inert()).unwrap();
        let snapshot = recovery.snapshot.expect("manifest recovers");
        assert_eq!(snapshot.wal_seq, 5);
        assert_eq!(snapshot.ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(
            snapshot.elements,
            alts.iter().map(|&a| spec_a(a)).collect::<Vec<_>>(),
            "dense order must survive chunking by shard"
        );
        assert_eq!(snapshot.generations, vec![1, 2, 3, 4, 5]);
        assert!(recovery.tail.is_empty(), "manifest covers the whole wal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_chunk_falls_back_to_the_previous_point() {
        let dir = temp_dir("chunkfall");
        let (mut persister, _) =
            Persister::open(&sharded_options(&dir), FaultPlan::inert()).unwrap();
        persister.append(&add(0)).unwrap();
        persister.append(&add(1)).unwrap();
        persister
            .write_snapshot(&sharded_snapshot(2, &[7_000.0, 8_000.0], None))
            .unwrap();
        persister.append(&add(2)).unwrap();
        persister.append(&add(3)).unwrap();
        persister
            .write_snapshot(&sharded_snapshot(
                4,
                &[7_000.0, 8_000.0, 8_100.0, 8_200.0],
                Some(vec![1]),
            ))
            .unwrap();
        drop(persister);

        // Vandalise the chunk the newest manifest just wrote. The whole
        // manifest must be skipped — a half-applied manifest would serve a
        // catalog that never existed.
        std::fs::write(
            dir.join(format!("shard-{:020}-0001.json", 4)),
            "XXXX not a chunk XXXX",
        )
        .unwrap();

        let (_, recovery) = Persister::open(&sharded_options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(recovery.corrupt_snapshots, 1);
        let snapshot = recovery.snapshot.expect("fallback to the seq-2 manifest");
        assert_eq!(snapshot.wal_seq, 2);
        assert_eq!(snapshot.ids, vec![0, 1]);
        assert_eq!(
            recovery.tail,
            vec![add(2), add(3)],
            "records past the fallback must still replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn format_changes_read_across_the_sharding_switch() {
        let dir = temp_dir("xformat");
        // Unsharded daemon writes v1 history...
        let (mut persister, _) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        persister.append(&add(0)).unwrap();
        persister.write_snapshot(&snapshot_at(1, 1)).unwrap();
        drop(persister);

        // ...which a sharded reopen recovers, and supersedes with a full
        // manifest (a v1 file is no chunk predecessor).
        let (mut persister, recovery) =
            Persister::open(&sharded_options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(recovery.snapshot.expect("v1 readable").wal_seq, 1);
        persister.append(&add(1)).unwrap();
        persister
            .write_snapshot(&sharded_snapshot(2, &[7_000.0, 8_000.0], Some(vec![0])))
            .unwrap();
        assert!(
            dir.join(format!("shard-{:020}-0001.json", 2)).exists(),
            "without a manifest predecessor the write must be forced full"
        );
        drop(persister);

        // ...and an unsharded reopen still reads the sharded manifest.
        let (_, recovery) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        assert_eq!(recovery.snapshot.expect("v2 readable").wal_seq, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_two_full_points_and_reclaims_chunks() {
        let dir = temp_dir("chunkgc");
        let (mut persister, _) =
            Persister::open(&sharded_options(&dir), FaultPlan::inert()).unwrap();
        // `None` dirty info = rewrite everything, so each write is a full
        // recovery point and retention trims to the newest two.
        for round in 0..4u64 {
            persister.append(&add(round)).unwrap();
            persister
                .write_snapshot(&sharded_snapshot(round + 1, &[7_000.0, 8_000.0], None))
                .unwrap();
        }
        let points = list_points(&dir).unwrap();
        let seqs: Vec<u64> = points.iter().map(|(seq, _)| *seq).collect();
        assert_eq!(seqs, vec![3, 4], "two newest full manifests survive");
        let mut chunks = list_chunks(&dir).unwrap();
        chunks.sort();
        assert_eq!(
            chunks
                .iter()
                .map(|(seq, shard, _)| (*seq, *shard))
                .collect::<Vec<_>>(),
            vec![(3, 0), (3, 1), (4, 0), (4, 1)],
            "chunks of dropped manifests are reclaimed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_snapshot_reports_its_size_on_disk() {
        let dir = temp_dir("size");
        let (mut persister, _) = Persister::open(&options(&dir), FaultPlan::inert()).unwrap();
        persister.append(&add(0)).unwrap();
        let bytes = persister.write_snapshot(&snapshot_at(1, 1)).unwrap();
        let on_disk = std::fs::metadata(dir.join(format!("snapshot-{:020}.json", 1)))
            .unwrap()
            .len();
        assert_eq!(bytes, on_disk);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
