//! Catalog sharding by orbital regime.
//!
//! A [`ShardMap`] partitions the catalog into altitude bands × |z| shells
//! (megaconstellation LEO traffic separates naturally along exactly these
//! axes — shells at distinct altitudes and inclinations). Candidate
//! extraction then runs one spatial grid *per shard* instead of one global
//! grid, so shards screen in parallel and a future distribution boundary
//! falls on shard edges.
//!
//! # Why |z| shells, not inclination shells
//!
//! Partitioning by instantaneous position must be Lipschitz in position:
//! the boundary-mirroring rule below widens each satellite's membership by
//! a fixed margin `m` in the partition coordinates and needs "within `m`
//! of my position" to imply "within the widened membership box". Radius
//! `r = |p|` and height `|z| = |p·ẑ|` are both 1-Lipschitz in position
//! (`|Δr| ≤ |Δp|`, `|Δz| ≤ |Δp|`), so the margin transfers exactly.
//! Latitude (or instantaneous inclination angle) is *not* — its derivative
//! blows up near the poles — which is why the shells slice |z| in
//! kilometres. A satellite's |z| sweeps `[0, a·sin i]` over an orbit, so
//! |z| shells still separate low- from high-inclination traffic, just with
//! sound geometry.
//!
//! # The boundary-pair rule
//!
//! Candidate pairs come from 27-cell neighbourhood queries: two satellites
//! form an entry at a step iff their cells are within one cell in every
//! axis, i.e. their positions differ by less than `2·cell` per axis and so
//! by less than `m = 2·√3·cell` in norm. Per step, each satellite is
//! therefore *inserted* into every shard whose region overlaps its
//! position widened by `m` in `(r, |z|)` (mirroring: a satellite within
//! one neighbourhood-width of a band edge also lives in the adjacent
//! shard's grid), while each changed satellite is *queried* only in its
//! home shard. Any neighbour within the 27-cell reach of a changed
//! satellite `c` is within `m` of `c`'s position, hence a member of `c`'s
//! home shard — so the per-shard query returns exactly the global grid's
//! answer, and sharded extraction is *bit-identical* to unsharded
//! (`tests/delta_correctness.rs` enforces this).
//!
//! Membership is recomputed from instantaneous positions every step, so
//! eccentric satellites sweep through every band their apsis range
//! overlaps; the static [`ShardMap::assign`] (used for persistence
//! chunking and dirty tracking) conservatively files a satellite under its
//! semi-major axis band.

use crate::error::ServiceError;
use kessler_core::metrics::Histogram;
use kessler_grid::cellkey::cell_key_of;
use kessler_grid::neighbor::FULL_NEIGHBORHOOD;
use kessler_grid::pairset::CandidatePair;
use kessler_grid::SpatialGrid;
use kessler_math::Vec3;
use rayon::prelude::*;
use std::collections::HashSet;
use std::time::Instant;

/// Upper bound on `alt_bands × z_shells`: keeps per-step membership
/// bookkeeping (one member list per shard) trivially cheap.
pub const MAX_SHARDS: u32 = 4096;

/// User-facing sharding configuration: how many altitude bands and |z|
/// shells, over what radial extent. Validated by [`ShardSpec::validate`];
/// [`ShardMap`] derives the uniform band/shell widths from it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    /// Number of altitude (geocentric radius) bands.
    pub alt_bands: u32,
    /// Number of |z| shells per band.
    pub z_shells: u32,
    /// Radius where band 0 starts (km); radii below clamp into band 0.
    pub r_min_km: f64,
    /// Radius where the last band ends (km); radii above clamp into it.
    /// |z| shells span `[0, r_max_km]` (|z| never exceeds the radius).
    pub r_max_km: f64,
}

impl Default for ShardSpec {
    fn default() -> ShardSpec {
        // 8 × 4 = 32 shards over the LEO belt; outliers clamp to the edge
        // bands, which stays correct (just less balanced).
        ShardSpec {
            alt_bands: 8,
            z_shells: 4,
            r_min_km: 6_500.0,
            r_max_km: 9_000.0,
        }
    }
}

impl ShardSpec {
    pub fn shard_count(&self) -> u32 {
        self.alt_bands * self.z_shells
    }

    pub fn validate(&self) -> Result<(), ServiceError> {
        let bad = |msg: String| Err(ServiceError::Config(msg));
        if self.alt_bands == 0 || self.z_shells == 0 {
            return bad(format!(
                "shard spec needs at least one band and one shell (got {}×{})",
                self.alt_bands, self.z_shells
            ));
        }
        if self.shard_count() > MAX_SHARDS {
            return bad(format!(
                "{} bands × {} shells = {} shards exceeds the {MAX_SHARDS}-shard cap",
                self.alt_bands,
                self.z_shells,
                self.shard_count()
            ));
        }
        if !self.r_min_km.is_finite() || !self.r_max_km.is_finite() {
            return bad("shard radii must be finite".to_string());
        }
        if self.r_min_km <= 0.0 || self.r_max_km <= self.r_min_km {
            return bad(format!(
                "shard radius range [{}, {}] km must satisfy 0 < r_min < r_max",
                self.r_min_km, self.r_max_km
            ));
        }
        Ok(())
    }
}

/// The partition itself: uniform-width bands over `[r_min, r_max]` and
/// uniform-width shells over `[0, r_max]`, with O(1) range arithmetic for
/// both point lookup and interval overlap.
#[derive(Debug, Clone, Copy)]
pub struct ShardMap {
    spec: ShardSpec,
    band_width_km: f64,
    shell_width_km: f64,
}

impl ShardMap {
    pub fn new(spec: ShardSpec) -> Result<ShardMap, ServiceError> {
        spec.validate()?;
        Ok(ShardMap {
            spec,
            band_width_km: (spec.r_max_km - spec.r_min_km) / spec.alt_bands as f64,
            shell_width_km: spec.r_max_km / spec.z_shells as f64,
        })
    }

    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    pub fn shard_count(&self) -> u32 {
        self.spec.shard_count()
    }

    /// Altitude band holding radius `r_km`, clamped into range.
    pub fn band_of(&self, r_km: f64) -> u32 {
        let raw = (r_km - self.spec.r_min_km) / self.band_width_km;
        (raw.floor().max(0.0) as u32).min(self.spec.alt_bands - 1)
    }

    /// |z| shell holding height `z_km` (absolute value taken), clamped.
    pub fn shell_of(&self, z_km: f64) -> u32 {
        let raw = z_km.abs() / self.shell_width_km;
        (raw.floor().max(0.0) as u32).min(self.spec.z_shells - 1)
    }

    fn shard_id(&self, band: u32, shell: u32) -> u32 {
        band * self.spec.z_shells + shell
    }

    /// Home shard of an instantaneous position.
    pub fn home_of(&self, position: Vec3) -> u32 {
        self.shard_id(self.band_of(position.norm()), self.shell_of(position.z))
    }

    /// Inclusive band range overlapping the radius interval `[lo, hi]` km.
    pub fn bands_overlapping(&self, r_lo_km: f64, r_hi_km: f64) -> (u32, u32) {
        (self.band_of(r_lo_km), self.band_of(r_hi_km.max(r_lo_km)))
    }

    /// Inclusive shell range overlapping the |z| interval `[lo, hi]` km.
    pub fn shells_overlapping(&self, z_lo_km: f64, z_hi_km: f64) -> (u32, u32) {
        (
            self.shell_of(z_lo_km.max(0.0)),
            self.shell_of(z_hi_km.max(z_lo_km)),
        )
    }

    /// Static shard assignment from orbital elements — the persistence
    /// layer's chunking key and the dirty-shard key. Deliberately
    /// position-independent (a satellite's chunk must not migrate as time
    /// advances unless its elements change): band from the semi-major
    /// axis, shell from the characteristic maximum height `a·|sin i|`.
    pub fn assign(&self, semi_major_axis_km: f64, inclination_rad: f64) -> u32 {
        let band = self.band_of(semi_major_axis_km);
        let shell = self.shell_of(semi_major_axis_km * inclination_rad.sin().abs());
        self.shard_id(band, shell)
    }
}

/// Per-screen sharding statistics, carried from the extraction loop up
/// through the executor so the commit path can merge them into the
/// metrics registry (per-shard step-time [`Histogram`]s merge via the
/// core histogram's own `merge`).
#[derive(Debug, Clone, Default)]
pub struct ShardScreenStats {
    /// Per-shard histogram of per-step extraction wall time (µs).
    pub step_us: Vec<Histogram>,
    /// Per-shard candidate entries emitted.
    pub entries: Vec<u64>,
    /// Per-shard peak member count across steps (mirrors included).
    pub peak_members: Vec<u64>,
    /// Entries whose neighbour lives in a different home shard than the
    /// queried satellite — the pairs sharding would have lost without
    /// boundary mirroring.
    pub boundary_entries: u64,
    /// Grid inserts beyond one-per-satellite, i.e. boundary mirrors.
    pub mirrored_inserts: u64,
    /// Total per-step grid inserts across all shards and steps.
    pub total_inserts: u64,
}

impl ShardScreenStats {
    pub fn new(shard_count: u32) -> ShardScreenStats {
        let n = shard_count as usize;
        ShardScreenStats {
            step_us: vec![Histogram::new(); n],
            entries: vec![0; n],
            peak_members: vec![0; n],
            boundary_entries: 0,
            mirrored_inserts: 0,
            total_inserts: 0,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.step_us.len()
    }
}

/// Reusable per-step membership buffers, so the step loop allocates the
/// per-shard vectors once instead of `shards × steps` times.
pub struct ShardScratch {
    /// Global indices per shard (home members first is *not* guaranteed).
    members: Vec<Vec<u32>>,
    /// Positions gathered per shard, parallel to `members`.
    positions: Vec<Vec<Vec3>>,
    /// Changed satellites to query, grouped by home shard.
    changed: Vec<Vec<u32>>,
}

impl ShardScratch {
    pub fn new(shard_count: u32) -> ShardScratch {
        let n = shard_count as usize;
        ShardScratch {
            members: vec![Vec::new(); n],
            positions: vec![Vec::new(); n],
            changed: vec![Vec::new(); n],
        }
    }
}

/// One step of sharded candidate extraction: recompute shard membership
/// from the step's positions (mirroring satellites within `m = 2√3·cell`
/// of a shard edge into the adjacent shards), build each shard's grid,
/// query each changed satellite's 27-cell neighbourhood in its home
/// shard, and merge the per-shard entries into `entries`.
///
/// The emitted `CandidatePair`s carry *global* indices, so everything
/// downstream of extraction (refinement, dedup, the warm pair map) is
/// untouched by sharding — which is what makes sharded == unsharded exact.
#[allow(clippy::too_many_arguments)]
pub fn extract_step_sharded(
    map: &ShardMap,
    positions: &[Vec3],
    changed: &[u32],
    cell_size_km: f64,
    step: u32,
    scratch: &mut ShardScratch,
    entries: &mut HashSet<CandidatePair>,
    stats: &mut ShardScreenStats,
) {
    // Anything within the 27-cell neighbourhood differs by < 2·cell per
    // axis, so by < 2√3·cell in norm — and radius and |z| are 1-Lipschitz
    // in position, so widening membership by `margin` in both partition
    // coordinates covers every possible neighbour.
    let margin = 2.0 * 3.0_f64.sqrt() * cell_size_km;
    let shard_count = map.shard_count() as usize;

    for s in 0..shard_count {
        scratch.members[s].clear();
        scratch.positions[s].clear();
        scratch.changed[s].clear();
    }
    for (i, p) in positions.iter().enumerate() {
        let r = p.norm();
        let z = p.z.abs();
        let (b_lo, b_hi) = map.bands_overlapping(r - margin, r + margin);
        let (s_lo, s_hi) = map.shells_overlapping(z - margin, z + margin);
        for band in b_lo..=b_hi {
            for shell in s_lo..=s_hi {
                let s = map.shard_id(band, shell) as usize;
                scratch.members[s].push(i as u32);
                scratch.positions[s].push(*p);
            }
        }
    }
    for &c in changed {
        let home = map.home_of(positions[c as usize]) as usize;
        scratch.changed[home].push(c);
    }

    struct ShardOutcome {
        entries: Vec<CandidatePair>,
        boundary: u64,
        members: u64,
        micros: u64,
    }

    let outcomes: Vec<ShardOutcome> = (0..shard_count)
        .into_par_iter()
        .map(|s| {
            let started = Instant::now();
            let members = &scratch.members[s];
            let local_positions = &scratch.positions[s];
            let queries = &scratch.changed[s];
            let mut out = ShardOutcome {
                entries: Vec::new(),
                boundary: 0,
                members: members.len() as u64,
                micros: 0,
            };
            if !queries.is_empty() && !members.is_empty() {
                let grid = SpatialGrid::new(members.len(), cell_size_km);
                grid.insert_all(local_positions)
                    .expect("shard grid sized at its member count cannot fill up");
                let push = |c: u32, local: u32, out: &mut ShardOutcome| {
                    let g = members[local as usize];
                    if g != c {
                        out.entries.push(CandidatePair::new(c, g, step));
                        if map.home_of(positions[g as usize]) as usize != s {
                            out.boundary += 1;
                        }
                    }
                };
                for &c in queries {
                    let key = cell_key_of(positions[c as usize], cell_size_km);
                    if let Some(slot) = grid.lookup_cell(key) {
                        for m in grid.cell_members(slot) {
                            push(c, m, &mut out);
                        }
                    }
                    for &(dx, dy, dz) in FULL_NEIGHBORHOOD.iter() {
                        let Some(neighbor) = key.offset(dx, dy, dz) else {
                            continue;
                        };
                        if let Some(slot) = grid.lookup_cell(neighbor) {
                            for m in grid.cell_members(slot) {
                                push(c, m, &mut out);
                            }
                        }
                    }
                }
            }
            out.micros = started.elapsed().as_micros() as u64;
            out
        })
        .collect();

    let mut step_inserts = 0u64;
    for (s, outcome) in outcomes.into_iter().enumerate() {
        stats.step_us[s].record(outcome.micros);
        stats.entries[s] += outcome.entries.len() as u64;
        stats.peak_members[s] = stats.peak_members[s].max(outcome.members);
        stats.boundary_entries += outcome.boundary;
        step_inserts += outcome.members;
        entries.extend(outcome.entries);
    }
    stats.total_inserts += step_inserts;
    stats.mirrored_inserts += step_inserts.saturating_sub(positions.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(bands: u32, shells: u32) -> ShardMap {
        ShardMap::new(ShardSpec {
            alt_bands: bands,
            z_shells: shells,
            r_min_km: 6_500.0,
            r_max_km: 9_000.0,
        })
        .unwrap()
    }

    #[test]
    fn spec_validation_rejects_bad_geometry() {
        assert!(ShardSpec::default().validate().is_ok());
        let zero = ShardSpec {
            alt_bands: 0,
            ..Default::default()
        };
        assert!(zero.validate().is_err());
        let too_many = ShardSpec {
            alt_bands: MAX_SHARDS,
            z_shells: 2,
            ..Default::default()
        };
        assert!(too_many.validate().is_err());
        let inverted = ShardSpec {
            r_min_km: 9_000.0,
            r_max_km: 6_500.0,
            ..Default::default()
        };
        assert!(inverted.validate().is_err());
        let nan = ShardSpec {
            r_max_km: f64::NAN,
            ..Default::default()
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn lookup_clamps_out_of_range_values() {
        let m = map(4, 4);
        assert_eq!(m.band_of(1_000.0), 0);
        assert_eq!(m.band_of(6_500.0), 0);
        assert_eq!(m.band_of(8_999.0), 3);
        assert_eq!(m.band_of(50_000.0), 3);
        assert_eq!(m.shell_of(-100.0), 0);
        assert_eq!(m.shell_of(0.0), 0);
        assert_eq!(m.shell_of(50_000.0), 3);
    }

    #[test]
    fn overlap_ranges_are_inclusive_and_ordered() {
        let m = map(8, 4);
        // Band width (9000-6500)/8 = 312.5 km.
        let (lo, hi) = m.bands_overlapping(6_700.0, 6_700.0);
        assert_eq!((lo, hi), (0, 0));
        let (lo, hi) = m.bands_overlapping(6_700.0, 7_200.0);
        assert!(lo <= hi && lo == 0 && hi >= 2);
        // Degenerate (hi < lo) inputs still produce an ordered range.
        let (lo, hi) = m.bands_overlapping(7_000.0, 6_000.0);
        assert!(lo <= hi);
    }

    #[test]
    fn home_and_assign_agree_on_equatorial_circular_orbits() {
        let m = map(8, 4);
        // An equatorial circular orbit sits at r = a, z = 0 forever.
        let a = 7_000.0;
        let home = m.home_of(Vec3::new(a, 0.0, 0.0));
        assert_eq!(home, m.assign(a, 0.0));
    }

    #[test]
    fn sharded_step_matches_global_extraction() {
        // Deterministic pseudo-random cloud spanning several bands and
        // shells, with some satellites parked exactly on band edges.
        let cell = 40.0;
        let mut positions = Vec::new();
        let mut rng = 0x5eed_u64;
        let mut next = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..400 {
            let r = 6_550.0 + 2_400.0 * next();
            let theta = std::f64::consts::TAU * next();
            let zfrac = 2.0 * next() - 1.0;
            let z = r * 0.9 * zfrac;
            let rho = (r * r - z * z).max(0.0).sqrt();
            positions.push(Vec3::new(rho * theta.cos(), rho * theta.sin(), z));
        }
        // Edge straddlers: within one cell of the 7125 km band edge.
        for k in 0..20 {
            let r = 7_125.0 + (k as f64 - 10.0) * 3.0;
            positions.push(Vec3::new(r, k as f64 * 5.0, k as f64 * 7.0));
        }
        let changed: Vec<u32> = (0..positions.len() as u32).step_by(3).collect();

        // Global (unsharded) reference extraction.
        let mut expected = HashSet::new();
        let grid = SpatialGrid::new(positions.len(), cell);
        grid.insert_all(&positions).unwrap();
        for &c in &changed {
            let key = cell_key_of(positions[c as usize], cell);
            if let Some(slot) = grid.lookup_cell(key) {
                for mbr in grid.cell_members(slot) {
                    if mbr != c {
                        expected.insert(CandidatePair::new(c, mbr, 7));
                    }
                }
            }
            for &(dx, dy, dz) in FULL_NEIGHBORHOOD.iter() {
                let Some(neighbor) = key.offset(dx, dy, dz) else {
                    continue;
                };
                if let Some(slot) = grid.lookup_cell(neighbor) {
                    for mbr in grid.cell_members(slot) {
                        expected.insert(CandidatePair::new(c, mbr, 7));
                    }
                }
            }
        }

        let m = map(8, 4);
        let mut scratch = ShardScratch::new(m.shard_count());
        let mut stats = ShardScreenStats::new(m.shard_count());
        let mut got = HashSet::new();
        extract_step_sharded(
            &m,
            &positions,
            &changed,
            cell,
            7,
            &mut scratch,
            &mut got,
            &mut stats,
        );
        assert_eq!(got, expected);
        assert_eq!(
            stats.total_inserts - stats.mirrored_inserts,
            positions.len() as u64
        );
    }

    #[test]
    fn mirroring_counts_boundary_traffic() {
        let m = map(8, 4);
        let cell = 40.0;
        // Two satellites in the same cell but with homes on opposite sides
        // of the 7125 km band edge: the pair must be found exactly once
        // and counted as a boundary entry.
        let positions = vec![Vec3::new(7_124.0, 0.0, 0.0), Vec3::new(7_126.0, 0.0, 0.0)];
        assert_ne!(m.home_of(positions[0]), m.home_of(positions[1]));
        let changed = vec![0u32, 1];
        let mut scratch = ShardScratch::new(m.shard_count());
        let mut stats = ShardScreenStats::new(m.shard_count());
        let mut got = HashSet::new();
        extract_step_sharded(
            &m,
            &positions,
            &changed,
            cell,
            0,
            &mut scratch,
            &mut got,
            &mut stats,
        );
        assert_eq!(got.len(), 1);
        assert!(got.contains(&CandidatePair::new(0, 1, 0)));
        // Both queries saw a cross-shard neighbour.
        assert_eq!(stats.boundary_entries, 2);
        assert!(stats.mirrored_inserts >= 2);
    }
}
